#!/usr/bin/env python3
"""Service-tier throughput: per-key stores vs the multiplexed store.

The workload writes then reads every key once, end to end (store
construction, operation rounds, teardown), at 64-1024 keys:

* **per-key baseline** -- one :class:`~repro.runtime.AsyncStorage` per
  key, the pre-service-tier deployment of ``examples/replicated_kv_store
  .py``: every key spawns its own object hosts, queues and client hosts
  (4 replicas => 4 tasks + 6 inboxes per key);
* **multiplexed** -- one :class:`~repro.service.MultiRegisterStore`:
  the same 4 replica tasks serve *all* keys, with batched rounds
  coalescing same-step messages per object into single envelopes;
* **multi-writer (contended)** -- the same multiplexed store in MWMR
  mode: ``W`` writer hosts race on *every* key (tag-discovery round,
  ``(epoch, writer_id)`` arbitration), measuring what write contention
  costs on top of the multiplexing win.

A fourth mode exercises **reconfiguration**: a live reshard from 2 to 3
shard groups of a :class:`~repro.service.ShardedKVStore` while a load
loop keeps putting/getting every key -- moved keys must hand off without
losing a read, unmoved keys must keep serving, and mid-handoff writes
may only fail *fast* (epoch-fenced), never silently vanish.

A fifth mode exercises **cross-shard snapshot reads** through the client
API (:mod:`repro.api`): writer sessions keep mutating a keyspace
spanning both shard groups while a reader session takes repeated
``session.snapshot()`` cuts; every certified cut must pass
:func:`~repro.spec.checkers.check_snapshot_consistency` against the
recorded history (and the whole run per-register tag regularity).

A sixth mode measures **multi-process scaling**: the same sharded
workload served by supervised replica child processes (WAL + snapshot
durability, binary TCP wire) at 1/2/4 processes vs the in-process
figure.  On hosts with >= 4 CPUs the widest point must reach 2x the
in-process throughput; on smaller hosts the ratio is recorded and the
mode gates on correctness (zero restarts, every read correct).  A
vector-ack tripwire also checks batched rounds move strictly fewer
envelopes than per-key operation fan-out.

A seventh mode is **read-heavy fast reads**: a 10:1 read:write workload
on the atomic protocol, run classic-first then re-run with the tag-lease
fast path enabled on the *same started store*.  Uncontended, the fast
phase must beat classic ops/s and move strictly fewer messages;
contended (racing writers), the adaptive backoff must keep it within
10% of classic -- with zero atomicity or fast-read freshness violations
either way.

All run the same protocol automata (Section 5.1 cached regular storage)
on the same in-memory asyncio network.  Results go to a JSON file
(default ``BENCH_service.json``) and the run fails if multiplexing is
not at least 3x faster than per-key at 256 keys, or if the reshard
breaks any of the invariants above.

Run:  python benchmarks/bench_service.py [--full] [--smoke] [--output PATH]
(``--smoke`` is the CI configuration: 64 keys, fewer repeats, a relaxed
2x gate -- fast enough for every push, still a real regression tripwire;
it includes the reshard-under-load case.)
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import shutil
import statistics
import sys
import tempfile
import time
from typing import Any, Dict, List

from repro import SystemConfig
from repro.api import Cluster, RetryPolicy
from repro.core.atomic import AtomicStorageProtocol
from repro.core.regular import CachedRegularStorageProtocol
from repro.errors import (BusyRegisterError, FencedWriteError,
                          SnapshotContentionError)
from repro.runtime import AsyncStorage
from repro.service import (MultiRegisterStore, ReconfigCoordinator,
                           ShardedKVStore)
from repro.spec.checkers import (check_fast_read_freshness,
                                 check_mwmr_atomicity,
                                 check_mwmr_regularity,
                                 check_per_register,
                                 check_snapshot_consistency)

CONFIG = SystemConfig.optimal(t=1, b=1, num_readers=1)
MWMR_WRITERS = 4
MWMR_CONFIG = SystemConfig.optimal(t=1, b=1, num_readers=1,
                                   num_writers=MWMR_WRITERS)
MULTIPROC_CONFIG = CONFIG.with_deployment("multiproc")
#: The >= 2x multiproc-vs-inproc gate only makes sense with cores to
#: scale onto; below this the run records the measured ratio and gates
#: on correctness (restarts == 0, every read correct) alone.
MULTIPROC_SCALE_MIN_CPUS = 4


async def run_per_key_baseline(num_keys: int) -> Dict[str, Any]:
    """One AsyncStorage (replica set + hosts + tasks) per key."""
    started = time.perf_counter()
    stores: Dict[str, AsyncStorage] = {}
    for n in range(num_keys):
        store = AsyncStorage(CachedRegularStorageProtocol(), CONFIG,
                             seed=n)
        await store.start()
        stores[f"key:{n}"] = store
    await asyncio.gather(*(store.write(f"value-{key}")
                           for key, store in stores.items()))
    reads = await asyncio.gather(*(store.read()
                                   for store in stores.values()))
    for store in stores.values():
        await store.stop()
    elapsed = time.perf_counter() - started
    assert all(value == f"value-key:{n}"
               for n, value in enumerate(reads)), "baseline read mismatch"
    return {
        "elapsed_s": elapsed,
        "replica_tasks": CONFIG.num_objects * num_keys,
        "messages_sent": sum(store.network.messages_sent
                             for store in stores.values()),
    }


async def run_multiplexed(num_keys: int) -> Dict[str, Any]:
    """One MultiRegisterStore serving every key over one replica set.

    Batched mode: ``write_many``/``read_many`` drive the whole keyspace
    through the vector round engine -- one frame per (replica, step).
    """
    started = time.perf_counter()
    keys = [f"key:{n}" for n in range(num_keys)]
    async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                  CONFIG) as store:
        await store.write_many({key: f"value-{key}" for key in keys})
        reads = await store.read_many(keys)
        messages = store.network.messages_sent
    elapsed = time.perf_counter() - started
    assert all(reads[key] == f"value-{key}"
               for key in keys), "multiplexed read mismatch"
    return {
        "elapsed_s": elapsed,
        "replica_tasks": CONFIG.num_objects,
        "messages_sent": messages,
    }


async def run_multiplexed_unbatched(num_keys: int) -> Dict[str, Any]:
    """The same multiplexed store driven one operation per key.

    Isolates the vector round engine's contribution: identical store,
    identical protocol, but per-key ``write``/``read`` calls fanned out
    with ``asyncio.gather`` -- no shared per-step frames, per-ack quorum
    evaluation.  The burst coalescing of the hosts still applies, so
    the delta versus :func:`run_multiplexed` is the batching contract,
    not envelope counts alone.
    """
    started = time.perf_counter()
    keys = [f"key:{n}" for n in range(num_keys)]
    async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                  CONFIG) as store:
        await asyncio.gather(*(store.write(key, f"value-{key}")
                               for key in keys))
        reads = dict(zip(keys, await asyncio.gather(
            *(store.read(key) for key in keys))))
        messages = store.network.messages_sent
    elapsed = time.perf_counter() - started
    assert all(reads[key] == f"value-{key}"
               for key in keys), "unbatched read mismatch"
    return {
        "elapsed_s": elapsed,
        "replica_tasks": CONFIG.num_objects,
        "messages_sent": messages,
    }


async def run_multi_writer(num_keys: int) -> Dict[str, Any]:
    """MWMR contention: every writer host writes *every* key, racing."""
    started = time.perf_counter()
    keys = [f"key:{n}" for n in range(num_keys)]
    async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                  MWMR_CONFIG) as store:
        await asyncio.gather(*(
            store.write_many({key: f"w{w}-{key}" for key in keys},
                             writer_index=w)
            for w in range(MWMR_WRITERS)
        ))
        reads = await store.read_many(keys)
        messages = store.network.messages_sent
    elapsed = time.perf_counter() - started
    prefixes = tuple(f"w{w}-" for w in range(MWMR_WRITERS))
    assert all(str(reads[key]).startswith(prefixes) for key in keys), \
        "multi-writer read returned a value no writer wrote"
    return {
        "elapsed_s": elapsed,
        "replica_tasks": MWMR_CONFIG.num_objects,
        "messages_sent": messages,
        "writers": MWMR_WRITERS,
    }


async def run_reshard_under_load(num_keys: int) -> Dict[str, Any]:
    """Live reshard 2 -> 3 shard groups while puts/gets keep flowing.

    The load loop hammers the keyspace for the whole duration of the
    handoff; puts that hit a key mid-migration fail fast with
    :class:`~repro.errors.FencedWriteError` (counted, expected), while
    every operation on unmoved keys must succeed.  Afterwards every key
    must read either its pre-reshard value or a load-written one.
    """
    started = time.perf_counter()
    keys = [f"key:{n}" for n in range(num_keys)]
    kv = ShardedKVStore(CachedRegularStorageProtocol, CONFIG,
                        num_shards=2, seed=42)
    async with kv:
        await kv.put_many({key: f"v-{key}" for key in keys})
        done = asyncio.Event()
        stats = {"puts": 0, "gets": 0, "fenced": 0, "busy": 0}

        async def load() -> None:
            i = 0
            while not done.is_set():
                key = keys[i % num_keys]
                try:
                    await kv.put(key, f"load-{i}-{key}")
                    stats["puts"] += 1
                except FencedWriteError:
                    stats["fenced"] += 1  # key mid-handoff: expected
                try:
                    value = await kv.get(keys[(i * 13) % num_keys])
                    assert value is not None, "read lost during reshard"
                    stats["gets"] += 1
                except BusyRegisterError:
                    stats["busy"] += 1  # lost the admission race to the
                    i += 1              # coordinator's snapshot; retry
                    continue
                i += 1

        loader = asyncio.create_task(load())
        report = await ReconfigCoordinator(kv).add_shard()
        done.set()
        await loader
        moved = len(report.moved)
        for key in keys:
            value = await kv.get(key)
            assert value is not None and (
                value == f"v-{key}" or value.startswith("load-")), \
                f"{key} read {value!r} after reshard"
    elapsed = time.perf_counter() - started
    return {
        "elapsed_s": elapsed,
        "num_keys": num_keys,
        "moved_keys": moved,
        "concurrent_puts": stats["puts"],
        "concurrent_gets": stats["gets"],
        "fenced_writes": stats["fenced"],
        "busy_retries": stats["busy"],
        "ok": moved > 0 and stats["puts"] > 0 and stats["gets"] > 0,
    }


async def run_snapshot_reads(num_keys: int) -> Dict[str, Any]:
    """Mixed writers vs. repeated cross-shard snapshot reads.

    Two writer sessions keep mutating a keyspace spanning both shard
    groups while a reader session takes consistent snapshots of all of
    it through the client API.  Snapshots that cannot certify a cut
    within their round budget count as *contended* (expected under
    write pressure); every snapshot that does certify must pass
    :func:`check_snapshot_consistency` against the recorded history --
    along with per-register tag regularity for the whole run.
    """
    started = time.perf_counter()
    keys = [f"key:{n}" for n in range(num_keys)]
    cluster = Cluster(CachedRegularStorageProtocol, MWMR_CONFIG,
                      num_shards=2, seed=7, record_history=True)
    stats = {"writes": 0, "snapshots": 0, "contended": 0}
    async with cluster:
        shards_spanned = len({cluster.kv.shard_for(k) for k in keys})
        writers = [cluster.session(retry=RetryPolicy(attempts=10))
                   for _ in range(2)]
        snapper = cluster.session()
        await writers[0].put_many({key: "init" for key in keys})
        done = asyncio.Event()

        async def write_load(session, w):
            i = 0
            while not done.is_set():
                await session.put(keys[(i * 2 + w) % num_keys],
                                  f"w{w}-{i}")
                stats["writes"] += 1
                i += 1
                # Paced: back-to-back writes on every key would deny
                # snapshots any quiet window to certify a cut in.
                await asyncio.sleep(0.002)

        load = [asyncio.create_task(write_load(s, w))
                for w, s in enumerate(writers)]
        for _ in range(10):
            try:
                snap = await snapper.snapshot(keys, max_rounds=16)
                assert len(snap) == num_keys
                stats["snapshots"] += 1
            except SnapshotContentionError:
                stats["contended"] += 1
        done.set()
        await asyncio.gather(*load)
        # Disjoint reports: per-register write/read semantics vs the
        # snapshot cuts (admin().check() would merge the two).
        registers = check_per_register(cluster.history,
                                       check_mwmr_regularity)
        cuts = check_snapshot_consistency(cluster.history)
        recorded = len(cluster.history.snapshots())
    elapsed = time.perf_counter() - started
    return {
        "elapsed_s": elapsed,
        "num_keys": num_keys,
        "shards_spanned": shards_spanned,
        "writers": 2,
        "concurrent_writes": stats["writes"],
        "snapshots_certified": stats["snapshots"],
        "snapshots_contended": stats["contended"],
        "cut_violations": len(cuts.violations),
        "register_violations": len(registers.violations),
        "ok": (stats["snapshots"] > 0 and stats["writes"] > 0
               and shards_spanned >= 2
               and recorded == stats["snapshots"]
               and registers.ok and cuts.ok),
    }


def bench_snapshots(num_keys: int) -> Dict[str, Any]:
    row = asyncio.run(run_snapshot_reads(num_keys))
    print(f"  snapshot reads under write load | {num_keys} keys over "
          f"{row['shards_spanned']} shards | "
          f"{row['snapshots_certified']} certified + "
          f"{row['snapshots_contended']} contended | "
          f"{row['concurrent_writes']} concurrent writes | "
          f"{row['cut_violations']} cut violations | "
          f"{row['elapsed_s']:.3f}s | "
          f"{'OK' if row['ok'] else 'FAIL'}")
    return row


#: Read-heavy workload shape: reads per write, per round.
READ_HEAVY_RATIO = 10


async def _read_heavy_phase(store: MultiRegisterStore, keys: List[str],
                            rounds: int, writers: int) -> Dict[str, Any]:
    """One timed 10:1 read:write phase against an already-started store.

    Each round issues one write per writer plus ``READ_HEAVY_RATIO``
    reads per write, all concurrently (reads race the writes, as a real
    read-mostly service would).  A warm-up read sweep outside the timer
    arms reader-side caches -- and, when the fast path is enabled,
    leases -- so classic and fast phases start from symmetric state.
    """
    await asyncio.gather(*(store.read(key) for key in keys))
    n = len(keys)
    mark = store.network.messages_sent
    reads = writes = 0
    started = time.perf_counter()
    for r in range(rounds):
        write_coros = [store.write(keys[(r + w) % n], f"w{w}-r{r}",
                                   writer_index=w)
                       for w in range(writers)]
        total_reads = READ_HEAVY_RATIO * writers
        read_coros = [store.read(keys[(r * total_reads + j) % n])
                      for j in range(total_reads)]
        await asyncio.gather(*write_coros, *read_coros)
        writes += writers
        reads += total_reads
    elapsed = time.perf_counter() - started
    ops = reads + writes
    return {
        "elapsed_s": elapsed,
        "ops": ops,
        "ops_per_s": ops / elapsed,
        "reads": reads,
        "writes": writes,
        "messages_sent": store.network.messages_sent - mark,
    }


async def run_read_heavy(num_keys: int, rounds: int,
                         writers: int) -> Dict[str, Any]:
    """Classic vs fast reads on the *same started store*.

    The atomic protocol makes the comparison sharpest (classic READ is
    up to 3 rounds incl. write-back; a fast read is 1 probe round) and
    lets the run gate on :func:`check_mwmr_atomicity` outright.  The
    classic phase runs first with the fast path disabled, then
    ``enable_fast_reads()`` flips the same store and the identical
    workload re-runs -- same replica tasks, same network, same history.
    """
    config = (MWMR_CONFIG if writers > 1 else CONFIG)
    keys = [f"key:{n}" for n in range(num_keys)]
    async with MultiRegisterStore(AtomicStorageProtocol(), config,
                                  record_history=True, seed=5) as store:
        await store.write_many({key: f"init-{key}" for key in keys})
        classic = await _read_heavy_phase(store, keys, rounds, writers)
        store.enable_fast_reads()
        fast = await _read_heavy_phase(store, keys, rounds, writers)
        stats = store.stats()
        atomicity = check_per_register(store.history,
                                       check_mwmr_atomicity)
        freshness = check_fast_read_freshness(store.history)
    return {
        "num_keys": num_keys,
        "rounds": rounds,
        "writers": writers,
        "read_write_ratio": READ_HEAVY_RATIO,
        "classic": classic,
        "fast": fast,
        "fast_speedup": fast["ops_per_s"] / classic["ops_per_s"],
        "fast_reads_taken": stats["fast_reads_taken"],
        "fast_read_fallbacks": stats["fast_read_fallbacks"],
        "lease_invalidations": stats["lease_invalidations"],
        "atomicity_violations": len(atomicity.violations),
        "freshness_violations": len(freshness.violations),
        "fast_reads_checked": freshness.checked_reads,
    }


def bench_read_heavy(num_keys: int, rounds: int,
                     uncontended_gate: float) -> Dict[str, Any]:
    """The fast-read headline numbers plus their tripwires.

    * uncontended (single writer): fast phase must reach
      ``uncontended_gate``x the classic ops/s *and* move strictly fewer
      messages for the same operation count;
    * contended (``MWMR_WRITERS`` racing writers): the adaptive backoff
      must keep the fast phase within 10% of classic throughput;
    * both: zero atomicity violations, zero fast-read freshness
      violations, and the fast path must actually have fired.
    """
    gc.collect()
    solo = asyncio.run(run_read_heavy(num_keys, rounds, writers=1))
    gc.collect()
    contended = asyncio.run(run_read_heavy(num_keys, rounds,
                                           writers=MWMR_WRITERS))
    messages_ok = (solo["fast"]["messages_sent"]
                   < solo["classic"]["messages_sent"])
    checkers_ok = all(
        row["atomicity_violations"] == 0
        and row["freshness_violations"] == 0
        and row["fast_reads_checked"] > 0
        for row in (solo, contended))
    ok = (solo["fast_speedup"] >= uncontended_gate
          and contended["fast_speedup"] >= 0.9
          and messages_ok and checkers_ok)
    print(f"  read-heavy {READ_HEAVY_RATIO}:1 | {num_keys} keys x "
          f"{rounds} rounds | classic "
          f"{solo['classic']['ops_per_s']:8.0f} op/s | fast "
          f"{solo['fast']['ops_per_s']:8.0f} op/s | "
          f"{solo['fast_speedup']:.2f}x | msgs "
          f"{solo['fast']['messages_sent']}/"
          f"{solo['classic']['messages_sent']}")
    print(f"    contended x{MWMR_WRITERS} | classic "
          f"{contended['classic']['ops_per_s']:8.0f} op/s | fast "
          f"{contended['fast']['ops_per_s']:8.0f} op/s | "
          f"{contended['fast_speedup']:.2f}x | "
          f"{contended['fast_read_fallbacks']} fallbacks | "
          f"{'OK' if ok else 'FAIL'}")
    return {
        "uncontended": solo,
        "contended": contended,
        "uncontended_gate": uncontended_gate,
        "contended_gate": 0.9,
        "fast_fewer_messages": messages_ok,
        "checkers_clean": checkers_ok,
        "ok": ok,
    }


async def run_serving_rounds(kv: ShardedKVStore, keys: List[str],
                             rounds: int) -> Dict[str, Any]:
    """Timed put/get rounds over a started store (start cost excluded:
    the scaling claim is about serving throughput, not spawn latency)."""
    started = time.perf_counter()
    correct = True
    for r in range(rounds):
        await kv.put_many({key: f"r{r}-{key}" for key in keys})
        reads = await kv.get_many(keys)
        correct = correct and all(reads[key] == f"r{r}-{key}"
                                  for key in keys)
    elapsed = time.perf_counter() - started
    ops = rounds * 2 * len(keys)
    return {
        "elapsed_s": elapsed,
        "ops": ops,
        "ops_per_s": ops / elapsed,
        "rounds": rounds,
        "correct": correct,
    }


async def run_multiproc_point(num_keys: int, num_procs: int,
                              data_dir: str, rounds: int
                              ) -> Dict[str, Any]:
    """One multiproc data point: ``num_procs`` shard groups, each a
    supervised child process serving its replica set over TCP."""
    keys = [f"key:{n}" for n in range(num_keys)]
    kv = ShardedKVStore(CachedRegularStorageProtocol, MULTIPROC_CONFIG,
                        num_shards=num_procs, seed=11,
                        data_dir=data_dir, granularity="group")
    spawn_started = time.perf_counter()
    await kv.start()
    spawn_s = time.perf_counter() - spawn_started
    try:
        row = await run_serving_rounds(kv, keys, rounds)
        restarts = sum(sum(shard.supervisor.restarts.values())
                       for shard in kv.shards.values())
    finally:
        await kv.stop()
    row.update({
        "processes": num_procs,
        "spawn_s": round(spawn_s, 4),
        "restarts": restarts,
        "ok": row.pop("correct") and restarts == 0,
    })
    return row


async def run_inproc_reference(num_keys: int, num_shards: int,
                               rounds: int) -> Dict[str, Any]:
    """The same sharded workload in one interpreter -- the GIL-bound
    figure the 4-process point is compared against."""
    keys = [f"key:{n}" for n in range(num_keys)]
    async with ShardedKVStore(CachedRegularStorageProtocol, CONFIG,
                              num_shards=num_shards, seed=11) as kv:
        row = await run_serving_rounds(kv, keys, rounds)
    row["ok"] = row.pop("correct")
    return row


def bench_multiproc(num_keys: int, procs_list: List[int],
                    rounds: int) -> Dict[str, Any]:
    """Multi-process scaling: ops/s at 1/2/4 supervised replica
    processes vs the in-process figure on the same shard topology.

    The >= 2x gate at the widest point is enforced only on hosts with
    at least :data:`MULTIPROC_SCALE_MIN_CPUS` cores -- on fewer cores
    the children time-slice one CPU and the TCP hop is pure overhead,
    so the run records the measured ratio honestly and gates on
    correctness (zero restarts, every read correct) instead.
    """
    cpu_count = os.cpu_count() or 1
    gc.collect()
    inproc = asyncio.run(run_inproc_reference(
        num_keys, max(procs_list), rounds))
    print(f"  multiproc scaling | {num_keys} keys x {rounds} rounds | "
          f"inproc ({max(procs_list)} shards) "
          f"{inproc['ops_per_s']:8.0f} op/s")
    points = []
    for procs in procs_list:
        gc.collect()
        data_dir = tempfile.mkdtemp(prefix="repro-bench-multiproc-")
        try:
            point = asyncio.run(run_multiproc_point(
                num_keys, procs, data_dir, rounds))
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
        points.append(point)
        print(f"    {procs} process(es) | {point['ops_per_s']:8.0f} op/s "
              f"| spawn {point['spawn_s']:.2f}s | "
              f"{point['restarts']} restarts | "
              f"{'OK' if point['ok'] else 'FAIL'}")
    widest = points[-1]
    ratio = widest["ops_per_s"] / inproc["ops_per_s"]
    enforce = cpu_count >= MULTIPROC_SCALE_MIN_CPUS
    ok = (inproc["ok"] and all(p["ok"] for p in points)
          and (ratio >= 2.0 or not enforce))
    print(f"    {widest['processes']}-process vs inproc: {ratio:.2f}x "
          f"({cpu_count} CPU(s); gate "
          f"{'enforced' if enforce else 'recorded only'}) | "
          f"{'OK' if ok else 'FAIL'}")
    return {
        "num_keys": num_keys,
        "rounds": rounds,
        "cpu_count": cpu_count,
        "inproc_reference": inproc,
        "points": points,
        "scaling_ratio": round(ratio, 3),
        "gate": f">= 2.0x at {widest['processes']} processes when "
                f"cpu_count >= {MULTIPROC_SCALE_MIN_CPUS}",
        "gate_enforced": enforce,
        "ok": ok,
    }


def bench_reshard(num_keys: int) -> Dict[str, Any]:
    row = asyncio.run(run_reshard_under_load(num_keys))
    print(f"  reshard 2->3 under load | {num_keys} keys | "
          f"{row['moved_keys']} moved | "
          f"{row['concurrent_puts']} puts + {row['concurrent_gets']} gets "
          f"concurrent | {row['fenced_writes']} fenced | "
          f"{row['elapsed_s']:.3f}s | "
          f"{'OK' if row['ok'] else 'FAIL'}")
    return row


def _measure(runner, num_keys: int, repeats: int) -> Dict[str, Any]:
    """Best-of-N full-lifecycle time (scheduler/GC noise dominates
    one-shot numbers; the minimum is the standard least-noise estimator
    -- cf. ``timeit`` -- and is applied symmetrically to every mode).

    Timed around ``asyncio.run`` so the event loop's own teardown is
    included -- cancelling a per-key baseline's thousands of replica
    tasks is real work the multiplexed store never schedules.
    """
    samples = []
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        row = asyncio.run(runner(num_keys))
        row["elapsed_s"] = time.perf_counter() - started
        samples.append(row)
    samples.sort(key=lambda row: row["elapsed_s"])
    best = samples[0]
    best["median_s"] = round(statistics.median(
        row["elapsed_s"] for row in samples), 4)
    best["samples_s"] = [round(row["elapsed_s"], 4) for row in samples]
    return best


def bench(num_keys: int, repeats: int = 7) -> Dict[str, Any]:
    baseline = _measure(run_per_key_baseline, num_keys, repeats)
    multiplexed = _measure(run_multiplexed, num_keys, repeats)
    unbatched = _measure(run_multiplexed_unbatched, num_keys, repeats)
    multi_writer = _measure(run_multi_writer, num_keys, repeats)
    operations = 2 * num_keys  # one write + one read per key
    for row in (baseline, multiplexed, unbatched):
        row["ops"] = operations
        row["ops_per_s"] = operations / row["elapsed_s"]
    # The contended mode performs W writes + 1 read per key.
    multi_writer["ops"] = (MWMR_WRITERS + 1) * num_keys
    multi_writer["ops_per_s"] = multi_writer["ops"] / \
        multi_writer["elapsed_s"]
    speedup = baseline["elapsed_s"] / multiplexed["elapsed_s"]
    batching_gain = unbatched["elapsed_s"] / multiplexed["elapsed_s"]
    print(f"  {num_keys:>5} keys | per-key {baseline['elapsed_s']:7.3f}s "
          f"({baseline['ops_per_s']:8.0f} op/s, "
          f"{baseline['replica_tasks']:>5} replica tasks) | "
          f"multiplexed {multiplexed['elapsed_s']:7.3f}s "
          f"({multiplexed['ops_per_s']:8.0f} op/s, "
          f"{multiplexed['replica_tasks']} tasks) | {speedup:5.1f}x | "
          f"unbatched {unbatched['elapsed_s']:7.3f}s "
          f"(vector gain {batching_gain:4.2f}x) | "
          f"mwmr x{MWMR_WRITERS} {multi_writer['elapsed_s']:7.3f}s "
          f"({multi_writer['ops_per_s']:8.0f} op/s)")
    return {
        "num_keys": num_keys,
        "per_key_baseline": baseline,
        "multiplexed": multiplexed,
        "multiplexed_unbatched": unbatched,
        "multi_writer": multi_writer,
        "speedup": speedup,
        "vector_batching_gain": batching_gain,
    }


def bench_codec(repeats: int = 120) -> Dict[str, Any]:
    """Binary vs JSON codec on the bench_micro frame corpus."""
    import sys as _sys
    from pathlib import Path
    _sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_micro import codec_corpus, time_codec
    from repro.runtime.codec import (decode_message_binary,
                                     encode_message_binary)
    from repro.runtime import decode_message, encode_message
    corpus = codec_corpus()
    json_s = min(time_codec(encode_message, decode_message, corpus,
                            repeats=repeats) for _ in range(3))
    binary_s = min(time_codec(encode_message_binary,
                              decode_message_binary, corpus,
                              repeats=repeats) for _ in range(3))
    row = {
        "json_s": round(json_s, 4),
        "binary_s": round(binary_s, 4),
        "speedup": round(json_s / binary_s, 2),
        "corpus": "bench_micro.codec_corpus (write/ack/history frames)",
    }
    print(f"  codec corpus | json {json_s:.3f}s | binary {binary_s:.3f}s "
          f"| {row['speedup']:.2f}x")
    return row


#: PR-4's recorded multiplexed throughput at 256 keys (ops/s), the
#: baseline the vector round engine is gated against (>= 1.5x).
PR4_MULTIPLEXED_OPS_256 = 13625.7


async def run_smoke_suite(num_keys: int) -> Dict[str, Dict[str, Any]]:
    """All throughput modes in one event loop (the CI configuration).

    One started multiplexed store is reused across the batched and
    unbatched modes (distinct key ranges) instead of rebuilding the
    cluster per mode, so the added batched mode does not inflate CI
    time; per-mode timing starts after the shared setup.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    rows["per_key_baseline"] = await run_per_key_baseline(num_keys)
    store = MultiRegisterStore(CachedRegularStorageProtocol(), CONFIG)
    await store.start()
    try:
        batch_keys = [f"key:b:{n}" for n in range(num_keys)]
        mark = store.network.messages_sent
        started = time.perf_counter()
        await store.write_many({key: f"value-{key}"
                                for key in batch_keys})
        reads = await store.read_many(batch_keys)
        rows["multiplexed"] = {
            "elapsed_s": time.perf_counter() - started,
            "replica_tasks": CONFIG.num_objects,
            # per-mode delta: the store is shared across modes
            "messages_sent": store.network.messages_sent - mark,
        }
        assert all(reads[key] == f"value-{key}" for key in batch_keys)
        solo_keys = [f"key:u:{n}" for n in range(num_keys)]
        mark = store.network.messages_sent
        started = time.perf_counter()
        await asyncio.gather(*(store.write(key, f"value-{key}")
                               for key in solo_keys))
        solo_reads = dict(zip(solo_keys, await asyncio.gather(
            *(store.read(key) for key in solo_keys))))
        rows["multiplexed_unbatched"] = {
            "elapsed_s": time.perf_counter() - started,
            "replica_tasks": CONFIG.num_objects,
            "messages_sent": store.network.messages_sent - mark,
        }
        assert all(solo_reads[key] == f"value-{key}"
                   for key in solo_keys)
    finally:
        await store.stop()
    rows["multi_writer"] = await run_multi_writer(num_keys)
    return rows


def bench_smoke(num_keys: int) -> Dict[str, Any]:
    gc.collect()
    rows = asyncio.run(run_smoke_suite(num_keys))
    baseline = rows["per_key_baseline"]
    multiplexed = rows["multiplexed"]
    unbatched = rows["multiplexed_unbatched"]
    multi_writer = rows["multi_writer"]
    operations = 2 * num_keys
    for row in (baseline, multiplexed, unbatched):
        row["ops"] = operations
        row["ops_per_s"] = operations / row["elapsed_s"]
    multi_writer["ops"] = (MWMR_WRITERS + 1) * num_keys
    multi_writer["ops_per_s"] = multi_writer["ops"] / \
        multi_writer["elapsed_s"]
    speedup = baseline["elapsed_s"] / multiplexed["elapsed_s"]
    batching_gain = unbatched["elapsed_s"] / multiplexed["elapsed_s"]
    print(f"  {num_keys:>5} keys [smoke, shared store] | per-key "
          f"{baseline['elapsed_s']:7.3f}s | multiplexed "
          f"{multiplexed['elapsed_s']:7.3f}s "
          f"({multiplexed['ops_per_s']:8.0f} op/s) | {speedup:5.1f}x | "
          f"vector gain {batching_gain:4.2f}x | mwmr "
          f"{multi_writer['elapsed_s']:7.3f}s")
    return {
        "num_keys": num_keys,
        "per_key_baseline": baseline,
        "multiplexed": multiplexed,
        "multiplexed_unbatched": unbatched,
        "multi_writer": multi_writer,
        "speedup": speedup,
        "vector_batching_gain": batching_gain,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="also run the 1024-key point")
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration: 64 keys, one shared "
                             "store across modes, 2x gate")
    parser.add_argument("--output", default="BENCH_service.json",
                        help="where to write the JSON results")
    args = parser.parse_args(argv)

    if args.smoke:
        sizes = [64]
        gate_keys, gate = 64, 2.0
    else:
        sizes = [64, 256, 1024] if args.full else [64, 256]
        gate_keys, gate = 256, 3.0
    print(f"service-tier benchmark: {CONFIG.describe()}"
          f"{' [smoke]' if args.smoke else ''}")
    if args.smoke:
        results = [bench_smoke(size) for size in sizes]
    else:
        results = [bench(size, repeats=7) for size in sizes]
    codec = bench_codec(repeats=30 if args.smoke else 120)
    # Reshard-under-load and snapshot-reads-under-load run in every mode
    # (smoke included): the CI tripwires for reconfiguration and
    # cross-shard snapshot-consistency regressions.
    reshard = bench_reshard(gate_keys)
    snapshots = bench_snapshots(min(gate_keys, 16))
    # Read-heavy mode: the contention-adaptive fast-read gate.  Smoke
    # runs fewer rounds on the smaller keyspace with a relaxed speedup
    # floor (same spirit as the 3x -> 2x multiplexing gate).
    if args.smoke:
        read_heavy = bench_read_heavy(64, rounds=30,
                                      uncontended_gate=1.15)
        multiproc = bench_multiproc(32, [1, 2], rounds=2)
    else:
        read_heavy = bench_read_heavy(256, rounds=100,
                                      uncontended_gate=1.3)
        multiproc = bench_multiproc(64, [1, 2, 4], rounds=3)

    gated = next(r for r in results if r["num_keys"] == gate_keys)
    # Vector-ack tripwire: batched rounds must move strictly fewer
    # envelopes than the same keyspace driven one operation per key.
    ack = {
        "multiplexed_messages": gated["multiplexed"]["messages_sent"],
        "unbatched_messages":
            gated["multiplexed_unbatched"]["messages_sent"],
    }
    ack["ok"] = ack["multiplexed_messages"] < ack["unbatched_messages"]
    vs_pr4 = (gated["multiplexed"]["ops_per_s"] / PR4_MULTIPLEXED_OPS_256
              if gate_keys == 256 else None)
    verdict = {
        "config": CONFIG.describe(),
        "mwmr_config": MWMR_CONFIG.describe(),
        "protocol": "gv-regular-cached",
        "workload": "write each key once, then read each key once; "
                    "multiplexed_unbatched: same store, one operation "
                    "per key (no vector rounds); "
                    f"multi_writer: {MWMR_WRITERS} writers race on every "
                    "key, then read each key once",
        "smoke": args.smoke,
        "results": results,
        "codec_microbench": codec,
        "reshard_under_load": reshard,
        "snapshot_reads_under_load": snapshots,
        "read_heavy_fast_reads": read_heavy,
        "multiproc_scaling": multiproc,
        "vector_ack_messages": ack,
        "claim": f"multiplexed >= {gate}x per-key baseline at "
                 f"{gate_keys} keys; multiplexed at 256 keys >= 1.5x "
                 f"the PR-4 recording ({PR4_MULTIPLEXED_OPS_256:.0f} "
                 "op/s); binary codec beats JSON on the frame corpus; "
                 "reshard 2->3 completes under load with no lost "
                 "reads; cross-shard snapshots certify consistent cuts "
                 "under mixed writers; batched rounds send fewer "
                 "envelopes than unbatched; multiproc serving stays "
                 "correct with zero restarts (and scales >= 2x over "
                 f"inproc when cpu_count >= {MULTIPROC_SCALE_MIN_CPUS}); "
                 f"read-heavy {READ_HEAVY_RATIO}:1 fast reads beat "
                 "classic uncontended with strictly fewer messages, "
                 "stay within 10% of classic contended, and pass the "
                 "atomicity + fast-read freshness checkers",
        f"speedup_at_{gate_keys}": gated["speedup"],
        "pr4_multiplexed_ops_per_s_256": PR4_MULTIPLEXED_OPS_256,
        "speedup_vs_pr4": (round(vs_pr4, 2)
                           if vs_pr4 is not None else None),
        "ok": (gated["speedup"] >= gate and reshard["ok"]
               and snapshots["ok"] and codec["speedup"] > 1.0
               and multiproc["ok"] and ack["ok"] and read_heavy["ok"]
               and (vs_pr4 is None or vs_pr4 >= 1.5)),
    }
    with open(args.output, "w") as fh:
        json.dump(verdict, fh, indent=2)
    print(f"wrote {args.output}; speedup at {gate_keys} keys: "
          f"{gated['speedup']:.1f}x"
          + (f"; vs PR-4: {vs_pr4:.2f}x" if vs_pr4 is not None else "")
          + f"; codec {codec['speedup']:.2f}x; reshard "
          f"{'OK' if reshard['ok'] else 'FAIL'}; snapshots "
          f"{'OK' if snapshots['ok'] else 'FAIL'}; fast reads "
          f"{read_heavy['uncontended']['fast_speedup']:.2f}x "
          f"{'OK' if read_heavy['ok'] else 'FAIL'}; multiproc "
          f"{multiproc['scaling_ratio']:.2f}x "
          f"{'OK' if multiproc['ok'] else 'FAIL'}; vector-ack "
          f"{'OK' if ack['ok'] else 'FAIL'} "
          f"({'OK' if verdict['ok'] else 'FAIL'})")
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
