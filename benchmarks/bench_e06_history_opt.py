"""Bench E6: §5.1 suffix optimization + cached-read micro-bench."""

from conftest import regenerate

from repro.config import SystemConfig
from repro.core.regular import CachedRegularStorageProtocol
from repro.system import StorageSystem


def test_e06_regenerate(benchmark):
    regenerate(benchmark, "E6")


def test_e06_cached_read_cost_long_history(benchmark):
    """Suffix READ after 100 writes -- compare with bench_e05's reader."""
    config = SystemConfig.optimal(t=1, b=1, num_readers=1)
    system = StorageSystem(CachedRegularStorageProtocol(), config,
                           trace_enabled=False)
    for k in range(100):
        system.write(f"v{k}")
    system.read(0)  # warm the cache

    value = benchmark(lambda: system.read(0))
    assert value == "v99"
