"""Bench E4: wait-freedom sweep + concurrent-workload micro-bench."""

from conftest import regenerate

from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.harness import WorkloadSpec, run_concurrent
from repro.sim import RandomScheduler
from repro.system import StorageSystem


def test_e04_regenerate(benchmark):
    regenerate(benchmark, "E4")


def test_e04_concurrent_workload_cost(benchmark):
    """A 4-writer-op / 2x4-read concurrent workload at t=2, b=1."""
    seeds = iter(range(10_000))

    def workload():
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        system = StorageSystem(SafeStorageProtocol(), config,
                               scheduler=RandomScheduler(next(seeds)),
                               trace_enabled=False)
        history = run_concurrent(
            system, WorkloadSpec(num_writes=4, reads_per_reader=4, seed=1))
        return history

    history = benchmark(workload)
    assert all(record.complete for record in history.operations())
