"""Bench E7: protocol comparison table + per-protocol read micro-bench."""

import pytest
from conftest import regenerate

from repro.baselines import (AbdRegularProtocol, AuthenticatedProtocol,
                             PassiveReaderProtocol)
from repro.config import SystemConfig
from repro.core.regular import RegularStorageProtocol
from repro.core.safe import SafeStorageProtocol
from repro.system import StorageSystem


def test_e07_regenerate(benchmark):
    regenerate(benchmark, "E7")


@pytest.mark.parametrize("name,factory,b", [
    ("abd", AbdRegularProtocol, 0),
    ("passive", PassiveReaderProtocol, 1),
    ("auth", AuthenticatedProtocol, 1),
    ("gv-safe", SafeStorageProtocol, 1),
    ("gv-regular", RegularStorageProtocol, 1),
])
def test_e07_read_cost(benchmark, name, factory, b):
    config = SystemConfig.with_objects(
        t=2, b=b, num_objects=factory().min_objects(2, b), num_readers=1)
    system = StorageSystem(factory(), config, trace_enabled=False)
    system.write("payload")

    value = benchmark(lambda: system.read(0))
    assert value == "payload"
