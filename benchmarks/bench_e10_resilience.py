"""Bench E10: resilience boundary + buried-write attack micro-bench."""

from conftest import regenerate

from repro.harness.experiments.e10_resilience import _stale_write_attack


def test_e10_regenerate(benchmark):
    regenerate(benchmark, "E10")


def test_e10_attack_staging_cost(benchmark):
    """Cost of staging one buried-write attack below the bound."""
    violated = benchmark(lambda: _stale_write_attack(2, 1, 5))
    assert violated
