"""Bench E9: server-centric lower bound + push-enabled read micro-bench."""

from conftest import regenerate

from repro.config import SystemConfig
from repro.sim.server_centric import ServerCentricFastProtocol
from repro.system import StorageSystem


def test_e09_regenerate(benchmark):
    regenerate(benchmark, "E9")


def test_e09_push_enabled_read_cost(benchmark):
    config = SystemConfig.at_impossibility_threshold(2, 1)
    system = StorageSystem(ServerCentricFastProtocol("threshold"), config,
                           trace_enabled=False)
    system.write("pushed")

    value = benchmark(lambda: system.read(0))
    assert value == "pushed"
