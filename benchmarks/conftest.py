"""Benchmark-suite helpers.

Each ``bench_eXX_*.py`` regenerates one paper artifact: the full
experiment runs exactly once under timing (``benchmark.pedantic``), its
table is printed into the benchmark log, and its verdict is asserted --
so ``pytest benchmarks/ --benchmark-only`` is the single command that
re-derives every number in EXPERIMENTS.md.  Files also carry
micro-benchmarks of the underlying operations so protocol-level
performance regressions are visible.
"""

import pytest

from repro.harness.experiments import REGISTRY, run_all


@pytest.fixture(scope="session", autouse=True)
def _populate_registry():
    """Importing any experiment populates the registry for all."""
    run_all(ids=["E2"])


def regenerate(benchmark, experiment_id: str):
    """Run one experiment once (timed); print its table; assert its claim."""
    result = benchmark.pedantic(REGISTRY[experiment_id], rounds=1,
                                iterations=1)
    print()
    print(result.render())
    assert result.ok, f"{experiment_id} did not reproduce the paper's claim"
    return result
