"""Micro-benchmarks of the substrates themselves.

Not tied to a paper artifact; these watch the simulator and the hot
protocol paths so optimization work (or regressions) show up in numbers:

* kernel message throughput (deliveries/second);
* object automaton handler cost;
* candidate-tracker predicate evaluation with many candidates;
* wire-codec encode/decode throughput.
"""

import pytest

from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.core.safe.object import SafeObject
from repro.core.safe.predicates import CandidateTracker
from repro.messages import HistoryReadAck, HistoryEntry, Pw, ReadRequest
from repro.runtime import decode_message, encode_message
from repro.system import StorageSystem
from repro.types import (TimestampValue, TsrArray, WRITER, WriteTuple,
                         reader)


def test_kernel_throughput(benchmark):
    """Messages the kernel can route per benchmark round (100 ops)."""
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)
    system = StorageSystem(SafeStorageProtocol(), config,
                           trace_enabled=False)
    counter = [0]

    def burst():
        for _ in range(10):
            counter[0] += 1
            system.write(f"v{counter[0]}")
        return system.metrics()["messages_delivered"]

    delivered = benchmark(burst)
    assert delivered > 0


def test_object_handler_cost(benchmark):
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)
    object_ = SafeObject(0, config)
    tsr = [0]

    def handle():
        tsr[0] += 1
        return object_.on_message(reader(0),
                                  ReadRequest(1, tsr[0], reader_index=0))

    replies = benchmark(handle)
    assert len(replies) == 1


def test_candidate_tracker_cost(benchmark):
    """safe()/highCand()/elimination over 20 candidates x 20 objects."""
    arr = TsrArray.empty(20, 1)
    candidates = [WriteTuple(TimestampValue(ts, f"v{ts}"), arr)
                  for ts in range(1, 21)]

    def evaluate():
        tracker = CandidateTracker(elimination_threshold=7,
                                   confirmation_threshold=3)
        for i, c in enumerate(candidates):
            tracker.record_first_round(i % 20, c.tsval, c)
        for i, c in enumerate(reversed(candidates)):
            tracker.record_second_round(i % 20, c.tsval, c)
        return tracker.returnable()

    result = evaluate()
    benchmark(evaluate)
    assert result is None or result.ts >= 1


def test_codec_throughput(benchmark):
    """Encode+decode of a 50-entry history ack."""
    arr = TsrArray.empty(6, 2)
    history = {
        ts: HistoryEntry(pw=TimestampValue(ts, f"v{ts}"),
                         w=WriteTuple(TimestampValue(ts, f"v{ts}"), arr))
        for ts in range(1, 51)
    }
    ack = HistoryReadAck(round_index=1, tsr=3, object_index=0,
                         history=history)

    def roundtrip():
        return decode_message(encode_message(ack))

    decoded = benchmark(roundtrip)
    assert decoded == ack
