"""Micro-benchmarks of the substrates themselves.

Not tied to a paper artifact; these watch the simulator and the hot
protocol paths so optimization work (or regressions) show up in numbers:

* kernel message throughput (deliveries/second);
* object automaton handler cost;
* candidate-tracker predicate evaluation with many candidates;
* wire-codec encode/decode throughput, JSON vs binary, including the
  regression tripwire that binary must beat JSON on a representative
  frame corpus;
* the vector round engine (batched multi-key writes+reads end to end).
"""

import asyncio
import time

import pytest

from repro.config import SystemConfig
from repro.core.regular import CachedRegularStorageProtocol
from repro.core.safe import SafeStorageProtocol
from repro.core.safe.object import SafeObject
from repro.core.safe.predicates import CandidateTracker
from repro.messages import (Batch, HistoryReadAck, HistoryEntry, Pw,
                            ReadRequest, PwAck, WriteAck)
from repro.runtime import decode_message, encode_message
from repro.runtime.codec import (decode_message_binary,
                                 encode_message_binary)
from repro.service import MultiRegisterStore
from repro.system import StorageSystem
from repro.types import (TAG0, INITIAL_TSVAL, TimestampValue, TsrArray,
                         WRITER, WriterTag, WriteTuple,
                         initial_write_tuple, reader)


def codec_corpus():
    """Frames representative of the service tier's hot wire traffic:
    write-round batches, their ack batches, and history read acks."""
    w0 = initial_write_tuple(4, 1)
    arr6 = TsrArray.empty(6, 2)
    history = {
        WriterTag(ts, 0): HistoryEntry(
            pw=TimestampValue(ts, f"v{ts}"),
            w=WriteTuple(TimestampValue(ts, f"v{ts}"), arr6))
        for ts in range(1, 51)
    }
    return [
        Pw(ts=3, pw=TimestampValue(3, "value-key:123"), w=w0,
           register_id="key:123"),
        PwAck(ts=3, object_index=2, tsr=(7,), register_id="key:123"),
        WriteAck(ts=3, object_index=2, register_id="key:123"),
        ReadRequest(round_index=1, tsr=9, reader_index=0,
                    register_id="key:123"),
        HistoryReadAck(round_index=1, tsr=3, object_index=0,
                       history=history),
        Batch(messages=tuple(
            Pw(ts=2, pw=TimestampValue(2, f"value-key:{i}"), w=w0,
               register_id=f"key:{i}")
            for i in range(64))),
        Batch(messages=tuple(
            HistoryReadAck(
                round_index=1, tsr=9, object_index=1,
                history={
                    TAG0: HistoryEntry(pw=INITIAL_TSVAL, w=w0),
                    WriterTag(3, 0): HistoryEntry(
                        pw=TimestampValue(3, f"value-key:{i}"),
                        w=WriteTuple(TimestampValue(3, f"value-key:{i}"),
                                     TsrArray.empty(4, 1)))},
                register_id=f"key:{i}")
            for i in range(64))),
    ]


def time_codec(encode, decode, corpus, repeats: int = 200) -> float:
    """Total encode+decode seconds over ``repeats`` corpus passes."""
    wires = [encode(message) for message in corpus]
    started = time.perf_counter()
    for _ in range(repeats):
        for message in corpus:
            encode(message)
        for wire in wires:
            decode(wire)
    return time.perf_counter() - started


def test_kernel_throughput(benchmark):
    """Messages the kernel can route per benchmark round (100 ops)."""
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)
    system = StorageSystem(SafeStorageProtocol(), config,
                           trace_enabled=False)
    counter = [0]

    def burst():
        for _ in range(10):
            counter[0] += 1
            system.write(f"v{counter[0]}")
        return system.metrics()["messages_delivered"]

    delivered = benchmark(burst)
    assert delivered > 0


def test_object_handler_cost(benchmark):
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)
    object_ = SafeObject(0, config)
    tsr = [0]

    def handle():
        tsr[0] += 1
        return object_.on_message(reader(0),
                                  ReadRequest(1, tsr[0], reader_index=0))

    replies = benchmark(handle)
    assert len(replies) == 1


def test_candidate_tracker_cost(benchmark):
    """safe()/highCand()/elimination over 20 candidates x 20 objects."""
    arr = TsrArray.empty(20, 1)
    candidates = [WriteTuple(TimestampValue(ts, f"v{ts}"), arr)
                  for ts in range(1, 21)]

    def evaluate():
        tracker = CandidateTracker(elimination_threshold=7,
                                   confirmation_threshold=3)
        for i, c in enumerate(candidates):
            tracker.record_first_round(i % 20, c.tsval, c)
        for i, c in enumerate(reversed(candidates)):
            tracker.record_second_round(i % 20, c.tsval, c)
        return tracker.returnable()

    result = evaluate()
    benchmark(evaluate)
    assert result is None or result.ts >= 1


def test_codec_throughput(benchmark):
    """Encode+decode of a 50-entry history ack (JSON, legacy format)."""
    arr = TsrArray.empty(6, 2)
    history = {
        ts: HistoryEntry(pw=TimestampValue(ts, f"v{ts}"),
                         w=WriteTuple(TimestampValue(ts, f"v{ts}"), arr))
        for ts in range(1, 51)
    }
    ack = HistoryReadAck(round_index=1, tsr=3, object_index=0,
                         history=history)

    def roundtrip():
        return decode_message(encode_message(ack))

    decoded = benchmark(roundtrip)
    assert decoded == ack


def test_binary_codec_throughput(benchmark):
    """Encode+decode of the same 50-entry history ack, binary format."""
    arr = TsrArray.empty(6, 2)
    history = {
        ts: HistoryEntry(pw=TimestampValue(ts, f"v{ts}"),
                         w=WriteTuple(TimestampValue(ts, f"v{ts}"), arr))
        for ts in range(1, 51)
    }
    ack = HistoryReadAck(round_index=1, tsr=3, object_index=0,
                         history=history)

    def roundtrip():
        return decode_message_binary(encode_message_binary(ack))

    decoded = benchmark(roundtrip)
    assert decoded == ack


def test_binary_codec_beats_json_on_corpus():
    """CI tripwire: binary encode+decode must beat JSON on the frame
    corpus.  Deliberately loose (CI machines are noisy); the measured
    ratio on a quiet machine is recorded in BENCH_service.json by
    ``bench_service.py`` (>= 3x there)."""
    corpus = codec_corpus()
    for message in corpus:  # correctness before speed
        assert decode_message_binary(encode_message_binary(message)) \
            == message
    json_s = time_codec(encode_message, decode_message, corpus,
                        repeats=60)
    binary_s = time_codec(encode_message_binary, decode_message_binary,
                          corpus, repeats=60)
    assert binary_s < json_s, (
        f"binary codec regressed below JSON: {binary_s:.3f}s vs "
        f"{json_s:.3f}s on the corpus")


def test_vector_round_engine(benchmark):
    """Batched 32-key write+read through the vector round engine,
    end to end on the asyncio tier (store lifecycle included)."""
    config = SystemConfig.optimal(t=1, b=1, num_readers=1)
    keys = [f"key:{n}" for n in range(32)]

    async def batch() -> int:
        store = MultiRegisterStore(CachedRegularStorageProtocol(), config)
        await store.start()
        await store.write_many({key: f"v-{key}" for key in keys})
        reads = await store.read_many(keys)
        await store.stop()
        return len(reads)

    count = benchmark(lambda: asyncio.run(batch()))
    assert count == len(keys)
