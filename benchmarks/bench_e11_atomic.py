"""Bench E11: atomic extension validation + atomic-read micro-bench."""

from conftest import regenerate

from repro.config import SystemConfig
from repro.core.atomic import AtomicStorageProtocol
from repro.system import StorageSystem


def test_e11_regenerate(benchmark):
    regenerate(benchmark, "E11")


def test_e11_atomic_read_cost(benchmark):
    """3-round atomic READ at t=2, b=1 -- compare with bench_e02's read."""
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)
    system = StorageSystem(AtomicStorageProtocol(), config,
                           trace_enabled=False)
    system.write("payload")

    value = benchmark(lambda: system.read(0))
    assert value == "payload"
