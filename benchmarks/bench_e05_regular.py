"""Bench E5: regular storage correctness sweep + read micro-bench."""

from conftest import regenerate

from repro.config import SystemConfig
from repro.core.regular import RegularStorageProtocol
from repro.system import StorageSystem


def test_e05_regenerate(benchmark):
    regenerate(benchmark, "E5")


def test_e05_regular_read_cost_long_history(benchmark):
    """Full-history READ after 100 writes (the cost §5.1 attacks)."""
    config = SystemConfig.optimal(t=1, b=1, num_readers=1)
    system = StorageSystem(RegularStorageProtocol(), config,
                           trace_enabled=False)
    for k in range(100):
        system.write(f"v{k}")

    value = benchmark(lambda: system.read(0))
    assert value == "v99"
