"""Bench E3: Theorem 1 safety sweep + adversarial read micro-bench."""

from conftest import regenerate

from repro.adversary import forger, max_byzantine
from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.system import StorageSystem


def test_e03_regenerate(benchmark):
    regenerate(benchmark, "E3")


def test_e03_read_under_forgery_cost(benchmark):
    """READ cost with b Byzantine forgers active (t=2, b=1)."""
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)
    system = StorageSystem(SafeStorageProtocol(), config,
                           trace_enabled=False)
    max_byzantine(config, forger()).apply(system)
    system.write("genuine")

    value = benchmark(lambda: system.read(0))
    assert value == "genuine"
