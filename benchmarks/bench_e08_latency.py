"""Bench E8: latency distributions + delay-model simulation micro-bench."""

from conftest import regenerate

from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.sim import EarliestDeliveryScheduler, ExponentialDelay
from repro.system import StorageSystem


def test_e08_regenerate(benchmark):
    regenerate(benchmark, "E8")


def test_e08_metric_simulation_cost(benchmark):
    """Cost of a 10-read latency simulation under a metric delay model."""

    def simulate():
        config = SystemConfig.optimal(t=2, b=1, num_readers=1)
        system = StorageSystem(SafeStorageProtocol(), config,
                               scheduler=EarliestDeliveryScheduler(),
                               delay_model=ExponentialDelay(0.2, 0.5, seed=1),
                               trace_enabled=False)
        system.write("v")
        for _ in range(10):
            system.read(0)
        return system.kernel.now

    virtual_time = benchmark(simulate)
    assert virtual_time > 0
