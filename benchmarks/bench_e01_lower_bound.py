"""Bench E1: regenerate Figure 1 / Proposition 1, plus construction cost."""

from conftest import regenerate

from repro.core.lower_bound import (FastReadProtocol, RULE_MAJORITY,
                                    run_lower_bound)


def test_e01_regenerate(benchmark):
    regenerate(benchmark, "E1")


def test_e01_single_construction_cost(benchmark):
    """Time of one full five-run staging at t=2, b=1 (S=6)."""

    def stage():
        return run_lower_bound(lambda: FastReadProtocol(RULE_MAJORITY),
                               t=2, b=1)

    report = benchmark(stage)
    assert report.violated
