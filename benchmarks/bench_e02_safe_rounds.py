"""Bench E2: round complexity of the safe storage + op micro-bench."""

from conftest import regenerate

from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.system import StorageSystem


def test_e02_regenerate(benchmark):
    regenerate(benchmark, "E2")


def test_e02_write_read_pair_cost(benchmark):
    """Simulated cost of one WRITE + one READ at t=2, b=1 (S=6)."""
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)
    system = StorageSystem(SafeStorageProtocol(), config,
                           trace_enabled=False)
    counter = [0]

    def pair():
        counter[0] += 1
        system.write(f"v{counter[0]}")
        return system.read(0)

    value = benchmark(pair)
    assert value.startswith("v")
