"""Setup shim for environments whose setuptools lacks PEP 660 / wheel.

``pip install -e .`` uses pyproject.toml metadata; this file only enables
the legacy ``python setup.py develop`` fallback on old toolchains.
"""
from setuptools import setup

setup()
