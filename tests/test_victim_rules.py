"""Unit tests for the fast-read victims' selection rules and the CLI."""

import pytest

from repro.config import SystemConfig
from repro.core.lower_bound.victims import (FastReaderState,
                                            FastReadOperation,
                                            RULE_HIGHEST_TS, RULE_MAJORITY,
                                            RULE_THRESHOLD)
from repro.messages import ReadAck
from repro.types import (BOTTOM, INITIAL_TSVAL, TimestampValue, TsrArray,
                         WriteTuple, obj)


def feed(rule, acks, t=1, b=1):
    """Drive a FastReadOperation with scripted acks; return its result."""
    config = SystemConfig.optimal(t=t, b=b, num_readers=1)
    state = FastReaderState(config, 0)
    operation = FastReadOperation(state, rule)
    operation.start()
    arr = TsrArray.empty(config.num_objects, 1)
    for index, tsval in enumerate(acks):
        ack = ReadAck(round_index=1, tsr=operation.tsr, object_index=index,
                      pw=tsval, w=WriteTuple(tsval, arr))
        operation.on_message(obj(index), ack)
        if operation.done:
            return operation.result
    return None


def tv(ts, v):
    return TimestampValue(ts, v)


class TestHighestTs:
    def test_picks_max_timestamp(self):
        result = feed(RULE_HIGHEST_TS,
                      [tv(1, "old"), tv(5, "new"), tv(2, "mid")])
        assert result == "new"

    def test_all_initial_returns_bottom(self):
        result = feed(RULE_HIGHEST_TS, [INITIAL_TSVAL] * 3)
        assert result is BOTTOM


class TestMajority:
    def test_plurality_wins(self):
        result = feed(RULE_MAJORITY, [tv(1, "a"), tv(1, "a"), tv(9, "b")])
        assert result == "a"

    def test_tie_broken_toward_higher_ts(self):
        result = feed(RULE_MAJORITY, [tv(1, "a"), tv(2, "b"), tv(3, "c")])
        assert result == "c"


class TestThreshold:
    def test_needs_b_plus_one_identical(self):
        # b=1: a single report of the high value is not enough
        result = feed(RULE_THRESHOLD,
                      [tv(9, "forged"), tv(1, "real"), tv(1, "real")])
        assert result == "real"

    def test_highest_confirmed_wins(self):
        result = feed(RULE_THRESHOLD,
                      [tv(2, "new"), tv(2, "new"), tv(1, "old")],
                      t=1, b=1)
        assert result == "new"

    def test_no_confirmation_returns_bottom(self):
        result = feed(RULE_THRESHOLD, [tv(1, "a"), tv(2, "b"), tv(3, "c")])
        assert result is BOTTOM


class TestAckHandling:
    def test_duplicate_object_acks_ignored(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        operation = FastReadOperation(FastReaderState(config, 0),
                                      RULE_THRESHOLD)
        operation.start()
        arr = TsrArray.empty(4, 1)
        ack = ReadAck(round_index=1, tsr=operation.tsr, object_index=0,
                      pw=tv(9, "spam"), w=WriteTuple(tv(9, "spam"), arr))
        for _ in range(10):
            operation.on_message(obj(0), ack)
        assert not operation.done  # one object can never fill the quorum

    def test_stale_nonce_ignored(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        operation = FastReadOperation(FastReaderState(config, 0),
                                      RULE_HIGHEST_TS)
        operation.start()
        arr = TsrArray.empty(4, 1)
        stale = ReadAck(round_index=1, tsr=operation.tsr - 1,
                        object_index=0, pw=tv(1, "x"),
                        w=WriteTuple(tv(1, "x"), arr))
        operation.on_message(obj(0), stale)
        assert 0 not in operation._acks


class TestHarnessCli:
    def test_main_runs_selected_experiment(self, capsys):
        from repro.harness.__main__ import main
        exit_code = main(["E6"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E6" in captured.out
        assert "REPRODUCED" in captured.out
