"""Multi-process replica serving (:mod:`repro.service.procs`).

Covers the deployment switch, put/get over supervised child processes,
kill -9 + WAL/snapshot recovery gated on the MWMR atomicity checker,
the session-level conditional write, and the typed reconnect error of
the TCP client.

The process-spawning tests use ``granularity="group"`` (one child per
replica set) wherever the scenario allows, keeping spawn costs to one
interpreter per test.
"""

import asyncio

import pytest

from repro.api.cluster import Cluster
from repro.api.policy import RETRYABLE, RetryPolicy
from repro.config import SystemConfig
from repro.core.atomic import AtomicStorageProtocol
from repro.core.regular import RegularStorageProtocol
from repro.errors import (ConfigurationError, PreconditionFailedError,
                          ReplicaUnavailableError)
from repro.messages import TagQuery
from repro.runtime.tcp import (TcpObjectServer, TcpStorageClient,
                               _frame_binary)
from repro.service.procs import ProcMultiRegisterStore
from repro.service.sharded import ShardedKVStore
from repro.spec.checkers import check_mwmr_atomicity
from repro.types import WRITER


def run(coro):
    return asyncio.run(coro)


MULTIPROC = SystemConfig.optimal(t=1, b=1).with_deployment("multiproc")


# ---------------------------------------------------------------------------
# deployment switch
# ---------------------------------------------------------------------------


class TestDeploymentSwitch:
    def test_multiproc_config_builds_proc_stores(self, tmp_path):
        kv = ShardedKVStore(RegularStorageProtocol, MULTIPROC,
                            num_shards=2, data_dir=str(tmp_path))
        assert all(isinstance(shard, ProcMultiRegisterStore)
                   for shard in kv.shards.values())
        # per-shard durability directories are disjoint
        dirs = {shard.supervisor.data_dir for shard in kv.shards.values()}
        assert len(dirs) == 2

    def test_inproc_config_builds_plain_stores(self):
        kv = ShardedKVStore(RegularStorageProtocol,
                            SystemConfig.optimal(t=1, b=1), num_shards=2)
        assert not any(isinstance(shard, ProcMultiRegisterStore)
                       for shard in kv.shards.values())

    def test_granularity_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ProcMultiRegisterStore(RegularStorageProtocol, MULTIPROC,
                                   str(tmp_path), granularity="thread")


# ---------------------------------------------------------------------------
# serving over child processes
# ---------------------------------------------------------------------------


class TestMultiprocServing:
    def test_put_get_over_processes(self, tmp_path):
        async def scenario():
            store = ProcMultiRegisterStore(
                RegularStorageProtocol, MULTIPROC, str(tmp_path),
                granularity="group")
            async with store:
                await store.write("k1", "v1")
                assert await store.read("k1") == "v1"
                await store.write_many({f"b{i}": i for i in range(16)})
                got = await store.read_many([f"b{i}" for i in range(16)])
                assert got == {f"b{i}": i for i in range(16)}
            # a second stop is idempotent
            await store.stop()

        run(scenario())

    def test_channel_coalesces_queued_frames_per_flush(self, tmp_path):
        """A drain hands the transport one buffer, not one write per
        queued frame -- the flush count stays far below the frame
        count under vector fan-out."""
        async def scenario():
            store = ProcMultiRegisterStore(
                RegularStorageProtocol, MULTIPROC, str(tmp_path),
                granularity="group")
            async with store:
                # Concurrent operations enqueue their frames before the
                # channel writer task gets a turn, so drains see queues
                # of more than one frame.
                await asyncio.gather(
                    *(store.write(f"c{i}", i) for i in range(16)))
                await asyncio.gather(
                    *(store.read(f"c{i}") for i in range(16)))
                channels = list(store.network._channels.values())
                assert channels, "client traffic must open channels"
                frames = sum(c.frames_flushed for c in channels)
                flushes = sum(c.flushes for c in channels)
                assert frames >= flushes > 0
                return frames, flushes

        frames, flushes = run(scenario())
        # Not a strict inequality per channel (a lone frame flushes
        # alone), but across a batched workload coalescing must engage.
        assert flushes < frames

    def test_coalesce_is_frame_concatenation(self):
        from repro.service.procs import _ObjectChannel
        frames = [b"\x01aa", b"\x02bb", b"\x03cc"]
        assert _ObjectChannel.coalesce(frames) == b"\x01aa\x02bb\x03cc"
        assert _ObjectChannel.coalesce([b"solo"]) == b"solo"

    def test_multiproc_fault_verbs(self, tmp_path):
        async def scenario():
            store = ProcMultiRegisterStore(
                RegularStorageProtocol, MULTIPROC, str(tmp_path),
                granularity="group")
            async with store:
                with pytest.raises(ConfigurationError):
                    store.make_byzantine(0, object())
                with pytest.raises(ConfigurationError):
                    store.replace_object(0, automaton=object())
                # replacement-is-restart: hands back a fresh automaton
                assert store.replace_object(0) is not None

        run(scenario())


# ---------------------------------------------------------------------------
# kill -9 and recover (WAL + snapshot + heal), atomicity-checked
# ---------------------------------------------------------------------------


class TestKillAndRecover:
    def test_kill_recover_preserves_atomicity(self, tmp_path):
        """SIGKILL one replica mid-load; recovery must leave zero
        violations under :func:`check_mwmr_atomicity`."""

        async def scenario():
            config = SystemConfig.optimal(
                t=1, b=1, num_writers=2).with_deployment("multiproc")
            cluster = Cluster(AtomicStorageProtocol, config, num_shards=1,
                              granularity="replica", record_history=True,
                              data_dir=str(tmp_path))
            async with cluster:
                shard = next(iter(cluster.kv.shards.values()))
                async with cluster.session() as session:
                    for i in range(6):
                        await session.put(f"k{i}", i)
                    cluster.kv.crash_replica("k0", 1)  # real SIGKILL
                    for i in range(6, 12):
                        await session.put(f"k{i}", i)
                    for _ in range(400):  # await supervisor restart
                        if shard.supervisor.restarts.get(1):
                            break
                        await asyncio.sleep(0.05)
                    assert shard.supervisor.restarts.get(1) == 1
                    await asyncio.sleep(0.3)  # let auto-heal settle
                    for i in range(12):
                        assert await session.get(f"k{i}") == i
                result = cluster.admin().check(check_mwmr_atomicity)
                assert result.checked_reads > 0
                assert not result.violations, result.violations

        run(scenario())


# ---------------------------------------------------------------------------
# conditional writes
# ---------------------------------------------------------------------------


class TestPutIf:
    def _cluster(self):
        return Cluster(RegularStorageProtocol,
                       SystemConfig.optimal(t=1, b=1, num_writers=2),
                       num_shards=2)

    def test_put_if_matches_and_chains(self):
        async def scenario():
            async with self._cluster() as cluster:
                async with cluster.session() as s:
                    tag1 = await s.put_if("a", 1, None)  # fresh key
                    assert tag1 is not None
                    tag2 = await s.put_if("a", 2, tag1)
                    assert tag2 > tag1
                    assert await s.get("a") == 2

        run(scenario())

    def test_put_if_mismatch_raises_without_writing(self):
        async def scenario():
            async with self._cluster() as cluster:
                async with cluster.session() as s:
                    await s.put("a", 1)
                    _, tag = await s.get_tagged("a")
                    with pytest.raises(PreconditionFailedError) as exc:
                        await s.put_if("a", 99, None)
                    assert exc.value.expected is None
                    assert exc.value.observed == tag
                    assert await s.get("a") == 1  # untouched
                    # stale tag (pre-bump) also refused
                    await s.put("a", 2)
                    with pytest.raises(PreconditionFailedError):
                        await s.put_if("a", 99, tag)
                    assert await s.get("a") == 2

        run(scenario())

    def test_precondition_failure_is_not_retried(self):
        assert not any(issubclass(PreconditionFailedError, cls)
                       for cls in RETRYABLE)
        assert not RetryPolicy().handles(
            PreconditionFailedError("x", None, None))


# ---------------------------------------------------------------------------
# typed reconnect error
# ---------------------------------------------------------------------------


class TestReplicaUnavailable:
    def test_policy_absorbs_unavailability(self):
        assert ReplicaUnavailableError in RETRYABLE
        assert RetryPolicy().handles(ReplicaUnavailableError("gone"))
        assert not RetryPolicy(retry_unavailable=False).handles(
            ReplicaUnavailableError("gone"))

    def test_broken_pipe_maps_to_typed_error_then_reconnects(self):
        async def scenario():
            protocol = RegularStorageProtocol()
            config = SystemConfig.optimal(t=1, b=1)
            automaton = protocol.make_objects(config)[0]
            server = TcpObjectServer(automaton)
            port = await server.start()
            client = TcpStorageClient(WRITER, [("127.0.0.1", port)])
            await client.connect()
            frame = _frame_binary(WRITER, TagQuery(nonce=0))
            try:
                # the replica dies: listener gone, connection reset
                await server.stop()
                client._connections[0][1].transport.abort()
                await asyncio.sleep(0)
                with pytest.raises(ReplicaUnavailableError):
                    # dead peer: one reconnect attempt, then typed error
                    await client._write_frame(0, frame)
                # replica back on the same port: the write path recovers
                server2 = TcpObjectServer(automaton, port=port)
                await server2.start()
                try:
                    await client._write_frame(0, frame)
                finally:
                    await server2.stop()
            finally:
                await client.close()

        run(scenario())
