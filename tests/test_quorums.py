"""Unit tests for the quorum arithmetic (the proofs' counting lemmas)."""

import pytest

from repro.config import SystemConfig
from repro.quorums import (QuorumProfile, byzantine_indistinguishability_margin,
                           confirmation_threshold,
                           correct_quorum_intersection,
                           elimination_threshold, is_quorum,
                           min_correct_in_quorum,
                           min_nonmalicious_in_quorum, quorum_intersection,
                           quorum_size, smallest_live_quorum)


@pytest.fixture
def optimal():
    return SystemConfig.optimal(t=2, b=1)


class TestDerivedQuantities:
    def test_quorum_size(self, optimal):
        assert quorum_size(optimal) == 4  # S - t = 6 - 2

    def test_min_correct(self, optimal):
        # At optimal resilience, any quorum holds >= b + 1 correct objects.
        assert min_correct_in_quorum(optimal) == optimal.b + 1

    def test_min_nonmalicious(self, optimal):
        # ... and >= t + 1 non-Byzantine ones.
        assert min_nonmalicious_in_quorum(optimal) == optimal.t + 1

    def test_intersection(self, optimal):
        assert quorum_intersection(optimal) == optimal.b + 1

    def test_correct_intersection_positive_iff_optimal(self):
        below = SystemConfig.with_objects(t=2, b=1, num_objects=5)
        at = SystemConfig.optimal(t=2, b=1)
        assert correct_quorum_intersection(below) <= 0
        assert correct_quorum_intersection(at) == 1

    def test_fast_read_margin(self):
        at_bound = SystemConfig.at_impossibility_threshold(2, 1)
        above = SystemConfig.with_objects(t=2, b=1, num_objects=7)
        assert byzantine_indistinguishability_margin(at_bound) == 0
        assert byzantine_indistinguishability_margin(above) == 1

    def test_thresholds(self, optimal):
        assert confirmation_threshold(optimal) == 2
        assert elimination_threshold(optimal) == 4


class TestHelpers:
    def test_is_quorum_counts_distinct(self, optimal):
        assert is_quorum(optimal, [0, 1, 2, 3])
        assert not is_quorum(optimal, [0, 0, 1, 1])  # duplicates collapse

    def test_smallest_live_quorum(self, optimal):
        members = smallest_live_quorum(optimal, crashed={0, 5})
        assert len(members) == 4
        assert not set(members) & {0, 5}

    def test_smallest_live_quorum_too_many_crashes(self, optimal):
        with pytest.raises(ValueError):
            smallest_live_quorum(optimal, crashed={0, 1, 2})

    def test_profile_bundles_everything(self, optimal):
        profile = QuorumProfile.of(optimal)
        assert profile.quorum == 4
        assert profile.min_correct == 2
        assert profile.correct_intersection == 1
        assert profile.fast_read_margin == 0


class TestInvariantAcrossSweep:
    """The counting identities the correctness proofs rely on, swept."""

    @pytest.mark.parametrize("t", range(1, 6))
    def test_identities_at_optimal_resilience(self, t):
        for b in range(1, t + 1):
            config = SystemConfig.optimal(t=t, b=b)
            # quorum = t + b + 1
            assert quorum_size(config) == t + b + 1
            # any quorum contains >= b+1 correct objects
            assert min_correct_in_quorum(config) == b + 1
            # two quorums share >= b+1 objects
            assert quorum_intersection(config) == b + 1
            # elimination evidence beats any possible support for a
            # never-written tuple: t+b+1 > t+b
            assert (elimination_threshold(config)
                    > config.t + config.b)
