"""reprolint: rule fixtures, framework behaviour, and the fixes it drove.

Three layers:

* fixture-based self-tests -- for every rule, a known-bad snippet must
  flag and a known-good snippet must pass;
* a meta-test asserting the shipped tree is reprolint-clean, plus a
  kind-byte stability snapshot of the binary codec registry;
* regression tests for the true-positive findings this lint surfaced
  (slots sweep, PushUpdate codec, claim-first lifecycle flags,
  serialized TCP reconnects, executor'd blocking calls).
"""

import asyncio
import json
from pathlib import Path

import pytest

from repro.analysis import core as lint_core
from repro.analysis import cli as lint_cli
from repro.analysis.rules_chaos import strategy_registry_findings
from repro.analysis.rules_registry import (_is_canonical, _live_subclasses,
                                           batch_parity_findings,
                                           vocab_findings)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run(coro):
    return asyncio.run(coro)


def lint_file(tmp_path, relpath: str, text: str, select=None):
    """Write ``text`` under ``tmp_path/relpath`` and lint just that tree."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return lint_core.run_analysis([tmp_path], select=select)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# framework: suppressions, reporters, CLI
# ---------------------------------------------------------------------------


class TestFramework:
    def test_suppression_with_reason_silences(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)  # reprolint: ok[blocking-async] -- test fixture\n"
        ))
        assert findings == []

    def test_bare_suppression_is_a_finding(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)  # reprolint: ok[blocking-async]\n"
        ))
        assert "bare-suppression" in rule_ids(findings)

    def test_suppression_is_rule_specific(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)  # reprolint: ok[some-other-rule] -- nope\n"
        ))
        assert "blocking-async" in rule_ids(findings)

    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", "def broken(:\n")
        assert rule_ids(findings) == ["syntax-error"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "mod.py").write_text(
            "import time\nasync def f():\n    time.sleep(1)\n")
        good = tmp_path / "good"
        good.mkdir()
        (good / "mod.py").write_text("x = 1\n")
        assert lint_cli.main([str(bad)]) == 1
        assert lint_cli.main([str(good)]) == 0
        assert lint_cli.main(["--select", "no-such-rule", str(good)]) == 2
        assert lint_cli.main(["--list-rules"]) == 0
        capsys.readouterr()

    def test_cli_json_report(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import time\nasync def f():\n    time.sleep(1)\n")
        assert lint_cli.main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "blocking-async"

    def test_select_restricts_rules(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)\n"
        ), select=["await-race"])
        assert findings == []


# ---------------------------------------------------------------------------
# blocking-call-in-async lint
# ---------------------------------------------------------------------------


class TestBlockingAsync:
    @pytest.mark.parametrize("call", [
        "os.fsync(fd)",
        "time.sleep(0.1)",
        "subprocess.run(['ls'])",
        "shutil.rmtree(path)",
        "self._fh.flush()",
        "self.process.join(timeout=1.0)",
    ])
    def test_flags_blocking_calls(self, tmp_path, call):
        findings = lint_file(tmp_path, "mod.py", (
            "import os, time, subprocess, shutil\n"
            "class C:\n"
            "    async def f(self, fd, path):\n"
            f"        {call}\n"
        ), select=["blocking-async"])
        assert rule_ids(findings) == ["blocking-async"]

    def test_sync_def_not_flagged(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "import time\n"
            "def f():\n"
            "    time.sleep(1)\n"
        ), select=["blocking-async"])
        assert findings == []

    def test_run_in_executor_thunk_not_flagged(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "import asyncio, os\n"
            "async def f(fd):\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, os.fsync, fd)\n"
        ), select=["blocking-async"])
        assert findings == []

    def test_nested_sync_def_not_flagged(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "import os\n"
            "async def f(fd):\n"
            "    def thunk():\n"
            "        os.fsync(fd)\n"
            "    return thunk\n"
        ), select=["blocking-async"])
        assert findings == []

    def test_awaited_start_not_flagged(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "async def f(proc):\n"
            "    await proc.start()\n"
        ), select=["blocking-async"])
        assert findings == []

    def test_gather_arg_not_flagged(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "import asyncio\n"
            "async def f(procs):\n"
            "    await asyncio.gather(*(proc.start() for proc in procs))\n"
        ), select=["blocking-async"])
        assert findings == []


# ---------------------------------------------------------------------------
# await-interleaving race detector
# ---------------------------------------------------------------------------


class TestAwaitRace:
    BAD = (
        "class Store:\n"
        "    async def start(self):\n"
        "        if self._started:\n"
        "            return\n"
        "        await self._open()\n"
        "        self._started = True\n"
    )

    def test_flags_read_check_act_across_await(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", self.BAD,
                             select=["await-race"])
        assert rule_ids(findings) == ["await-race"]

    def test_claim_before_await_passes(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "class Store:\n"
            "    async def start(self):\n"
            "        if self._started:\n"
            "            return\n"
            "        self._started = True\n"
            "        await self._open()\n"
        ), select=["await-race"])
        assert findings == []

    def test_lock_held_across_sequence_passes(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "class Store:\n"
            "    async def start(self):\n"
            "        async with self._lock:\n"
            "            if self._started:\n"
            "                return\n"
            "            await self._open()\n"
            "            self._started = True\n"
        ), select=["await-race"])
        assert findings == []

    def test_rollback_in_except_passes(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "class Store:\n"
            "    async def start(self):\n"
            "        if self._started:\n"
            "            return\n"
            "        self._started = True\n"
            "        try:\n"
            "            await self._open()\n"
            "        except BaseException:\n"
            "            self._started = False\n"
            "            raise\n"
        ), select=["await-race"])
        assert findings == []

    def test_plain_function_not_scanned(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "class Store:\n"
            "    def start(self):\n"
            "        if self._started:\n"
            "            return\n"
            "        self._started = True\n"
        ), select=["await-race"])
        assert findings == []


# ---------------------------------------------------------------------------
# determinism lint
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_unseeded_random_in_scope(self, tmp_path):
        findings = lint_file(tmp_path, "repro/sim/mod.py", (
            "import random\n"
            "x = random.random()\n"
            "rng = random.Random()\n"
        ), select=["det-unseeded-random"])
        assert rule_ids(findings) == ["det-unseeded-random"] * 2

    def test_seeded_random_passes(self, tmp_path):
        findings = lint_file(tmp_path, "repro/sim/mod.py", (
            "import random\n"
            "rng = random.Random(42)\n"
            "x = rng.random()\n"
        ), select=["det-unseeded-random"])
        assert findings == []

    def test_out_of_scope_not_flagged(self, tmp_path):
        findings = lint_file(tmp_path, "somewhere/else.py", (
            "import random, time\n"
            "x = random.random()\n"
            "t = time.time()\n"
        ), select=["det-unseeded-random", "det-wall-clock"])
        assert findings == []

    def test_wall_clock_in_scope(self, tmp_path):
        findings = lint_file(tmp_path, "repro/harness/mod.py", (
            "import time\n"
            "t = time.time()\n"
        ), select=["det-wall-clock"])
        assert rule_ids(findings) == ["det-wall-clock"]

    def test_perf_counter_passes(self, tmp_path):
        findings = lint_file(tmp_path, "repro/harness/mod.py", (
            "import time\n"
            "t = time.perf_counter()\n"
            "m = time.monotonic()\n"
        ), select=["det-wall-clock"])
        assert findings == []

    def test_set_iteration_in_scope(self, tmp_path):
        findings = lint_file(tmp_path, "repro/core/mod.py", (
            "def f(items):\n"
            "    pending = set(items)\n"
            "    out = []\n"
            "    for x in pending:\n"
            "        out.append(x)\n"
            "    return out\n"
        ), select=["det-set-iter"])
        assert rule_ids(findings) == ["det-set-iter"]

    def test_sorted_set_iteration_passes(self, tmp_path):
        findings = lint_file(tmp_path, "repro/core/mod.py", (
            "def f(items):\n"
            "    pending = set(items)\n"
            "    return [x for x in sorted(pending)]\n"
        ), select=["det-set-iter"])
        assert findings == []

    def test_chaos_package_is_in_scope(self, tmp_path):
        # The chaos harness promises seed -> bit-identical runs, so it
        # lives under the same determinism rules as the kernel.
        findings = lint_file(tmp_path, "repro/chaos/mod.py", (
            "import random, time\n"
            "x = random.random()\n"
            "t = time.time()\n"
        ), select=["det-unseeded-random", "det-wall-clock"])
        assert sorted(rule_ids(findings)) == [
            "det-unseeded-random", "det-wall-clock"]


# ---------------------------------------------------------------------------
# registry rules
# ---------------------------------------------------------------------------


class TestRegistrySlots:
    def test_unslotted_dataclass_flagged(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "from dataclasses import dataclass\n"
            "from repro.messages import Message\n"
            "@dataclass(frozen=True)\n"
            "class Ping(Message):\n"
            "    nonce: int\n"
        ), select=["registry-slots"])
        assert rule_ids(findings) == ["registry-slots"]

    def test_slotted_dataclass_passes(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "from dataclasses import dataclass\n"
            "from repro.messages import Message\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Ping(Message):\n"
            "    nonce: int\n"
        ), select=["registry-slots"])
        assert findings == []

    def test_explicit_slots_passes(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "from repro.messages import Message\n"
            "class Ping(Message):\n"
            "    __slots__ = ('nonce',)\n"
        ), select=["registry-slots"])
        assert findings == []


class TestBatchDispatch:
    def test_direct_call_flagged(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", (
            "def f(automaton, sender, parts, sink):\n"
            "    return automaton.handle_batch(sender, parts, sink)\n"
        ), select=["batch-dispatch"])
        assert rule_ids(findings) == ["batch-dispatch"]

    def test_base_module_exempt(self, tmp_path):
        findings = lint_file(tmp_path, "automata/base.py", (
            "def f(automaton, sender, parts, sink):\n"
            "    return automaton.handle_batch(sender, parts, sink)\n"
        ), select=["batch-dispatch"])
        assert findings == []


class TestVocabFindings:
    """The dynamic vocabulary check against synthetic universes."""

    def _anchor(self, cls):
        return ("fake.py", 1)

    def test_unregistered_class_flagged(self):
        class Lost:
            pass

        found = vocab_findings("registry-vocab", {Lost}, set(), set(), {},
                               self._anchor)
        assert len(found) == 1 and "Lost" in found[0].message

    def test_wire_inline_exempt(self):
        class Inline:
            wire_inline = True

        found = vocab_findings("registry-vocab", {Inline}, set(), set(), {},
                               self._anchor)
        assert found == []

    def test_fully_registered_passes(self):
        class Ok:
            pass

        found = vocab_findings("registry-vocab", {Ok}, {Ok}, {"Ok"},
                               {Ok: 99}, self._anchor)
        assert found == []

    def test_duplicate_kind_byte_flagged(self):
        class A:
            pass

        class B:
            pass

        found = vocab_findings(
            "registry-vocab", {A, B}, {A, B}, {"A", "B"}, {A: 7, B: 7},
            self._anchor)
        assert len(found) == 2
        assert all("kind byte 7" in f.message for f in found)

    def test_registered_non_message_flagged(self):
        class Stranger:
            pass

        found = vocab_findings("registry-vocab", set(), {Stranger},
                               {"Stranger"}, {Stranger: 5}, self._anchor)
        assert any("not a Message subclass" in f.message for f in found)


class TestChaosStrategyFindings:
    """The chaos-strategy-registry check against synthetic wrapper sets."""

    def _anchor(self, cls):
        return ("repro/adversary/rogue.py", 3)

    def test_unregistered_wrapper_flagged(self):
        class RogueWrapper:
            pass

        found = strategy_registry_findings(
            "chaos-strategy-registry", {RogueWrapper}, {"MuteByzantine"},
            self._anchor)
        assert len(found) == 1
        assert "RogueWrapper" in found[0].message
        assert "register_strategy" in found[0].message
        assert found[0].path == "repro/adversary/rogue.py"

    def test_registered_wrapper_passes(self):
        class KnownWrapper:
            pass

        found = strategy_registry_findings(
            "chaos-strategy-registry", {KnownWrapper}, {"KnownWrapper"},
            self._anchor)
        assert found == []

    def test_wrapper_outside_analyzed_set_skipped(self):
        # Test fixtures and scratch files anchor to None: the rule only
        # polices wrappers that live in the analyzed tree.
        class FixtureWrapper:
            pass

        found = strategy_registry_findings(
            "chaos-strategy-registry", {FixtureWrapper}, set(),
            lambda cls: None)
        assert found == []

    def test_live_registry_covers_shipped_wrappers(self):
        # The shipped tree must be clean under the live rule inputs.
        from repro.adversary.byzantine import ByzantineWrapper
        from repro.chaos.strategies import registered_wrapper_names
        shipped = {cls for cls in _live_subclasses(ByzantineWrapper)
                   if cls.__module__.startswith("repro.")}
        missing = {cls.__name__ for cls in shipped} - set(
            registered_wrapper_names())
        assert missing == set()


class TestBatchParityFindings:
    def _anchor(self, cls):
        return ("fake.py", 1)

    def _hierarchy(self, opt_in: bool):
        class Base:
            def on_message(self):
                pass

            def handle_batch(self):
                pass

        class Fast(Base):
            def handle_batch(self):
                pass

        class Override(Fast):
            _on_message_batch_compatible = opt_in

            def on_message(self):
                pass

        return Base, Override

    def test_override_below_fast_path_flagged(self):
        base, override = self._hierarchy(opt_in=False)
        found = batch_parity_findings("batch-parity", {override}, base,
                                      self._anchor)
        assert len(found) == 1 and "Override" in found[0].message

    def test_opt_in_passes(self):
        base, override = self._hierarchy(opt_in=True)
        found = batch_parity_findings("batch-parity", {override}, base,
                                      self._anchor)
        assert found == []

    def test_generic_loop_passes(self):
        class Base:
            def on_message(self):
                pass

            def handle_batch(self):
                pass

        class Plain(Base):
            def on_message(self):
                pass

        found = batch_parity_findings("batch-parity", {Plain}, Base,
                                      self._anchor)
        assert found == []


# ---------------------------------------------------------------------------
# the shipped tree
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_tree_is_reprolint_clean(self):
        findings = lint_core.run_analysis([SRC, REPO / "benchmarks"])
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

    def test_kind_byte_registry_snapshot(self):
        """A reused or silently renumbered kind byte is a wire break."""
        import repro.runtime.codec as codec
        import repro.baselines.abd.protocol  # noqa: F401  (registration)
        import repro.sim.server_centric  # noqa: F401

        expected = {
            # core vocabulary (kinds < 64 are reserved for it)
            "Pw": 1, "W": 2, "PwAck": 3, "WriteAck": 4,
            "TagQuery": 5, "TagQueryAck": 6,
            "EpochFence": 7, "EpochFenceAck": 8, "WriteFenced": 9,
            "ReadRequest": 10, "ReadAck": 11, "HistoryReadAck": 12,
            "Batch": 13, "LeaseProbe": 14, "LeaseProbeAck": 15,
            # extension vocabularies (>= 64)
            "AbdStore": 64, "AbdStoreAck": 65,
            "AbdQuery": 66, "AbdQueryAck": 67,
            "AuthStore": 68, "AuthStoreAck": 69,
            "AuthQuery": 70, "AuthQueryAck": 71,
            "WriteBack": 72, "WriteBackAck": 73,
            "PushUpdate": 74,
        }
        actual = {cls.__name__: kind
                  for cls, kind in codec._BIN_KINDS.items()}
        assert actual == expected

    def test_every_message_subclass_is_slotted(self):
        import repro.messages as messages

        # walk_packages via the vocab rule has already imported the
        # protocol modules in the clean-tree test; import the stragglers
        # explicitly so this test stands alone too.
        import repro.baselines.abd.protocol  # noqa: F401
        import repro.baselines.authenticated.protocol  # noqa: F401
        import repro.core.atomic.protocol  # noqa: F401
        import repro.sim.server_centric  # noqa: F401

        unslotted = sorted(
            cls.__name__
            for cls in _live_subclasses(messages.Message)
            if "__slots__" not in cls.__dict__
            and cls.__module__.startswith("repro.")
        )
        assert unslotted == []

    def test_canonical_filter_drops_pre_slots_ghosts(self):
        import repro.messages as messages

        # Test modules define throwaway Message subclasses too; only the
        # package's own ghosts are guaranteed a canonical twin.
        ghosts = [cls for cls in messages.Message.__subclasses__()
                  if not _is_canonical(cls)
                  and cls.__module__.startswith("repro.")]
        for ghost in ghosts:  # every pre-slots ghost has a canonical twin
            assert any(c.__name__ == ghost.__name__ and c is not ghost
                       for c in messages.Message.__subclasses__())


# ---------------------------------------------------------------------------
# regression tests for fixed findings
# ---------------------------------------------------------------------------


class TestPushUpdateCodec:
    """PushUpdate was a registered-nowhere wire message (registry-vocab)."""

    def test_json_roundtrip(self):
        from repro.runtime.codec import decode_message, encode_message
        from repro.sim.server_centric import PushUpdate
        from repro.types import TimestampValue

        m = PushUpdate(object_index=3, tsval=TimestampValue(7, "v7", wid=2))
        assert decode_message(encode_message(m)) == m

    def test_binary_roundtrip(self):
        from repro.runtime.codec import (decode_message_binary,
                                         encode_message_binary)
        from repro.sim.server_centric import PushUpdate
        from repro.types import BOTTOM, TimestampValue

        for tsval in (TimestampValue(7, "v7", wid=2),
                      TimestampValue(0, BOTTOM)):
            m = PushUpdate(object_index=5, tsval=tsval)
            assert decode_message_binary(encode_message_binary(m)) == m


class TestHarnessClock:
    """The harness CLI read the wall clock (det-wall-clock)."""

    def test_uses_measurement_clock(self):
        source = (SRC / "repro" / "harness" / "__main__.py").read_text()
        assert "time.time(" not in source
        assert "time.perf_counter(" in source


class TestLifecycleClaimFirst:
    """start() read-check-act races (await-race): claim-first fixes."""

    def test_concurrent_sharded_start_starts_each_shard_once(self):
        from repro.config import SystemConfig
        from repro.core.regular import CachedRegularStorageProtocol
        from repro.service import MultiRegisterStore, ShardedKVStore

        config = SystemConfig.optimal(t=1, b=1, num_readers=2)
        calls = []
        original = MultiRegisterStore.start

        async def counting_start(self):
            calls.append(self)
            await asyncio.sleep(0)  # widen the interleaving window
            return await original(self)

        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2)
            MultiRegisterStore.start = counting_start
            try:
                await asyncio.gather(kv.start(), kv.start(), kv.start())
            finally:
                MultiRegisterStore.start = original
            await kv.stop()

        run(scenario())
        assert len(calls) == 2  # one per shard, despite 3 racing starts

    def test_concurrent_tcp_server_stop_closes_once(self):
        from repro.runtime.tcp import TcpObjectServer

        class FakeServer:
            def __init__(self):
                self.closes = 0

            def close(self):
                self.closes += 1

            async def wait_closed(self):
                await asyncio.sleep(0.005)

        async def scenario():
            server = TcpObjectServer.__new__(TcpObjectServer)
            fake = FakeServer()
            server._server = fake
            await asyncio.gather(server.stop(), server.stop())
            return fake

        fake = run(scenario())
        assert fake.closes == 1

    def test_concurrent_replica_stop_closes_pipe_once(self):
        from repro.service.procs import ReplicaProcess

        class FakeProc:
            def is_alive(self):
                return False

            def join(self, timeout=None):
                pass

        class FakeConn:
            def __init__(self):
                self.sends = 0
                self.closes = 0

            def send(self, what):
                self.sends += 1

            def close(self):
                self.closes += 1

        async def scenario():
            rp = ReplicaProcess.__new__(ReplicaProcess)
            rp.process = FakeProc()
            conn = FakeConn()
            rp.conn = conn
            await asyncio.gather(rp.stop(), rp.stop())
            return conn

        conn = run(scenario())
        assert conn.sends == 1 and conn.closes == 1


class TestReconnectSerialization:
    """Concurrent TcpStorageClient reconnects opened duplicate sockets."""

    def test_racing_reconnects_share_one_socket(self, monkeypatch):
        from repro.runtime.tcp import TcpStorageClient
        from repro.types import reader

        class FakeReader:
            async def readexactly(self, n):
                raise ConnectionResetError

            async def read(self, n=-1):
                raise ConnectionResetError

        class FakeWriter:
            def __init__(self):
                self.closed = False

            def close(self):
                self.closed = True

        opened = []

        async def fake_open_connection(host, port):
            await asyncio.sleep(0.005)  # both racers reach the lock
            pair = (FakeReader(), FakeWriter())
            opened.append(pair)
            return pair

        async def scenario():
            client = TcpStorageClient(reader(0), [("127.0.0.1", 1)])
            broken = FakeWriter()
            client._connections = [(FakeReader(), broken)]
            monkeypatch.setattr(asyncio, "open_connection",
                                fake_open_connection)
            winners = await asyncio.gather(
                client._reconnect(0, broken),
                client._reconnect(0, broken))
            for task in client._pumps:
                task.cancel()
            await asyncio.gather(*client._pumps, return_exceptions=True)
            return winners, broken

        winners, broken = run(scenario())
        assert len(opened) == 1  # exactly one replacement socket
        assert winners[0] is winners[1]  # the loser adopted the winner's
        assert broken.closed


class TestMypyConfig:
    def test_pyproject_declares_strict_leaf_modules(self):
        import tomllib

        config = tomllib.loads((REPO / "pyproject.toml").read_text())
        mypy = config["tool"]["mypy"]
        overrides = mypy["overrides"]
        strict = set(overrides[0]["module"])
        assert {"repro.types", "repro.messages", "repro.quorums",
                "repro.config", "repro.errors"} <= strict
        assert overrides[0]["disallow_untyped_defs"] is True
        scripts = config["project"]["scripts"]
        assert scripts["reprolint"] == "repro.analysis.cli:main"

    def test_mypy_clean_if_available(self):
        mypy_api = pytest.importorskip(
            "mypy.api", reason="mypy not installed in this environment")
        stdout, stderr, status = mypy_api.run(
            ["--config-file", str(REPO / "pyproject.toml")])
        assert status == 0, stdout + stderr
