"""Tests for the asyncio runtime: codec, in-memory network, TCP tier."""

import asyncio

import pytest

from repro.baselines import AuthenticatedProtocol
from repro.config import SystemConfig
from repro.core.regular import RegularStorageProtocol
from repro.core.safe import SafeStorageProtocol
from repro.errors import TransportError
from repro.messages import (HistoryEntry, HistoryReadAck, Pw, PwAck, ReadAck,
                            ReadRequest, W, WriteAck)
from repro.runtime import (AsyncStorage, TcpObjectServer, TcpStorageClient,
                           decode_message, encode_message)
from repro.types import (BOTTOM, INITIAL_TSVAL, TimestampValue, TsrArray,
                         WRITER, WriteTuple, initial_write_tuple, reader)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------


class TestCodec:
    @pytest.fixture
    def wtuple(self):
        arr = TsrArray.empty(3, 2).with_entry(1, 0, 7)
        return WriteTuple(TimestampValue(2, "payload"), arr)

    @pytest.mark.parametrize("factory", [
        lambda wt: Pw(ts=2, pw=wt.tsval, w=wt),
        lambda wt: W(ts=2, pw=wt.tsval, w=wt),
        lambda wt: PwAck(ts=2, object_index=1, tsr=(0, 3)),
        lambda wt: WriteAck(ts=2, object_index=0),
        lambda wt: ReadRequest(round_index=1, tsr=4, reader_index=1),
        lambda wt: ReadRequest(round_index=2, tsr=5, reader_index=0,
                               from_ts=3),
        lambda wt: ReadAck(round_index=1, tsr=4, object_index=2,
                           pw=wt.tsval, w=wt),
    ])
    def test_roundtrip(self, factory, wtuple):
        message = factory(wtuple)
        assert decode_message(encode_message(message)) == message

    def test_history_ack_roundtrip(self, wtuple):
        ack = HistoryReadAck(
            round_index=2, tsr=9, object_index=1,
            history={0: HistoryEntry(pw=INITIAL_TSVAL,
                                     w=initial_write_tuple(3, 2)),
                     2: HistoryEntry(pw=wtuple.tsval, w=None)})
        decoded = decode_message(encode_message(ack))
        assert decoded == ack
        assert decoded.history[2, 0].w is None

    def test_bottom_survives_the_wire(self):
        message = Pw(ts=1, pw=TimestampValue(1, "x"),
                     w=initial_write_tuple(2, 1))
        decoded = decode_message(encode_message(message))
        assert decoded.w.value is BOTTOM

    def test_malformed_wire_rejected(self):
        with pytest.raises(TransportError):
            decode_message("not json at all {")
        with pytest.raises(TransportError):
            decode_message('{"__kind": "NoSuchMessage"}')

    def test_unregistered_type_rejected(self):
        with pytest.raises(TransportError):
            encode_message(("tuple", "payload"))


# ---------------------------------------------------------------------------
# In-memory asyncio runtime
# ---------------------------------------------------------------------------


class TestAsyncStorage:
    @pytest.mark.parametrize("protocol_cls", [SafeStorageProtocol,
                                              RegularStorageProtocol,
                                              AuthenticatedProtocol])
    def test_write_then_read(self, protocol_cls):
        async def scenario():
            config = SystemConfig.optimal(t=1, b=1, num_readers=1)
            async with AsyncStorage(protocol_cls(), config) as storage:
                await storage.write("v1")
                return await storage.read(0)

        assert run(scenario()) == "v1"

    def test_initial_read_is_bottom(self):
        async def scenario():
            config = SystemConfig.optimal(t=1, b=1)
            async with AsyncStorage(SafeStorageProtocol(), config) as st:
                return await st.read(0)

        assert run(scenario()) is BOTTOM

    def test_concurrent_clients_with_jitter(self):
        async def scenario():
            config = SystemConfig.optimal(t=1, b=1, num_readers=2)
            async with AsyncStorage(SafeStorageProtocol(), config,
                                    jitter=0.003, seed=2) as storage:
                await storage.write("v1")
                results = await asyncio.gather(
                    storage.write("v2"), storage.read(0), storage.read(1))
                return results

        ok, r0, r1 = run(scenario())
        assert ok == "OK"
        assert r0 in ("v1", "v2")
        assert r1 in ("v1", "v2")

    def test_survives_object_crashes(self):
        async def scenario():
            config = SystemConfig.optimal(t=2, b=1, num_readers=1)
            async with AsyncStorage(SafeStorageProtocol(), config) as st:
                await st.write("v1")
                st.crash_object(0)
                st.crash_object(1)
                await st.write("v2")
                return await st.read(0)

        assert run(scenario()) == "v2"

    def test_byzantine_forger_absorbed(self):
        async def scenario():
            from repro.adversary.byzantine import ValueForger
            config = SystemConfig.optimal(t=1, b=1, num_readers=1)
            async with AsyncStorage(SafeStorageProtocol(), config) as st:
                honest = st._object_hosts[0].automaton
                st.make_byzantine(0, ValueForger(honest, config))
                await st.write("real")
                return await st.read(0)

        assert run(scenario()) == "real"

    def test_use_before_start_rejected(self):
        async def scenario():
            config = SystemConfig.optimal(t=1, b=1)
            storage = AsyncStorage(SafeStorageProtocol(), config)
            with pytest.raises(TransportError):
                await storage.write("x")

        run(scenario())


# ---------------------------------------------------------------------------
# TCP tier
# ---------------------------------------------------------------------------


class TestTcp:
    def test_full_protocol_over_sockets(self):
        async def scenario():
            protocol = RegularStorageProtocol()
            config = SystemConfig.optimal(t=1, b=1, num_readers=1)
            servers = [TcpObjectServer(o)
                       for o in protocol.make_objects(config)]
            ports = [await s.start() for s in servers]
            endpoints = [("127.0.0.1", p) for p in ports]
            wstate = protocol.make_writer_state(config)
            rstate = protocol.make_reader_state(config, 0)
            writer_client = TcpStorageClient(WRITER, endpoints)
            reader_client = TcpStorageClient(reader(0), endpoints)
            await writer_client.connect()
            await reader_client.connect()
            try:
                assert await writer_client.run(
                    protocol.make_write(wstate, "tcp-1")) == "OK"
                assert await reader_client.run(
                    protocol.make_read(rstate)) == "tcp-1"
                assert await writer_client.run(
                    protocol.make_write(wstate, "tcp-2")) == "OK"
                assert await reader_client.run(
                    protocol.make_read(rstate)) == "tcp-2"
            finally:
                await writer_client.close()
                await reader_client.close()
                for server in servers:
                    await server.stop()

        run(scenario())

    def test_slow_endpoint_not_required(self):
        """A client connected to only S-t objects still completes."""

        async def scenario():
            protocol = SafeStorageProtocol()
            config = SystemConfig.optimal(t=1, b=1, num_readers=1)
            objects = protocol.make_objects(config)
            servers = [TcpObjectServer(o) for o in objects[:-1]]  # drop one
            ports = [await s.start() for s in servers]
            endpoints = [("127.0.0.1", p) for p in ports]
            wstate = protocol.make_writer_state(config)
            rstate = protocol.make_reader_state(config, 0)
            wclient = TcpStorageClient(WRITER, endpoints)
            rclient = TcpStorageClient(reader(0), endpoints)
            await wclient.connect()
            await rclient.connect()
            try:
                assert await wclient.run(
                    protocol.make_write(wstate, "v")) == "OK"
                assert await rclient.run(protocol.make_read(rstate)) == "v"
            finally:
                await wclient.close()
                await rclient.close()
                for server in servers:
                    await server.stop()

        run(scenario())

    def test_object_client_rejected(self):
        from repro.types import obj
        with pytest.raises(TransportError):
            TcpStorageClient(obj(0), [])
