"""Tests for the server-centric model (Section 6)."""

import pytest

from repro.config import SystemConfig
from repro.core.lower_bound import ALL_RULES, LowerBoundDriver
from repro.sim.server_centric import (PushFastObject, PushUpdate,
                                      ServerCentricFastProtocol)
from repro.spec import check_safety
from repro.system import StorageSystem
from repro.types import reader


class TestPushObjects:
    def test_write_triggers_pushes_to_all_readers(self):
        from repro.messages import W
        from repro.types import TimestampValue, TsrArray, WriteTuple, WRITER
        config = SystemConfig.at_impossibility_threshold(1, 1)
        config = SystemConfig.with_objects(t=1, b=1, num_objects=4,
                                           num_readers=3)
        object_ = PushFastObject(0, config)
        pair = TimestampValue(1, "v")
        tup = WriteTuple(pair, TsrArray.empty(4, 3))
        replies = object_.on_message(WRITER, W(1, pair, tup))
        pushes = [(r, p) for r, p in replies if isinstance(p, PushUpdate)]
        assert {r for r, _ in pushes} == {reader(0), reader(1), reader(2)}

    def test_duplicate_write_pushes_nothing(self):
        from repro.messages import W
        from repro.types import TimestampValue, TsrArray, WriteTuple, WRITER
        config = SystemConfig.with_objects(t=1, b=1, num_objects=4)
        object_ = PushFastObject(0, config)
        pair = TimestampValue(1, "v")
        tup = WriteTuple(pair, TsrArray.empty(4, 1))
        object_.on_message(WRITER, W(1, pair, tup))
        replies = object_.on_message(WRITER, W(1, pair, tup))
        assert not any(isinstance(p, PushUpdate) for _, p in replies)


class TestServerCentricReads:
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_benign_behaviour_with_pushes_flowing(self, rule):
        config = SystemConfig.at_impossibility_threshold(2, 1)
        system = StorageSystem(ServerCentricFastProtocol(rule), config)
        system.write("x")
        assert system.read(0) == "x"
        check_safety(system.history).assert_ok()

    def test_push_refreshes_stale_solicited_answer(self):
        """A push with a newer timestamp upgrades an object's opinion."""
        config = SystemConfig.at_impossibility_threshold(1, 1)
        system = StorageSystem(ServerCentricFastProtocol("highest-ts"),
                               config)
        system.write("v1")
        # concurrent write + read: the read may harvest pushes of v2
        write = system.invoke_write("v2")
        read = system.invoke_read(0)
        system.run_until_done(write, read)
        assert read.result in ("v1", "v2")


class TestServerCentricLowerBound:
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_construction_survives_push_capability(self, rule):
        config = SystemConfig.at_impossibility_threshold(2, 1)
        driver = LowerBoundDriver(
            lambda: ServerCentricFastProtocol(rule), config,
            extra_hold=lambda p: isinstance(p, PushUpdate),
            record_filter=lambda p: not isinstance(p, PushUpdate))
        report = driver.execute()
        assert report.violated
        assert report.indistinguishable
