"""Contention-adaptive fast reads: tag leases, probe validation, fallback.

Covers the lease state machine (:class:`~repro.automata.rounds.TagLease`,
:class:`~repro.automata.rounds.LeaseValidation`), the service-tier fast
path end to end (fewer messages than classic, counters, checkers), and
the invalidation edges the design note calls out: fences, routing flips,
conditional-write failures, amnesiac (restarted-empty) replicas and a
Byzantine replica vouching for stale leases.
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.byzantine import StaleTagForger
from repro.automata.rounds import LeaseValidation, TagLease
from repro.config import SystemConfig
from repro.core.regular import (CachedRegularStorageProtocol, RegularObject,
                                RegularStorageProtocol)
from repro.errors import ConfigurationError
from repro.messages import LeaseProbe, LeaseProbeAck
from repro.service import MultiRegisterStore, ShardedKVStore
from repro.spec import check_fast_read_freshness, check_mwmr_atomicity
from repro.types import TAG0, BOTTOM, WriterTag


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig.optimal(t=1, b=1, num_readers=2)


def fast_store(config, **kwargs) -> MultiRegisterStore:
    return MultiRegisterStore(CachedRegularStorageProtocol(), config,
                              fast_reads=True, **kwargs)


# ---------------------------------------------------------------------------
# TagLease: the reader-side cache + backoff automaton
# ---------------------------------------------------------------------------


class TestTagLease:
    def test_refresh_is_monotone(self):
        lease = TagLease(tag=WriterTag(3, 1), value="new")
        lease.refresh(WriterTag(2, 9), "old")
        assert lease.tag == WriterTag(3, 1) and lease.value == "new"
        lease.refresh(WriterTag(4, 0), "newer")
        assert lease.tag == WriterTag(4, 0) and lease.value == "newer"

    def test_fallback_backoff_doubles_and_hit_resets(self):
        lease = TagLease(tag=WriterTag(1, 0), value="v")
        skips = []
        for _ in range(8):
            lease.record_fallback()
            skips.append(lease.skips_left)
        assert skips == [2, 4, 8, 16, 32, 64, 64, 64]  # capped
        lease.record_hit()
        assert lease.failures == 0 and lease.skips_left == 0

    def test_should_probe_consumes_skips(self):
        lease = TagLease(tag=WriterTag(1, 0), value="v")
        lease.record_fallback()  # 2 skips
        assert not lease.should_probe()
        assert not lease.should_probe()
        assert lease.should_probe()


class TestLeaseValidation:
    @staticmethod
    def _ack(index, epoch, wid=0, holds=True, fenced=False):
        return LeaseProbeAck(nonce=7, object_index=index, epoch=epoch,
                             wid=wid, holds=holds, fenced=fenced)

    def _validation(self, lease_epoch=5):
        return LeaseValidation(nonce=7, quorum=3, confirmation_threshold=2,
                               lease_tag=WriterTag(lease_epoch, 0))

    def test_valid_on_quorum_of_holders(self):
        v = self._validation()
        for i in range(3):
            v.offer(i, 7, self._ack(i, epoch=5))
        assert v.decided() and v.valid()

    def test_any_newer_top_refutes(self):
        v = self._validation()
        v.offer(0, 7, self._ack(0, epoch=6))
        assert v.decided() and v.refuted and not v.valid()

    def test_any_fence_refutes(self):
        v = self._validation()
        v.offer(0, 7, self._ack(0, epoch=5, fenced=True))
        assert v.decided() and not v.valid()

    def test_too_few_holders_is_invalid_but_not_refuted(self):
        v = self._validation()
        v.offer(0, 7, self._ack(0, epoch=0, holds=False))
        v.offer(1, 7, self._ack(1, epoch=0, holds=False))
        v.offer(2, 7, self._ack(2, epoch=5, holds=True))
        assert v.decided() and not v.refuted and not v.valid()

    def test_stale_nonce_ignored(self):
        v = self._validation()
        assert not v.offer(0, 6, self._ack(0, epoch=9))
        assert not v.decided()

    @given(st.lists(
        st.tuples(st.integers(0, 3),          # object index (S = 4)
                  st.integers(0, 8),          # top epoch
                  st.booleans(),              # holds
                  st.booleans()),             # fenced
        min_size=0, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_valid_implies_fresh_held_unfenced_quorum(self, acks):
        """Soundness: ``valid()`` can only hold when a quorum answered,
        no responder saw a newer tag or a fence, and at least ``b + 1``
        vouch for holding the leased tuple."""
        lease_tag = WriterTag(5, 0)
        v = LeaseValidation(nonce=7, quorum=3, confirmation_threshold=2,
                            lease_tag=lease_tag)
        accepted = {}
        for index, epoch, holds, fenced in acks:
            ack = self._ack(index, epoch=epoch, holds=holds, fenced=fenced)
            if v.offer(index, 7, ack):
                accepted[index] = ack
        if v.valid():
            assert len(accepted) >= 3
            assert all(a.tag <= lease_tag for a in accepted.values())
            assert not any(a.fenced for a in accepted.values())
            assert sum(a.holds for a in accepted.values()) >= 2


# ---------------------------------------------------------------------------
# Object-side probe handling
# ---------------------------------------------------------------------------


class TestLeaseProbeReplies:
    def test_fresh_object_never_vouches(self, config):
        """A restarted-empty replica answers ``holds=False``: recovered
        state cannot re-certify leases minted before the crash."""
        automaton = RegularObject(0, config)
        probe = LeaseProbe(nonce=1, epoch=3, reader_index=0, wid=1,
                           register_id="k")
        (receiver, ack), = automaton.on_message("reader-0", probe)
        assert isinstance(ack, LeaseProbeAck)
        assert ack.tag == TAG0 and not ack.holds and not ack.fenced

    def test_fenced_register_reports_fence(self, config):
        automaton = RegularObject(0, config)
        automaton.hard_fences.add("k")
        probe = LeaseProbe(nonce=1, epoch=0, reader_index=0,
                           register_id="k")
        (_, ack), = automaton.on_message("reader-0", probe)
        assert ack.fenced


# ---------------------------------------------------------------------------
# Service tier end to end
# ---------------------------------------------------------------------------


class TestFastReadPath:
    def test_second_read_goes_fast_with_fewer_messages(self, config):
        async def scenario():
            async with fast_store(config, record_history=True) as store:
                await store.write("k", "v1")
                before = store.network.messages_sent
                first = await store.read("k")      # classic, arms lease
                classic_cost = store.network.messages_sent - before
                before = store.network.messages_sent
                second = await store.read("k")     # probe round only
                fast_cost = store.network.messages_sent - before
                return (first, second, classic_cost, fast_cost,
                        store.stats(), store.history)

        first, second, classic_cost, fast_cost, stats, history = \
            run(scenario())
        assert (first, second) == ("v1", "v1")
        assert fast_cost < classic_cost  # the whole point of the probe
        assert stats["fast_reads_taken"] == 1
        assert stats["fast_read_fallbacks"] == 0
        check_mwmr_atomicity(history).assert_ok()
        freshness = check_fast_read_freshness(history)
        freshness.assert_ok()
        assert freshness.checked_reads == 1

    def test_write_refreshes_lease_to_new_value(self, config):
        async def scenario():
            async with fast_store(config) as store:
                await store.write("k", "v1")
                await store.read("k")
                await store.write("k", "v2")   # quorum ack re-arms lease
                value = await store.read("k")
                return value, store.stats()

        value, stats = run(scenario())
        assert value == "v2"
        assert stats["fast_reads_taken"] == 1

    def test_fast_reads_disabled_by_default(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write("k", "v1")
                await store.read("k")
                await store.read("k")
                return store.stats()

        stats = run(scenario())
        assert not stats["fast_reads_enabled"]
        assert stats["fast_reads_taken"] == 0

    def test_incapable_protocol_refused(self, config):
        from repro.core.safe import SafeStorageProtocol
        with pytest.raises(ConfigurationError):
            MultiRegisterStore(SafeStorageProtocol(), config,
                               fast_reads=True)

    def test_fence_forces_fallback_and_invalidation(self, config):
        """Mid-reconfiguration fences refute probes: the read falls back
        to classic rounds and the lease is dropped."""
        async def scenario():
            async with fast_store(config) as store:
                await store.write("k", "v1")
                await store.read("k")
                for i in range(config.num_objects):
                    store.object_automaton(i).hard_fences.add("k")
                value = await store.read("k")
                return value, store.stats()

        value, stats = run(scenario())
        assert value == "v1"  # reads still served; fast path refused
        assert stats["fast_reads_taken"] == 0
        assert stats["fast_read_fallbacks"] == 1
        assert stats["lease_invalidations"] == 1

    def test_recovered_empty_replicas_refuse_pre_crash_lease(self, config):
        """Crash-restart: replicas that lost their slots answer
        ``holds=False``, so a pre-crash lease cannot gather ``b + 1``
        confirmations and the read falls back."""
        async def scenario():
            async with fast_store(config) as store:
                await store.write("k", "v1")
                await store.read("k")  # lease armed
                for i in range(config.num_objects):
                    store.replace_object(i, RegularObject(i, config))
                await store.read("k")
                return store.stats()

        stats = run(scenario())
        assert stats["fast_reads_taken"] == 0
        assert stats["fast_read_fallbacks"] == 1

    def test_stale_tag_forger_is_outvoted_on_probes(self, config):
        """A Byzantine replica vouching for a superseded lease loses to
        the honest quorum: one honest ``top > lease`` ack refutes."""
        async def scenario():
            async with fast_store(config, record_history=True) as store:
                await store.write("k", "v1")
                await store.read("k")
                state = store._states.reader("k", 0)
                stale_tag = state.lease.tag
                await store.write("k", "v2")
                # Rewind the reader to a genuinely stale lease (as if it
                # had missed the second write's grant).
                state.lease = TagLease(tag=stale_tag, value="v1")
                store.make_byzantine(0, StaleTagForger(
                    store.object_automaton(0), config,
                    forged_tag=stale_tag, forged_value="v1"))
                value = await store.read("k")
                return value, store.stats(), store.history

        value, stats, history = run(scenario())
        assert value == "v2"  # never the stale leased value
        assert stats["fast_reads_taken"] == 0
        assert stats["fast_read_fallbacks"] == 1
        check_mwmr_atomicity(history).assert_ok()
        check_fast_read_freshness(history).assert_ok()

    def test_repeated_fallbacks_back_off_probing(self, config):
        async def scenario():
            async with fast_store(config) as store:
                await store.write("k", "v1")
                await store.read("k")
                for i in range(config.num_objects):
                    store.replace_object(i, RegularObject(i, config))
                await store.write("k", "v2")  # re-establish on new state
                probes_spent = 0
                for _ in range(6):
                    before = store.stats()
                    await store.read("k")
                    after = store.stats()
                    probes_spent += (after["fast_read_fallbacks"]
                                     - before["fast_read_fallbacks"])
                return probes_spent, store.stats()

        probes_spent, stats = run(scenario())
        # Backoff: after each failed probe the lease skips a growing
        # number of reads, so most of the 6 reads never probed at all.
        assert stats["fast_read_fallbacks"] <= 3


class TestShardedLeases:
    def test_sharded_stats_aggregate(self, config):
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=2,
                                      fast_reads=True) as kv:
                for n in range(8):
                    await kv.put(f"key:{n}", n)
                    await kv.get(f"key:{n}")
                    await kv.get(f"key:{n}")
                return kv.stats()

        stats = run(scenario())
        assert stats["fast_reads_enabled"]
        assert stats["fast_reads_taken"] >= 8  # second get of each key
        assert set(stats["per_shard"]) == {0, 1}

    def test_routing_flip_drops_all_leases(self, config):
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=2,
                                      fast_reads=True) as kv:
                await kv.put("key:0", "v")
                await kv.get("key:0")   # arms a lease somewhere
                kv.apply_reconfiguration(kv.ring, dict(kv.shards))
                held = [state.lease
                        for shard in kv.shards.values()
                        for state in shard._states.all_reader_states()]
                return held

        assert all(lease is None for lease in run(scenario()))

    def test_fenced_put_retry_invalidates_leases(self, config):
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=1,
                                      fast_reads=True) as kv:
                await kv.put("key:0", "v")
                await kv.get("key:0")
                store = kv.store_for("key:0")
                for i in range(config.num_objects):
                    store.object_automaton(i).hard_fences.add("key:0")
                from repro.errors import FencedWriteError
                with pytest.raises(FencedWriteError):
                    await kv.put("key:0", "v2")
                return store.stats()

        stats = run(scenario())
        assert stats["lease_invalidations"] >= 1

    def test_cluster_forwards_fast_reads_opt_in(self, config):
        from repro.api.cluster import Cluster

        async def scenario():
            async with Cluster(CachedRegularStorageProtocol, config,
                               num_shards=2, fast_reads=True) as cluster:
                async with cluster.session() as session:
                    await session.put("key:0", "v")
                    await session.get("key:0")
                    await session.get("key:0")
                return cluster.kv.stats()

        stats = run(scenario())
        assert stats["fast_reads_enabled"]
        assert stats["fast_reads_taken"] >= 1


# ---------------------------------------------------------------------------
# Property: lease freshness under racing writers
# ---------------------------------------------------------------------------


class TestLeaseFreshnessProperty:
    @given(
        plan=st.lists(
            st.tuples(st.integers(0, 1),       # writer index
                      st.integers(0, 99)),     # value
            min_size=2, max_size=6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fast_reads_never_stale_under_racing_writers(self, plan, seed):
        """Interleave two writers with a reader probing its lease; every
        fast read must satisfy the same freshness clauses as classic
        reads (checker-gated, not value-asserted: with races the set of
        legal values is exactly what the checker encodes)."""
        async def scenario():
            config = SystemConfig.optimal(t=1, b=1, num_readers=2,
                                          num_writers=2)
            async with fast_store(config, record_history=True,
                                  jitter=0.001, seed=seed) as store:
                await store.write("k", "seed", writer_index=0)
                await store.read("k")  # arm the lease

                async def write_all():
                    for writer_index, value in plan:
                        await store.write("k", value,
                                          writer_index=writer_index)

                async def read_all():
                    for _ in range(len(plan) + 2):
                        await store.read("k")

                await asyncio.gather(write_all(), read_all())
                await store.read("k")
                return store.history, store.stats()

        history, stats = run(scenario())
        check_mwmr_atomicity(history).assert_ok()
        check_fast_read_freshness(history).assert_ok()
        # Sanity: the machinery under test actually engaged.
        assert stats["fast_reads_enabled"]
