"""Tests for the StorageSystem facade and the protocol plug-in surface."""

import pytest

from repro import (SafeStorageProtocol, StorageSystem, SystemConfig,
                   StorageProtocol)
from repro.baselines import (AbdAtomicProtocol, AbdRegularProtocol,
                             AuthenticatedProtocol, PassiveReaderProtocol)
from repro.core.lower_bound import FastReadProtocol
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularStorageProtocol)
from repro.errors import PendingOperationError
from repro.sim.server_centric import ServerCentricFastProtocol

ALL_PROTOCOL_FACTORIES = [
    SafeStorageProtocol,
    RegularStorageProtocol,
    CachedRegularStorageProtocol,
    PassiveReaderProtocol,
    AuthenticatedProtocol,
    lambda: FastReadProtocol("threshold"),
    lambda: ServerCentricFastProtocol("threshold"),
]


class TestProtocolSurface:
    @pytest.mark.parametrize("factory", ALL_PROTOCOL_FACTORIES)
    def test_metadata_present(self, factory):
        protocol = factory()
        assert protocol.name
        assert protocol.semantics in ("safe", "regular", "atomic")
        assert isinstance(protocol.min_objects(2, 1), int)
        assert protocol.describe()

    @pytest.mark.parametrize("factory", ALL_PROTOCOL_FACTORIES)
    def test_uniform_write_read_cycle(self, factory):
        protocol = factory()
        config = SystemConfig.with_objects(
            t=2, b=0 if "abd" in protocol.name else 1,
            num_objects=max(protocol.min_objects(2, 1), 7),
            num_readers=1)
        system = StorageSystem(factory(), config)
        system.write("hello")
        assert system.read(0) == "hello"

    def test_abd_protocols_covered_separately(self):
        config = SystemConfig.with_objects(t=2, b=0, num_objects=5)
        for factory in (AbdRegularProtocol, AbdAtomicProtocol):
            system = StorageSystem(factory(), config)
            system.write("x")
            assert system.read(0) == "x"


class TestFacade:
    def test_history_collects_all_operations(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2)
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("a")
        system.read(0)
        system.read(1)
        assert len(system.history) == 3
        assert len(system.history.writes()) == 1

    def test_metrics_exposed(self):
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("a")
        metrics = system.metrics()
        assert metrics["messages_sent"] > 0

    def test_describe(self):
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(SafeStorageProtocol(), config)
        assert "gv-safe" in system.describe()

    def test_pending_operation_guard(self):
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(SafeStorageProtocol(), config)
        system.invoke_write("a")
        with pytest.raises(PendingOperationError):
            system.invoke_write("b")

    def test_run_until_done_multiple_handles(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2)
        system = StorageSystem(SafeStorageProtocol(), config)
        handles = [system.invoke_read(0), system.invoke_read(1)]
        system.run_until_done(*handles)
        assert all(h.done for h in handles)
