"""Multi-writer (MWMR) registers: tags end-to-end.

Covers the MWMR refactor across every layer: writer-tag types, the
tag-discovery write path, tag arbitration in the object automata, the
tag-based checkers, the wire codec (including legacy untagged frames
decoding as writer 0), Byzantine stale-tag forgery, and the service tier
accepting writes from any client host.
"""

import asyncio

import pytest

from repro import (StorageSystem, SystemConfig, TAG0, WriterTag, writer,
                   WRITER)
from repro.adversary.byzantine import StaleTagForger
from repro.automata.rounds import TagDiscovery
from repro.baselines.abd.protocol import AbdAtomicProtocol
from repro.baselines.authenticated.protocol import AuthenticatedProtocol
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularStorageProtocol)
from repro.core.safe import SafeStorageProtocol
from repro.core.safe.predicates import CandidateTracker
from repro.errors import BackpressureError, ConfigurationError
from repro.messages import (HistoryEntry, Pw, TagQuery, TagQueryAck, W)
from repro.runtime.codec import decode_message, encode_message
from repro.service import MultiRegisterStore, ShardedKVStore
from repro.spec import (check_atomicity, check_mwmr_atomicity,
                        check_mwmr_regularity, check_regularity,
                        check_safety, History, READ, WRITE)
from repro.types import (BOTTOM, TimestampValue, TsrArray, WriteTuple,
                         as_tag, initial_write_tuple, obj, reader)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Tags and tag discovery
# ---------------------------------------------------------------------------


class TestWriterTag:
    def test_total_order_epoch_first_writer_tiebreak(self):
        assert WriterTag(1, 0) < WriterTag(1, 1) < WriterTag(2, 0)
        assert max(WriterTag(3, 2), WriterTag(3, 1)) == WriterTag(3, 2)
        assert TAG0 == (0, 0)

    def test_as_tag_normalizes_legacy_ints(self):
        assert as_tag(5) == WriterTag(5, 0)
        assert as_tag(None) is None
        assert as_tag(WriterTag(2, 1)) == WriterTag(2, 1)
        assert as_tag((4, 3)) == WriterTag(4, 3)

    def test_tsval_carries_wid(self):
        a = TimestampValue(3, "v")
        b = TimestampValue(3, "v", wid=1)
        assert a != b and a.tag < b.tag
        assert a.tag == (3, 0) and b.tag == (3, 1)

    def test_next_for_bumps_epoch(self):
        assert WriterTag(7, 3).next_for(1) == WriterTag(8, 1)


class TestTagDiscovery:
    def test_quorum_and_max(self):
        disc = TagDiscovery(nonce=9, quorum=2, writer_id=1)
        assert disc.offer(0, 9, WriterTag(4, 0))
        assert not disc.ready()
        assert not disc.offer(0, 9, WriterTag(99, 0))  # duplicate object
        assert not disc.offer(1, 8, WriterTag(99, 0))  # stale nonce
        assert disc.offer(1, 9, WriterTag(2, 1))
        assert disc.ready()
        assert disc.chosen_tag() == WriterTag(5, 1)

    def test_floor_keeps_writer_monotone(self):
        disc = TagDiscovery(nonce=1, quorum=1, writer_id=2,
                            floor=WriterTag(10, 2))
        disc.offer(0, 1, WriterTag(3, 0))  # quorum under-reports
        assert disc.chosen_tag() == WriterTag(11, 2)


# ---------------------------------------------------------------------------
# Two writers racing in the simulator (tentpole acceptance)
# ---------------------------------------------------------------------------


class TestMultiWriterSim:
    def test_sequential_writers_interleave_cleanly(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2,
                                      num_writers=2)
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("a", writer_index=0)
        system.write("b", writer_index=1)
        assert system.read(0) == "b"
        system.write("c", writer_index=0)
        assert system.read(1) == "c"
        check_safety(system.history).assert_ok()

    def test_concurrent_writers_regular_history_clean(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2,
                                      num_writers=2)
        system = StorageSystem(RegularStorageProtocol(), config)
        h1 = system.invoke_write("x", writer_index=0)
        h2 = system.invoke_write("y", writer_index=1)
        system.run_until_done(h1, h2)
        value = system.read(0)
        assert value in ("x", "y")
        check_regularity(system.history).assert_ok()
        # tags must disambiguate the two writes
        w1, w2 = system.history.writes_by_tag()
        assert w1.tag != w2.tag

    def test_two_writers_racing_abd_atomic(self):
        """Two writers racing on one register: atomicity-checker clean."""
        config = SystemConfig.optimal(t=1, b=0, num_readers=2,
                                      num_writers=2)
        system = StorageSystem(AbdAtomicProtocol(), config)
        for round_ in range(4):
            h1 = system.invoke_write(f"w0-{round_}", writer_index=0)
            h2 = system.invoke_write(f"w1-{round_}", writer_index=1)
            system.run_until_done(h1, h2)
            system.read(round_ % 2)
        result = check_atomicity(system.history)
        result.assert_ok()
        assert result.property_name == "mwmr-atomicity"

    def test_authenticated_mwmr_keys_per_writer(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1,
                                      num_writers=2)
        system = StorageSystem(AuthenticatedProtocol(), config)
        system.write("first", writer_index=0)
        system.write("second", writer_index=1)
        assert system.read(0) == "second"
        check_safety(system.history).assert_ok()

    def test_mwmr_write_uses_extra_round(self):
        config = SystemConfig.optimal(t=1, b=1, num_writers=2)
        protocol = SafeStorageProtocol()
        system = StorageSystem(protocol, config)
        handle = system.write("v", writer_index=1)
        assert handle.rounds_used == 3  # TAG + PW + W
        assert protocol.write_rounds_bound(config) == 3

    def test_swmr_write_path_unchanged(self):
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(SafeStorageProtocol(), config)
        handle = system.write("v")
        assert handle.rounds_used == 2  # no discovery round

    def test_single_writer_protocols_reject_other_indices(self):
        from repro.core.lower_bound.victims import FastReadProtocol
        config = SystemConfig.at_impossibility_threshold(t=1, b=1)
        protocol = FastReadProtocol()
        with pytest.raises(ConfigurationError):
            protocol.make_writer_state_for(config, writer_index=1)


# ---------------------------------------------------------------------------
# Codec: tagged frames round-trip, legacy frames decode as writer 0
# ---------------------------------------------------------------------------


class TestTaggedCodec:
    def _wtuple(self, ts, wid=0, value="v"):
        return WriteTuple(TimestampValue(ts, value, wid=wid),
                          TsrArray.empty(3, 1))

    def test_tagged_write_frames_roundtrip(self):
        wt = self._wtuple(2, wid=3)
        for message in (
            Pw(ts=2, pw=wt.tsval, w=wt, wid=3),
            W(ts=2, pw=wt.tsval, w=wt, wid=3),
            TagQuery(nonce=4, register_id="k"),
            TagQueryAck(nonce=4, object_index=1, epoch=9, wid=2),
        ):
            assert decode_message(encode_message(message)) == message

    def test_tagged_history_ack_roundtrip(self):
        from repro.messages import HistoryReadAck
        ack = HistoryReadAck(
            round_index=1, tsr=3, object_index=0,
            history={WriterTag(1, 0): HistoryEntry(
                         pw=TimestampValue(1, "a"), w=None),
                     WriterTag(1, 2): HistoryEntry(
                         pw=TimestampValue(1, "b", wid=2), w=None)})
        decoded = decode_message(encode_message(ack))
        assert decoded == ack
        assert set(decoded.history) == {(1, 0), (1, 2)}

    def test_legacy_untagged_frames_decode_as_writer_zero(self):
        """Pre-MWMR wire frames (no wid, integer history keys / from_ts)
        must keep decoding, attributed to writer 0."""
        legacy_pw = ('{"__kind":"Pw","pw":{"__t":"tsval","ts":1,"v":"x"},'
                     '"r":"r0","ts":1,"w":{"__t":"wtuple","tsr":{"__t":"tsr",'
                     '"rows":[[null],[null],[null]]},"tsval":{"__t":"tsval",'
                     '"ts":0,"v":{"__t":"bottom"}}}}')
        message = decode_message(legacy_pw)
        assert isinstance(message, Pw)
        assert message.wid == 0 and message.tag == (1, 0)
        assert message.pw.tag == (1, 0)

        legacy_hist = ('{"__kind":"HistoryReadAck","h":{"2":{"__t":"hentry",'
                       '"pw":{"__t":"tsval","ts":2,"v":"y"},"w":null}},'
                       '"i":0,"k":1,"r":"r0","tsr":5}')
        ack = decode_message(legacy_hist)
        assert set(ack.history) == {(2, 0)}

        legacy_read = ('{"__kind":"ReadRequest","from_ts":3,"j":0,"k":1,'
                       '"r":"r0","tsr":7}')
        request = decode_message(legacy_read)
        assert request.from_ts == WriterTag(3, 0)

    def test_writer_zero_frames_stay_legacy_on_the_wire(self):
        """Writer-0 traffic encodes without the wid key, so a mixed fleet
        of old and new nodes interoperates."""
        wt = initial_write_tuple(3, 1)
        wire = encode_message(Pw(ts=1, pw=TimestampValue(1, "x"), w=wt))
        assert '"wid"' not in wire
        tagged = encode_message(
            Pw(ts=1, pw=TimestampValue(1, "x", wid=2), w=wt, wid=2))
        assert '"wid":2' in tagged


# ---------------------------------------------------------------------------
# Byzantine stale-tag forgery
# ---------------------------------------------------------------------------


class TestStaleTagForgery:
    @pytest.mark.parametrize("protocol_cls", [SafeStorageProtocol,
                                              RegularStorageProtocol])
    def test_forged_stale_tag_is_outvoted(self, protocol_cls):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2,
                                      num_writers=2)
        system = StorageSystem(protocol_cls(), config)
        system.write("genuine-1", writer_index=0)
        system.write("genuine-2", writer_index=1)
        # One replica now lies: it claims the register still holds a
        # forged value at the stale tag (1, 1) and under-reports tag
        # queries.
        target = obj(0)
        forger = StaleTagForger(system.kernel.object_automaton(target),
                                config, forged_tag=WriterTag(1, 1),
                                forged_value="FORGED")
        system.kernel.make_byzantine(target, forger, note="stale-tag")
        assert system.read(0) == "genuine-2"
        assert system.read(1) == "genuine-2"
        # Writers keep making progress past the lying tag reports.
        system.write("genuine-3", writer_index=1)
        assert system.read(0) == "genuine-3"
        check_safety(system.history).assert_ok()


# ---------------------------------------------------------------------------
# Tag-based checkers: violations are actually caught
# ---------------------------------------------------------------------------


def _record(history, client, kind, argument=None, result=None, tag=None,
            complete=True):
    op_id = len(history.operations()) + 1000
    history.record_invocation(op_id, client, kind, argument=argument)
    if complete:
        history.record_completion(op_id, result, tag=tag)
    return op_id


class TestMwmrCheckers:
    def test_clean_history_passes(self):
        h = History()
        _record(h, writer(0), WRITE, argument="a", result="OK",
                tag=WriterTag(1, 0))
        _record(h, writer(1), WRITE, argument="b", result="OK",
                tag=WriterTag(2, 1))
        _record(h, reader(0), READ, result="b", tag=WriterTag(2, 1))
        check_mwmr_atomicity(h).assert_ok()

    def test_stale_read_detected(self):
        h = History()
        _record(h, writer(0), WRITE, argument="a", result="OK",
                tag=WriterTag(1, 0))
        _record(h, writer(1), WRITE, argument="b", result="OK",
                tag=WriterTag(2, 1))
        _record(h, reader(0), READ, result="a", tag=WriterTag(1, 0))
        result = check_mwmr_regularity(h)
        assert not result.ok
        assert "stale" in result.violations[0]

    def test_new_old_inversion_detected(self):
        h = History()
        _record(h, writer(0), WRITE, argument="a", result="OK",
                tag=WriterTag(1, 0))
        _record(h, writer(1), WRITE, argument="b", result="OK",
                tag=WriterTag(2, 1))
        r1 = len(h.operations()) + 1000
        h.record_invocation(r1, reader(0), READ)
        h.record_completion(r1, "b", tag=WriterTag(2, 1))
        r2 = len(h.operations()) + 1000
        h.record_invocation(r2, reader(1), READ)
        h.record_completion(r2, "b", tag=WriterTag(2, 1))
        # a third read observing the OLD tag after both -> inversion...
        # but regularity already flags it as stale, so craft a
        # tag-concurrent case: write (3, 0) completes, late reader still
        # observes (2, 1) while an earlier one observed (3, 0).
        _record(h, writer(0), WRITE, argument="c", result="OK",
                tag=WriterTag(3, 0))
        ra = len(h.operations()) + 1000
        h.record_invocation(ra, reader(0), READ)
        h.record_completion(ra, "c", tag=WriterTag(3, 0))
        rb = len(h.operations()) + 1000
        h.record_invocation(rb, reader(1), READ)
        h.record_completion(rb, "b", tag=WriterTag(2, 1))
        result = check_mwmr_atomicity(h)
        assert not result.ok

    def test_tag_against_real_time_order(self):
        h = History()
        _record(h, writer(0), WRITE, argument="a", result="OK",
                tag=WriterTag(5, 0))
        _record(h, writer(1), WRITE, argument="b", result="OK",
                tag=WriterTag(3, 1))  # later write, smaller tag
        result = check_mwmr_regularity(h)
        assert not result.ok
        assert "real" in " ".join(result.violations)

    def test_forged_unknown_tag_detected(self):
        h = History()
        _record(h, writer(0), WRITE, argument="a", result="OK",
                tag=WriterTag(1, 0))
        _record(h, writer(1), WRITE, argument="b", result="OK",
                tag=WriterTag(2, 1))
        _record(h, reader(0), READ, result="ghost", tag=WriterTag(9, 9))
        result = check_mwmr_regularity(h)
        assert not result.ok
        assert "no write installed" in result.violations[0]


# ---------------------------------------------------------------------------
# Service tier: any client host writes any key
# ---------------------------------------------------------------------------


class TestMultiWriterService:
    def test_sharded_kv_two_writers_racing_atomic(self):
        """Acceptance: concurrent puts from two writer hosts through the
        sharded KV store yield atomicity-checker-clean histories."""
        config = SystemConfig.optimal(t=1, b=0, num_readers=2,
                                      num_writers=2)

        async def scenario():
            async with ShardedKVStore(lambda: AbdAtomicProtocol(), config,
                                      num_shards=2,
                                      record_history=True) as kv:
                for round_ in range(5):
                    await asyncio.gather(
                        kv.put("hot", f"w0-{round_}", writer_index=0),
                        kv.put("hot", f"w1-{round_}", writer_index=1),
                    )
                    assert await kv.get("hot") is not None
                    assert await kv.get("hot", reader_index=1) is not None
                return kv.history

        history = run(scenario())
        for register in history.registers():
            result = check_atomicity(history.for_register(register))
            result.assert_ok()
            assert result.property_name == "mwmr-atomicity"

    def test_multi_register_store_mwmr_regular(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1,
                                      num_writers=3)

        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config,
                                          record_history=True) as store:
                await asyncio.gather(*(
                    store.write("shared", f"v{k}", writer_index=k)
                    for k in range(3)
                ))
                value = await store.read("shared")
                return store.history, value

        history, value = run(scenario())
        assert value in {"v0", "v1", "v2"}
        check_regularity(history.for_register("shared")).assert_ok()

    def test_writer_index_out_of_range_rejected(self):
        config = SystemConfig.optimal(t=1, b=1, num_writers=2)

        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                with pytest.raises(Exception):
                    await store.write("k", "v", writer_index=5)

        run(scenario())


# ---------------------------------------------------------------------------
# Backpressure (satellite): bounded pending registers per host
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_admission_cap_rejects_and_recovers(self):
        config = SystemConfig.optimal(t=1, b=1)

        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config,
                                          max_pending_per_host=2) as store:
                with pytest.raises(BackpressureError):
                    await store.write_many(
                        {f"k{n}": n for n in range(3)})
                # The rejected batch rolled back: the host admits new work.
                await store.write("k0", "recovered")
                return await store.read("k0")

        assert run(scenario()) == "recovered"

    def test_rejected_batch_leaves_no_phantom_history(self):
        """Backpressure rollback must also roll back invocation records:
        never-started operations would otherwise sit forever-pending in
        the shared history and weaken every later check."""
        config = SystemConfig.optimal(t=1, b=1)

        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config,
                                          max_pending_per_host=2,
                                          record_history=True) as store:
                with pytest.raises(BackpressureError):
                    await store.write_many(
                        {f"k{n}": n for n in range(3)})
                await store.write("k0", "only-write")
                assert await store.read("k0") == "only-write"
                return store.history

        history = run(scenario())
        assert all(op.complete for op in history.operations())
        assert len(history.writes()) == 1
        check_regularity(history.for_register("k0")).assert_ok()

    def test_cap_does_not_bite_within_limit(self):
        config = SystemConfig.optimal(t=1, b=1)

        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config,
                                          max_pending_per_host=8) as store:
                await store.write_many({f"k{n}": n for n in range(8)})
                return await store.read_many([f"k{n}" for n in range(8)])

        values = run(scenario())
        assert values == {f"k{n}": n for n in range(8)}


# ---------------------------------------------------------------------------
# Perf satellites: memoized CandidateTracker, slotted HistoryEntry
# ---------------------------------------------------------------------------


class TestPerfSatellites:
    def test_candidate_tracker_memoization_tracks_generations(self):
        tracker = CandidateTracker(elimination_threshold=3,
                                   confirmation_threshold=2)
        wt = WriteTuple(TimestampValue(1, "v"), TsrArray.empty(4, 1))
        tracker.record_first_round(0, wt.tsval, wt)
        first = tracker.supporters(wt)
        assert tracker.supporters(wt) is first  # cached within generation
        tracker.record_first_round(1, wt.tsval, wt)
        second = tracker.supporters(wt)
        assert second is not first  # new evidence invalidates the cache
        assert second == {0, 1}
        assert tracker.candidates() is tracker.candidates()

    def test_candidate_tracker_verdicts_match_fresh_instance(self):
        """Memoization must be invisible: same verdicts as a cold tracker."""
        def build(events):
            t = CandidateTracker(elimination_threshold=3,
                                 confirmation_threshold=2)
            for rnd, i, wt in events:
                if rnd == 1:
                    t.record_first_round(i, wt.tsval, wt)
                else:
                    t.record_second_round(i, wt.tsval, wt)
            return t

        tuples = [WriteTuple(TimestampValue(ts, f"v{ts}", wid=wid),
                             TsrArray.empty(4, 1))
                  for ts in (1, 2) for wid in (0, 1)]
        events = [(1, 0, tuples[0]), (1, 1, tuples[1]), (2, 2, tuples[2]),
                  (1, 3, tuples[3]), (2, 0, tuples[3])]
        warm = build([])
        for rnd, i, wt in events:
            if rnd == 1:
                warm.record_first_round(i, wt.tsval, wt)
            else:
                warm.record_second_round(i, wt.tsval, wt)
            warm.candidates(); [warm.supporters(c) for c in tuples]
        cold = build(events)
        for c in tuples:
            assert warm.supporters(c) == cold.supporters(c)
            assert warm.is_eliminated(c) == cold.is_eliminated(c)
        assert warm.candidates() == cold.candidates()
        assert warm.high_candidates() == cold.high_candidates()

    def test_history_entry_is_slotted(self):
        entry = HistoryEntry(pw=None, w=None)
        assert not hasattr(entry, "__dict__")
        with pytest.raises(AttributeError):
            object.__setattr__(entry, "extra", 1)

    def test_history_entry_pickles_deterministically(self):
        import pickle
        entry = HistoryEntry(pw=TimestampValue(1, "v"), w=None)
        blob = pickle.dumps(entry, protocol=4)
        assert pickle.loads(blob) == entry
        assert pickle.dumps(pickle.loads(blob), protocol=4) == blob
