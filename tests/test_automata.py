"""Tests for the automata framework: operations, round collectors."""

import pytest

from repro.automata import ClientOperation, ObjectAutomaton, RoundCollector
from repro.errors import ProtocolError
from repro.types import reader


class NoopOperation(ClientOperation):
    kind = "READ"

    def start(self):
        return []

    def on_message(self, sender, message):
        return []


class TestClientOperationBase:
    def test_fresh_operation_state(self):
        op = NoopOperation(reader(0))
        assert not op.done
        assert op.rounds_used == 0
        assert op.messages_sent == 0

    def test_complete_sets_result(self):
        op = NoopOperation(reader(0))
        assert op.complete("x") == []
        assert op.done
        assert op.result == "x"

    def test_double_complete_rejected(self):
        op = NoopOperation(reader(0))
        op.complete("x")
        with pytest.raises(ProtocolError):
            op.complete("y")

    def test_result_before_completion_rejected(self):
        op = NoopOperation(reader(0))
        with pytest.raises(ProtocolError):
            _ = op.result

    def test_operation_ids_unique(self):
        a, b = NoopOperation(reader(0)), NoopOperation(reader(0))
        assert a.operation_id != b.operation_id

    def test_begin_round_counts(self):
        op = NoopOperation(reader(0))
        op.begin_round()
        op.begin_round()
        assert op.rounds_used == 2

    def test_describe_mentions_kind_and_client(self):
        op = NoopOperation(reader(1))
        assert "READ" in op.describe()
        assert "r2" in op.describe()


class StatefulObject(ObjectAutomaton):
    def __init__(self):
        super().__init__(0)
        self.counter = 0
        self.log = []

    def on_message(self, sender, message):
        self.counter += 1
        self.log.append(message)
        return []


class TestObjectAutomatonBase:
    def test_snapshot_is_deep(self):
        obj_ = StatefulObject()
        obj_.on_message(reader(0), "a")
        snap = obj_.snapshot_state()
        obj_.on_message(reader(0), "b")
        assert snap["counter"] == 1
        assert snap["log"] == ["a"]  # unaffected by later mutation

    def test_restore_replaces_state(self):
        obj_ = StatefulObject()
        obj_.on_message(reader(0), "a")
        snap = obj_.snapshot_state()
        obj_.on_message(reader(0), "b")
        obj_.restore_state(snap)
        assert obj_.counter == 1
        assert obj_.log == ["a"]

    def test_restore_is_a_copy(self):
        obj_ = StatefulObject()
        snap = obj_.snapshot_state()
        obj_.restore_state(snap)
        obj_.on_message(reader(0), "x")
        assert snap["counter"] == 0


class TestRoundCollector:
    def test_fresh_acks_counted(self):
        collector = RoundCollector(round_index=1, freshness=42)
        assert collector.offer(0, 42, "ack-a")
        assert collector.offer(1, 42, "ack-b")
        assert collector.count() == 2
        assert collector.responders == {0, 1}

    def test_stale_acks_rejected(self):
        collector = RoundCollector(1, freshness=42)
        assert not collector.offer(0, 41, "old")
        assert collector.stale == 1
        assert collector.count() == 0

    def test_duplicates_rejected(self):
        collector = RoundCollector(1, freshness=42)
        collector.offer(0, 42, "first")
        assert not collector.offer(0, 42, "second")
        assert collector.duplicates == 1
        assert collector.ack_of(0) == "first"

    def test_quorum_check(self):
        collector = RoundCollector(1, freshness=1)
        for i in range(3):
            collector.offer(i, 1, i)
        assert collector.has_quorum(3)
        assert not collector.has_quorum(4)
