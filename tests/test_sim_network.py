"""Unit tests for the network's hold machinery and bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.sim.envelope import Envelope
from repro.sim.network import Network
from repro.types import WRITER, obj, reader


def env(sender, receiver, payload="m", available_at=0.0):
    return Envelope(sender=sender, receiver=receiver, payload=payload,
                    available_at=available_at)


def always_alive(pid):
    return True


class TestHolds:
    def test_hold_blocks_matching(self):
        net = Network()
        net.submit(env(WRITER, obj(0)))
        net.hold("h", lambda e: e.receiver == obj(0))
        assert net.deliverable(0.0, always_alive) == []

    def test_release_restores_delivery(self):
        net = Network()
        net.submit(env(WRITER, obj(0)))
        net.hold("h", lambda e: True)
        net.release("h")
        assert len(net.deliverable(0.0, always_alive)) == 1

    def test_hold_applies_to_future_messages(self):
        net = Network()
        net.hold("h", lambda e: e.receiver == obj(1))
        net.submit(env(WRITER, obj(1)))
        assert net.deliverable(0.0, always_alive) == []

    def test_duplicate_tag_rejected(self):
        net = Network()
        net.hold("h", lambda e: True)
        with pytest.raises(SimulationError):
            net.hold("h", lambda e: True)

    def test_release_unknown_tag_rejected(self):
        with pytest.raises(SimulationError):
            Network().release("nope")

    def test_release_all(self):
        net = Network()
        net.hold("a", lambda e: True)
        net.hold("b", lambda e: True)
        net.release_all()
        assert net.active_holds() == []

    def test_link_predicate(self):
        pred = Network.link_predicate(sender=WRITER, receiver=obj(0))
        assert pred(env(WRITER, obj(0)))
        assert not pred(env(WRITER, obj(1)))
        assert not pred(env(reader(0), obj(0)))

    def test_link_predicate_payload_kind(self):
        pred = Network.link_predicate(payload_kind=str)
        assert pred(env(WRITER, obj(0), payload="text"))
        assert not pred(env(WRITER, obj(0), payload=42))


class TestDeliveryEligibility:
    def test_crashed_receiver_excluded(self):
        net = Network()
        net.submit(env(WRITER, obj(0)))
        alive = lambda pid: pid != obj(0)
        assert net.deliverable(0.0, alive) == []
        # but the message stays in transit (Section 2.1 semantics)
        assert net.pending_count() == 1

    def test_delay_respected(self):
        net = Network()
        net.submit(env(WRITER, obj(0), available_at=5.0))
        assert net.deliverable(1.0, always_alive) == []
        assert len(net.deliverable(5.0, always_alive)) == 1

    def test_earliest_future_time(self):
        net = Network()
        net.submit(env(WRITER, obj(0), available_at=5.0))
        net.submit(env(WRITER, obj(1), available_at=3.0))
        assert net.earliest_future_time(always_alive) == 3.0

    def test_earliest_future_skips_held(self):
        net = Network()
        net.submit(env(WRITER, obj(0), available_at=3.0))
        net.hold("h", lambda e: True)
        assert net.earliest_future_time(always_alive) is None


class TestAccounting:
    def test_counters(self):
        net = Network()
        e = env(WRITER, obj(0))
        net.submit(e, size_bytes=10)
        assert net.total_sent == 1
        assert net.total_bytes_sent == 10
        net.remove(e)
        assert net.total_delivered == 1
        assert net.pending_count() == 0

    def test_in_transit_between(self):
        net = Network()
        net.submit(env(WRITER, obj(0)))
        net.submit(env(WRITER, obj(1)))
        assert len(net.in_transit_between(WRITER, obj(0))) == 1

    def test_drop_matching(self):
        net = Network()
        net.submit(env(WRITER, obj(0)))
        net.submit(env(WRITER, obj(1)))
        dropped = net.drop_matching(lambda e: e.receiver == obj(0))
        assert dropped == 1
        assert net.pending_count() == 1
