"""Service tier: MultiRegisterStore, ShardedKVStore, HashRing, batching."""

import asyncio

import pytest

from repro.adversary.byzantine import ValueForger
from repro.config import SystemConfig
from repro.core.regular import CachedRegularStorageProtocol
from repro.core.safe import SafeStorageProtocol
from repro.errors import FencedWriteError, TransportError
from repro.messages import Batch, WriteAck
from repro.runtime import MuxClientHost, coalesce_outgoing
from repro.service import HashRing, MultiRegisterStore, ShardedKVStore
from repro.types import BOTTOM, obj


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig.optimal(t=1, b=1, num_readers=2)


class TestHashRing:
    def test_stable_placement(self):
        ring = HashRing(4)
        keys = [f"key:{n}" for n in range(100)]
        first = [ring.shard_for(k) for k in keys]
        second = [HashRing(4).shard_for(k) for k in keys]
        assert first == second  # deterministic across instances

    def test_covers_all_shards(self):
        ring = HashRing(4)
        owners = {ring.shard_for(f"key:{n}") for n in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_consistency_on_growth(self):
        """Adding a shard moves only a fraction of the keyspace."""
        keys = [f"key:{n}" for n in range(500)]
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(1 for k in keys
                    if before.shard_for(k) != after.shard_for(k))
        # Ideal is ~1/5 of keys; allow generous slack for small rings.
        assert moved < len(keys) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


class TestCoalescing:
    def test_groups_per_receiver(self):
        a, b = obj(0), obj(1)
        out = coalesce_outgoing([
            (a, WriteAck(ts=1, object_index=0, register_id="x")),
            (b, WriteAck(ts=1, object_index=1, register_id="x")),
            (a, WriteAck(ts=2, object_index=0, register_id="y")),
        ])
        assert len(out) == 2
        batched = dict(out)[a]
        assert isinstance(batched, Batch) and len(batched.messages) == 2
        assert not isinstance(dict(out)[b], Batch)  # singleton stays bare

    def test_raw_payloads_never_batched(self):
        a = obj(0)
        out = coalesce_outgoing([(a, "probe1"), (a, "probe2")])
        assert out == [(a, "probe1"), (a, "probe2")]


class TestMultiRegisterStore:
    def test_write_read_many_registers(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                for n in range(20):
                    await store.write(f"reg{n}", f"value{n}")
                return [await store.read(f"reg{n}", reader_index=n % 2)
                        for n in range(20)]

        assert run(scenario()) == [f"value{n}" for n in range(20)]

    def test_batched_write_many_read_many(self, config):
        async def scenario():
            async with MultiRegisterStore(SafeStorageProtocol(),
                                          config) as store:
                await store.write_many(
                    {f"k{n}": n * n for n in range(32)})
                values = await store.read_many([f"k{n}" for n in range(32)])
                return values, store.network.messages_sent

        values, messages = run(scenario())
        assert values == {f"k{n}": n * n for n in range(32)}
        # Batching: far fewer envelopes than ops x objects x rounds
        # (32 registers x 4 objects x 4 rounds = 512 unbatched sends
        # client-side alone).
        assert messages < 200

    def test_read_many_dedupes_register_ids(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write("x", 1)
                return await store.read_many(["x", "x", "x"])

        assert run(scenario()) == {"x": 1}

    def test_unread_register_returns_bottom(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                return await store.read("never-written")

        assert run(scenario()) is BOTTOM

    def test_replica_set_is_shared(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write_many({f"k{n}": n for n in range(10)})
                automaton = store.object_automaton(0)
                return len(automaton.registers())

        assert run(scenario()) == 10  # one automaton holds all slots

    def test_byzantine_replica_affects_no_register(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write_many({f"k{n}": f"true{n}"
                                        for n in range(8)})
                store.make_byzantine(1, ValueForger(
                    store.object_automaton(1), config,
                    forged_value="$EVIL$", ts_boost=10**6))
                return await store.read_many([f"k{n}" for n in range(8)])

        values = run(scenario())
        assert values == {f"k{n}": f"true{n}" for n in range(8)}

    def test_crashed_replica_tolerated(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write("k", "v1")
                store.crash_object(3)
                await store.write("k", "v2")
                return await store.read("k")

        assert run(scenario()) == "v2"

    def test_same_register_concurrency_rejected(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write_many({})  # empty batch is a no-op
                operations = [
                    store.protocol.make_write_to(
                        store._states.writer("dup"), n, "dup")
                    for n in range(2)
                ]
                with pytest.raises(TransportError):
                    await store._writer_host(0).run_many(operations)
                # The failed batch must roll back cleanly: the register is
                # usable again immediately.
                await store.write("dup", "recovered")
                return await store.read("dup")

        assert run(scenario()) == "recovered"


class TestShardedKVStore:
    def test_put_get_across_shards(self, config):
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=3) as kv:
                await kv.put_many({f"user:{n}": n for n in range(30)})
                singles = await kv.get("user:7")
                many = await kv.get_many([f"user:{n}" for n in range(30)])
                shards = {kv.shard_for(f"user:{n}") for n in range(30)}
                return singles, many, shards

        single, many, shards = run(scenario())
        assert single == 7
        assert many == {f"user:{n}": n for n in range(30)}
        assert len(shards) > 1  # keys actually spread out

    def test_duplicate_keys_in_get_many(self, config):
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=2) as kv:
                await kv.put("dup", 42)
                return await kv.get_many(["dup", "dup", "dup"])

        assert run(scenario()) == {"dup": 42}

    def test_missing_key_is_none(self, config):
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=2) as kv:
                return await kv.get("missing")

        assert run(scenario()) is None

    def test_survives_replica_compromise(self, config):
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=2) as kv:
                await kv.put("victim", "truth")
                store = kv.store_for("victim")
                kv.compromise_replica("victim", 0, ValueForger(
                    store.object_automaton(0), config,
                    forged_value="$TAMPERED$", ts_boost=10**6))
                first = await kv.get("victim")
                await kv.put("victim", "still-true")
                second = await kv.get("victim", reader_index=1)
                return first, second

        assert run(scenario()) == ("truth", "still-true")

    def test_get_many_preserves_caller_key_order(self, config):
        """Regression: merged results must iterate in caller order, not
        shard-chunk order."""
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=2) as kv:
                keys = [f"ord:{n}" for n in range(16)]
                # Interleave shards so chunk order != caller order.
                assert len({kv.shard_for(k) for k in keys}) > 1
                await kv.put_many({k: k.upper() for k in keys})
                forward = await kv.get_many(keys)
                backward = await kv.get_many(list(reversed(keys)))
                return keys, forward, backward

        keys, forward, backward = run(scenario())
        assert list(forward) == keys
        assert list(backward) == list(reversed(keys))
        assert forward == {k: k.upper() for k in keys}

    def test_get_many_order_with_missing_keys(self, config):
        async def scenario():
            async with ShardedKVStore(CachedRegularStorageProtocol, config,
                                      num_shards=2) as kv:
                await kv.put("present", 1)
                result = await kv.get_many(["nope:a", "present", "nope:b"])
                return result

        result = run(scenario())
        assert list(result) == ["nope:a", "present", "nope:b"]
        assert result == {"nope:a": None, "present": 1, "nope:b": None}


class TestLifecycle:
    """start()/stop() idempotency and leak-freedom (service tier)."""

    def test_multi_register_store_stop_is_idempotent(self, config):
        async def scenario():
            store = MultiRegisterStore(CachedRegularStorageProtocol(),
                                       config)
            await store.start()
            await store.start()  # idempotent
            await store.write("k", "v")
            await store.stop()
            await store.stop()  # idempotent, must not touch fresh state
            with pytest.raises(TransportError):
                await store.write("k", "v2")
            # Restart: object hosts and pumps come back lazily.
            await store.start()
            await store.write("k", "v2")
            value = await store.read("k")
            await store.stop()
            return value

        assert run(scenario()) == "v2"

    def test_writer_host_not_created_after_stop(self, config):
        async def scenario():
            store = MultiRegisterStore(CachedRegularStorageProtocol(),
                                       config)
            await store.start()
            await store.stop()
            with pytest.raises(TransportError):
                store._writer_host(0)
            with pytest.raises(TransportError):
                store.control_host()

        run(scenario())

    def test_stop_leaves_no_running_tasks(self, config):
        async def scenario():
            store = MultiRegisterStore(CachedRegularStorageProtocol(),
                                       config)
            await store.start()
            await store.write_many({f"k{n}": n for n in range(8)})
            await store.read_many([f"k{n}" for n in range(8)])
            store.control_host()  # materialize the control identity too
            await store.stop()
            await asyncio.sleep(0)  # let cancellations land
            others = [t for t in asyncio.all_tasks()
                      if t is not asyncio.current_task()]
            return others

        assert run(scenario()) == []

    def test_sharded_stop_is_idempotent_and_guarded(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2)
            await kv.stop()  # never started: a silent no-op
            await kv.start()
            await kv.put("k", 1)
            await kv.stop()
            await kv.stop()
            await kv.start()
            await kv.put("k", 2)
            value = await kv.get("k")
            await kv.stop()
            await asyncio.sleep(0)
            assert [t for t in asyncio.all_tasks()
                    if t is not asyncio.current_task()] == []
            return value

        assert run(scenario()) == 2


class TestInboxHandover:
    """Replica replacement must not drop in-flight messages."""

    def test_reregistration_hands_over_queue(self):
        from repro.runtime.memnet import AsyncNetwork
        from repro.types import obj as obj_pid

        async def scenario():
            network = AsyncNetwork()
            first = network.register(obj_pid(0))
            network.send(obj_pid(0), obj_pid(0), "in-flight")
            second = network.register(obj_pid(0))
            assert second is first  # the queue survives re-registration
            return second.qsize()

        assert run(scenario()) == 1

    def test_make_byzantine_preserves_in_flight_messages(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write("k", "v1")
                # Wedge replica 2's pump; traffic keeps piling into its
                # inbox (the pid is alive, just slow).
                store._object_hosts[2].stop()
                await store.write("k", "v2")
                parked = store.network.inbox(obj(2)).qsize()
                assert parked > 0
                # The Byzantine replacement inherits the backlog.
                store.make_byzantine(2, ValueForger(
                    store.object_automaton(2), config,
                    forged_value="$EVIL$", ts_boost=10**6))
                await asyncio.sleep(0.01)
                drained = store.network.inbox(obj(2)).qsize()
                value = await store.read("k")
                return parked, drained, value

        parked, drained, value = run(scenario())
        assert parked > 0 and drained == 0
        assert value == "v2"


class TestBatchFailurePropagation:
    """A failing member of a batch must fail the batch fast -- and leave
    no sibling task or pending operation dangling."""

    def test_get_many_propagates_first_failure_and_cancels_siblings(
            self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2)
            async with kv:
                keys = [f"k:{n}" for n in range(12)]
                assert len({kv.shard_for(k) for k in keys}) == 2
                await kv.put_many({key: key for key in keys})
                broken = kv.shards[0]
                await broken.stop()  # one shard group down
                with pytest.raises(TransportError):
                    await kv.get_many(keys)
                # The healthy shard's per-key reads were cancelled and
                # drained, not left running detached.
                healthy = kv.shards[1]
                for _ in range(5):
                    await asyncio.sleep(0)
                assert all(not host._pending
                           for host in healthy._reader_hosts)
                # The healthy group still serves normally afterwards.
                alive = [k for k in keys if kv.shard_for(k) == 1]
                assert await kv.get(alive[0]) == alive[0]
        run(scenario())

    def test_read_many_timeout_leaves_no_pending_operations(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write_many({"a": 1, "b": 2})
                # Two crashed replicas leave only 2 < quorum=3 alive:
                # reads cannot complete and must time out.
                store.crash_object(0)
                store.crash_object(1)
                with pytest.raises(asyncio.TimeoutError):
                    await store.read_many(["a", "b"], timeout=0.05)
                assert all(not host._pending
                           for host in store._reader_hosts)
        run(scenario())

    def test_put_retries_resolve_routing_after_fence_clears(self, config):
        """`put(retries=N)` absorbs FencedWriteError and succeeds once
        routing recovers (here: the fence is lifted, as a completed
        reconfiguration's hand-back would)."""
        from repro.service.reconfig import FenceOperation

        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2)
            async with kv:
                await kv.put("k", "v0")
                store = kv.store_for("k")
                fence = FenceOperation(store.config, "k", hard=True)
                await store.control_host().run(fence, 5.0)
                with pytest.raises(FencedWriteError):
                    await kv.put("k", "v1")  # retries=0: fail fast

                async def lift_soon():
                    await asyncio.sleep(0.002)
                    lift = FenceOperation(store.config, "k", lift=True)
                    await store.control_host().run(lift, 5.0)

                lifter = asyncio.create_task(lift_soon())
                await kv.put("k", "v2", retries=100)
                await lifter
                assert await kv.get("k") == "v2"
        run(scenario())

    def test_put_retries_exhausted_reraises(self, config):
        from repro.service.reconfig import FenceOperation

        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2)
            async with kv:
                await kv.put("k", "v0")
                store = kv.store_for("k")
                fence = FenceOperation(store.config, "k", hard=True)
                await store.control_host().run(fence, 5.0)
                with pytest.raises(FencedWriteError):
                    await kv.put("k", "v1", retries=3)
        run(scenario())
