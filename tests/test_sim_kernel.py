"""Unit tests for the simulation kernel: steps, faults, operations."""

import pytest

from repro.automata.base import ClientOperation, ObjectAutomaton
from repro.config import SystemConfig
from repro.errors import (PendingOperationError, ProtocolError,
                          SchedulerExhaustedError, SimulationError)
from repro.sim import ConstantDelay, FifoScheduler, SimKernel
from repro.types import WRITER, obj, reader


class EchoObject(ObjectAutomaton):
    """Replies to any message with ('echo', payload)."""

    def __init__(self, object_index: int):
        super().__init__(object_index)
        self.received = []

    def on_message(self, sender, message):
        self.received.append(message)
        return [(sender, ("echo", message))]


class PingAll(ClientOperation):
    """Broadcasts 'ping' and completes after `quorum` echoes."""

    kind = "READ"

    def __init__(self, client_id, num_objects, quorum):
        super().__init__(client_id)
        self.num_objects = num_objects
        self.quorum = quorum
        self.echoes = 0

    def start(self):
        self.begin_round()
        return [(obj(i), "ping") for i in range(self.num_objects)]

    def on_message(self, sender, message):
        self.echoes += 1
        if self.echoes >= self.quorum and not self.done:
            return self.complete("pong")
        return []


@pytest.fixture
def kernel():
    config = SystemConfig.with_objects(t=1, b=0, num_objects=3)
    k = SimKernel(config)
    k.register_objects([EchoObject(i) for i in range(3)])
    return k


class TestRegistration:
    def test_duplicate_object_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.register_object(EchoObject(0))

    def test_out_of_range_index_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.register_object(EchoObject(7))


class TestOperations:
    def test_run_operation_completes(self, kernel):
        op = PingAll(reader(0), 3, quorum=2)
        handle = kernel.run_operation(op)
        assert handle.done
        assert handle.result == "pong"
        assert handle.rounds_used == 1

    def test_one_operation_per_client(self, kernel):
        kernel.invoke(PingAll(reader(0), 3, quorum=3))
        with pytest.raises(PendingOperationError):
            kernel.invoke(PingAll(reader(0), 3, quorum=3))

    def test_different_clients_concurrent(self, kernel):
        h1 = kernel.invoke(PingAll(reader(0), 3, quorum=2))
        h2 = kernel.invoke(PingAll(WRITER, 3, quorum=2))
        kernel.run_until(lambda: h1.done and h2.done)
        assert h1.result == h2.result == "pong"

    def test_object_cannot_invoke(self, kernel):
        with pytest.raises(ProtocolError):
            kernel.invoke(PingAll(obj(0), 3, quorum=1))

    def test_crashed_client_cannot_invoke(self, kernel):
        kernel.crash(reader(0))
        with pytest.raises(ProtocolError):
            kernel.invoke(PingAll(reader(0), 3, quorum=1))

    def test_result_unavailable_before_done(self, kernel):
        op = PingAll(reader(0), 3, quorum=2)
        with pytest.raises(ProtocolError):
            _ = op.result


class TestFaults:
    def test_crashed_object_receives_nothing(self, kernel):
        kernel.crash(obj(0))
        handle = kernel.run_operation(PingAll(reader(0), 3, quorum=2))
        assert handle.done
        assert kernel.object_automaton(obj(0)).received == []

    def test_too_many_crashes_starve_quorum(self, kernel):
        kernel.crash(obj(0))
        kernel.crash(obj(1))
        op = PingAll(reader(0), 3, quorum=3)
        handle = kernel.invoke(op)
        with pytest.raises(SchedulerExhaustedError):
            kernel.run_until(lambda: handle.done)

    def test_inject_requires_byzantine_sender(self, kernel):
        with pytest.raises(SimulationError):
            kernel.inject(obj(0), reader(0), "forged")

    def test_inject_after_corruption(self, kernel):
        kernel.make_byzantine(obj(0), EchoObject(0), note="test")
        env = kernel.inject(obj(0), reader(0), "forged")
        assert env.injected
        assert obj(0) in kernel.byzantine_processes()

    def test_only_objects_turn_byzantine(self, kernel):
        with pytest.raises(SimulationError):
            kernel.make_byzantine(reader(0), EchoObject(0))

    def test_crash_is_idempotent(self, kernel):
        kernel.crash(obj(0))
        kernel.crash(obj(0))
        assert len(kernel.crashed_processes()) == 1


class TestClockAndMetrics:
    def test_zero_delay_keeps_time_still(self, kernel):
        kernel.run_operation(PingAll(reader(0), 3, quorum=2))
        assert kernel.now == 0.0

    def test_constant_delay_advances_clock(self):
        config = SystemConfig.with_objects(t=1, b=0, num_objects=3)
        kernel = SimKernel(config, delay_model=ConstantDelay(1.0))
        kernel.register_objects([EchoObject(i) for i in range(3)])
        handle = kernel.run_operation(PingAll(reader(0), 3, quorum=2))
        # one round trip = request (1.0) + reply (1.0)
        assert handle.latency == pytest.approx(2.0)

    def test_metrics_track_messages(self, kernel):
        kernel.run_operation(PingAll(reader(0), 3, quorum=3))
        metrics = kernel.metrics()
        assert metrics["messages_sent"] == 6  # 3 pings + 3 echoes
        assert metrics["messages_delivered"] == 6
        assert metrics["bytes_sent"] > 0

    def test_run_until_max_steps_guard(self, kernel):
        handle = kernel.invoke(PingAll(reader(0), 3, quorum=3))
        with pytest.raises(SimulationError):
            kernel.run_until(lambda: False, max_steps=2)
        del handle

    def test_run_to_quiescence_returns_step_count(self, kernel):
        kernel.invoke(PingAll(reader(0), 3, quorum=3))
        steps = kernel.run_to_quiescence()
        assert steps == 6
        assert not kernel.step()
