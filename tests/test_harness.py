"""Tests for the harness: tables, metrics, workloads, tracing."""

import math

import pytest

from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.harness import (OperationMetrics, Summary, WorkloadSpec,
                           max_rounds, render_kv, render_table,
                           run_concurrent, run_read_heavy, run_sequential)
from repro.sim import RandomScheduler, tracing
from repro.spec import check_safety
from repro.spec.histories import READ, WRITE
from repro.system import StorageSystem


class TestTables:
    def test_alignment_and_rule(self):
        text = render_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in lines[2]

    def test_title_and_float_formatting(self):
        text = render_table(["x"], [[3.14159]], title="numbers")
        assert text.startswith("numbers")
        assert "3.142" in text

    def test_bools_render_as_yes_no(self):
        assert "yes" in render_table(["ok"], [[True]])
        assert "no" in render_table(["ok"], [[False]])

    def test_kv_block(self):
        text = render_kv([("key", "value"), ("longer-key", 3)], title="hd")
        assert "hd" in text and "longer-key" in text


class TestSummary:
    def test_empty_sample(self):
        summary = Summary.of([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_percentiles(self):
        summary = Summary.of(list(range(1, 101)))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50, abs=1)
        assert summary.p95 == pytest.approx(95, abs=1)
        assert summary.maximum == 100
        assert summary.minimum == 1


class TestWorkloads:
    @pytest.fixture
    def system(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2)
        return StorageSystem(SafeStorageProtocol(), config)

    def test_sequential_counts(self, system):
        history = run_sequential(system, num_writes=3, reads_per_write=2)
        assert len(history.writes()) == 3
        assert len(history.reads()) == 3 * 2 * 2
        check_safety(history).assert_ok()

    def test_concurrent_completes_everything(self, system):
        spec = WorkloadSpec(num_writes=5, reads_per_reader=5, seed=3)
        history = run_concurrent(system, spec)
        assert len(history.writes()) == 5
        assert all(r.complete for r in history.operations())
        check_safety(history).assert_ok()

    def test_concurrent_actually_overlaps(self, system):
        spec = WorkloadSpec(num_writes=8, reads_per_reader=8, seed=1)
        history = run_concurrent(system, spec)
        overlapping = [
            r for r in history.reads() if history.concurrent_writes(r)
        ]
        assert overlapping, "workload produced no read/write concurrency"

    def test_read_heavy_shape(self, system):
        history = run_read_heavy(system, num_reads=20, writes_every=5)
        assert len(history.reads()) == 20
        assert len(history.writes()) > 1

    def test_metrics_from_history(self, system):
        run_sequential(system, num_writes=2, reads_per_write=1)
        metrics = OperationMetrics.from_history(system.history)
        assert metrics.read_rounds.maximum == 2
        assert metrics.write_rounds.maximum == 2
        assert metrics.incomplete == 0
        assert max_rounds(system.history, READ) == 2
        assert max_rounds(system.history, WRITE) == 2


class TestTracing:
    def test_trace_records_lifecycle(self):
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("v")
        trace = system.kernel.trace
        assert trace.events(kind=tracing.INVOKE)
        assert trace.events(kind=tracing.RESPOND)
        assert trace.events(kind=tracing.SEND)
        assert trace.events(kind=tracing.DELIVER)

    def test_delivery_order_replayable(self):
        from repro.sim import ReplayScheduler
        config = SystemConfig.optimal(t=1, b=1)
        first = StorageSystem(SafeStorageProtocol(), config,
                              scheduler=RandomScheduler(13))
        first.write("v")
        first.read(0)
        order = first.kernel.trace.delivery_order()

        second = StorageSystem(SafeStorageProtocol(), config,
                               scheduler=ReplayScheduler(order))
        second.write("v")
        second.read(0)
        assert second.kernel.trace.delivery_order() == order

    def test_capacity_bounds_memory(self):
        trace = tracing.TraceLog(capacity=10)
        for n in range(50):
            trace.append(time=0.0, kind=tracing.NOTE, detail=f"n{n}")
        assert len(trace) == 10
        assert trace.dropped == 40

    def test_disabled_trace_records_nothing(self):
        trace = tracing.TraceLog(enabled=False)
        trace.append(time=0.0, kind=tracing.NOTE, detail="x")
        assert len(trace) == 0

    def test_render_smoke(self):
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("v")
        text = system.kernel.trace.render(last=5)
        assert text.count("\n") == 4
