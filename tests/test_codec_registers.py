"""Wire-codec coverage for register-addressed messages and batches."""

import pytest

from repro.baselines.abd.protocol import (AbdQuery, AbdQueryAck, AbdStore,
                                          AbdStoreAck)
from repro.core.atomic.protocol import WriteBack, WriteBackAck
from repro.errors import TransportError
from repro.messages import (Batch, HistoryEntry, HistoryReadAck, Pw, PwAck,
                            ReadAck, ReadRequest, TagQueryAck, W, WriteAck,
                            register_of, unbatch)
from repro.runtime import decode_message, encode_message
from repro.types import (DEFAULT_REGISTER, TimestampValue, TsrArray,
                         WriterTag, WriteTuple)


@pytest.fixture
def wtuple() -> WriteTuple:
    return WriteTuple(TimestampValue(3, "v3"), TsrArray.empty(4, 2))


def roundtrip(message):
    return decode_message(encode_message(message))


class TestRegisterFieldRoundTrips:
    @pytest.mark.parametrize("register_id", ["r0", "user:42", "キー"])
    def test_core_messages(self, wtuple, register_id):
        messages = [
            Pw(ts=3, pw=wtuple.tsval, w=wtuple, register_id=register_id),
            W(ts=3, pw=wtuple.tsval, w=wtuple, register_id=register_id),
            PwAck(ts=3, object_index=1, tsr=(0, 2),
                  register_id=register_id),
            WriteAck(ts=3, object_index=2, register_id=register_id),
            ReadRequest(round_index=1, tsr=5, reader_index=0,
                        register_id=register_id),
            ReadAck(round_index=2, tsr=6, object_index=0, pw=wtuple.tsval,
                    w=wtuple, register_id=register_id),
            HistoryReadAck(round_index=1, tsr=7, object_index=3,
                           history={3: HistoryEntry(pw=wtuple.tsval,
                                                    w=wtuple)},
                           register_id=register_id),
        ]
        for message in messages:
            decoded = roundtrip(message)
            assert decoded == message
            assert decoded.register_id == register_id
            assert register_of(decoded) == register_id

    def test_extension_messages(self, wtuple):
        messages = [
            AbdStore(tsval=wtuple.tsval, nonce=9, register_id="k1"),
            AbdStoreAck(nonce=9, ts=3, register_id="k1"),
            AbdQuery(nonce=2, register_id="k2"),
            AbdQueryAck(nonce=2, tsval=wtuple.tsval, register_id="k2"),
            WriteBack(c=wtuple, nonce=4, reader_index=1, register_id="k3"),
            WriteBackAck(nonce=4, object_index=0, register_id="k3"),
        ]
        for message in messages:
            assert roundtrip(message) == message

    def test_tag_returning_read_frames_keep_tags(self, wtuple):
        """The frames a tag-returning read rides on round-trip their
        MWMR tags exactly -- the observed tag a read reports (and a
        snapshot cut records) comes entirely out of these fields; there
        is no extra wire frame."""
        tagged = TimestampValue(3, "v3", wid=2)
        messages = [
            # Suffix request anchored at a multi-writer tag.
            ReadRequest(round_index=1, tsr=5, reader_index=1,
                        from_ts=WriterTag(4, 2), register_id="snap:k"),
            # Safe-protocol ack: the tag lives in the pw pair.
            ReadAck(round_index=2, tsr=6, object_index=0, pw=tagged,
                    w=wtuple, register_id="snap:k"),
            # Regular-protocol ack: tags key the history mapping.
            HistoryReadAck(round_index=2, tsr=7, object_index=3,
                           history={WriterTag(3, 2): HistoryEntry(
                               pw=tagged, w=None)},
                           register_id="snap:k"),
            # The discovery ack of the MWMR write path.
            TagQueryAck(nonce=11, object_index=2, epoch=9, wid=3,
                        register_id="snap:k"),
        ]
        for message in messages:
            decoded = roundtrip(message)
            assert decoded == message
        decoded_request = roundtrip(messages[0])
        assert decoded_request.from_ts == WriterTag(4, 2)
        decoded_ack = roundtrip(messages[1])
        assert decoded_ack.pw.tag == WriterTag(3, 2)
        decoded_history = roundtrip(messages[2])
        (key, entry), = decoded_history.history.items()
        assert key == WriterTag(3, 2) and type(key) is WriterTag
        assert entry.pw.tag == WriterTag(3, 2)
        assert roundtrip(messages[3]).tag == WriterTag(9, 3)

    def test_tagged_write_frames_keep_writer_ids(self, wtuple):
        for message in [
            Pw(ts=3, pw=wtuple.tsval, w=wtuple, register_id="k",
               wid=7),
            W(ts=3, pw=wtuple.tsval, w=wtuple, register_id="k", wid=7),
            PwAck(ts=3, object_index=1, tsr=(0, 2), register_id="k",
                  wid=7),
            WriteAck(ts=3, object_index=2, register_id="k", wid=7),
        ]:
            decoded = roundtrip(message)
            assert decoded == message
            assert decoded.wid == 7

    def test_legacy_frames_decode_to_default_register(self):
        # A frame written before the register field existed has no "r" key.
        import json
        wire = encode_message(WriteAck(ts=1, object_index=0))
        body = json.loads(wire)
        del body["r"]
        legacy = json.dumps(body, separators=(",", ":"), sort_keys=True)
        decoded = decode_message(legacy)
        assert decoded.register_id == DEFAULT_REGISTER

    def test_register_of_defaults_for_plain_payloads(self):
        assert register_of("probe") == DEFAULT_REGISTER
        assert register_of(object()) == DEFAULT_REGISTER


class TestBatchCodec:
    def test_batch_roundtrip(self, wtuple):
        batch = Batch(messages=(
            WriteAck(ts=1, object_index=0, register_id="a"),
            PwAck(ts=2, object_index=0, tsr=(0,), register_id="b"),
            ReadRequest(round_index=1, tsr=3, reader_index=0,
                        register_id="c"),
        ))
        decoded = roundtrip(batch)
        assert decoded == batch
        assert [register_of(part) for part in unbatch(decoded)] == \
            ["a", "b", "c"]

    def test_unbatch_of_plain_message_is_identity(self):
        message = WriteAck(ts=1, object_index=0)
        assert unbatch(message) == (message,)

    def test_batches_do_not_nest(self):
        inner = Batch(messages=(WriteAck(ts=1, object_index=0),))
        with pytest.raises(ValueError):
            Batch(messages=(inner,))

    def test_batch_size_accounts_for_parts(self, wtuple):
        parts = tuple(WriteAck(ts=n, object_index=0) for n in range(10))
        batch = Batch(messages=parts)
        assert batch.estimated_size() >= sum(p.estimated_size()
                                             for p in parts)

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(TransportError):
            decode_message('{"__kind":"Nope"}')
