"""Chaos harness: strategies, schedules, injection, exploration, shrinking.

The acceptance-critical checks live here:

* **Determinism** -- the same ``(seed, scenario)`` pair produces a
  bit-identical post-run state fingerprint across two runs
  (``explore._fingerprint`` over automata, pending ops and in-transit
  messages);
* **Bug finding** -- a deliberately planted protocol mutant (a fast
  reader that accepts a single ack as a quorum) is found by the seeded
  explorer, shrunk to a minimal reproducer (well under the 5-event
  bound), and the serialized reproducer replays to the same checker
  violation and fingerprint;
* **Verdict counters** -- partition blocks, adversarial drops and
  per-strategy intercept counts surface in run verdicts;
* **Crash-during-reconfig** -- the named service-tier scenario kills a
  replica mid ``ReconfigCoordinator`` handoff and stays gated on
  ``check_mwmr_atomicity`` + ``check_snapshot_consistency``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import byzantine as byz
from repro.chaos import (SCENARIOS, ChaosScenario, FaultEvent, FaultInjector,
                         FaultSchedule, WorkloadOp, build_strategy,
                         derive_seed, explore, format_pid, generate_schedule,
                         get_scenario, parse_pid, replay_reproducer,
                         run_chaos, run_crash_during_reconfig, run_seed,
                         save_reproducer, shrink, spec_of, strategy_names,
                         validate_schedule)
from repro.chaos.explorer import load_reproducer, reproducer_dict
from repro.chaos.strategies import registered_wrapper_names
from repro.config import SystemConfig
from repro.core.lower_bound import FastReadProtocol
from repro.errors import ConfigurationError
from repro.sim.schedulers import RandomScheduler
from repro.spec import checkers
from repro.system import StorageSystem
from repro.types import obj, reader


# ---------------------------------------------------------------------------
# Seeds
# ---------------------------------------------------------------------------


class TestSeeds:
    @given(st.integers(min_value=0, max_value=2 ** 62), st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_derivation_is_deterministic_and_positive(self, master, label):
        a = derive_seed(master, label)
        b = derive_seed(master, label)
        assert a == b
        assert 0 <= a < 2 ** 63

    def test_sibling_labels_get_independent_streams(self):
        seeds = {derive_seed(7, "scheduler"), derive_seed(7, "delay"),
                 derive_seed(7, "strategy", 0), derive_seed(7, "strategy", 1),
                 derive_seed(8, "scheduler")}
        assert len(seeds) == 5


# ---------------------------------------------------------------------------
# Strategy library
# ---------------------------------------------------------------------------


def _honest(config=None):
    from repro.core.safe import SafeStorageProtocol
    config = config or SystemConfig.optimal(t=1, b=1, num_readers=2)
    return SafeStorageProtocol().make_objects(config)[0], config


class TestStrategies:
    def test_registry_covers_every_adversary_wrapper(self):
        """The lint contract: no wrapper class escapes the registry."""
        shipped = {
            name for name in dir(byz)
            if isinstance(getattr(byz, name), type)
            and issubclass(getattr(byz, name), byz.ByzantineWrapper)
        }
        assert shipped <= set(registered_wrapper_names())

    def test_build_by_name_and_by_spec(self):
        inner, config = _honest()
        assert isinstance(build_strategy("silent")(inner, config),
                          byz.MuteByzantine)
        forged = build_strategy(spec_of("forger", ts_boost=7))(inner, config)
        assert isinstance(forged, byz.ValueForger)
        assert forged.ts_boost == 7

    def test_unknown_strategy_raises(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            build_strategy("nope")

    def test_after_step_is_honest_then_corrupt(self):
        from repro.messages import ReadRequest
        inner, config = _honest()
        wrapped = build_strategy(
            spec_of("after-step", after=2, strategy="silent"))(inner, config)

        def ask(tsr):
            return wrapped.on_message(
                reader(0), ReadRequest(round_index=1, tsr=tsr, reader_index=0))

        assert ask(1) and ask(2)     # honest replies pre-threshold
        assert ask(3) == []          # mute afterwards

    def test_probabilistic_is_seed_deterministic(self):
        from repro.messages import ReadRequest

        def run_once(seed):
            inner, config = _honest()
            wrapped = build_strategy(
                spec_of("probabilistic", p=0.5, strategy="silent"),
                seed=seed)(inner, config)
            return [bool(wrapped.on_message(
                reader(0), ReadRequest(round_index=1, tsr=t, reader_index=0)))
                for t in range(1, 13)]

        assert run_once(3) == run_once(3)
        assert run_once(3) != run_once(4)  # astronomically unlikely to tie

    def test_every_registered_strategy_builds(self):
        inner, config = _honest()
        for name in strategy_names():
            if name == "sequence":
                spec = spec_of("sequence", stages=[
                    {"after": 0}, {"after": 3, "strategy": "silent"}])
            else:
                spec = name
            automaton = build_strategy(spec, seed=11)(inner, config)
            assert automaton.object_index == inner.object_index


# ---------------------------------------------------------------------------
# Schedule DSL
# ---------------------------------------------------------------------------


class TestSchedule:
    def test_pid_round_trip(self):
        for text in ("s1", "s4", "r1", "r2", "w", "w2"):
            assert format_pid(parse_pid(text)) == text
        with pytest.raises(ConfigurationError):
            parse_pid("x9")

    def test_json_round_trip(self):
        schedule = FaultSchedule(seed=5, scenario="swmr-regular", events=(
            FaultEvent(3, "partition", {
                "groups": [["s1"], ["s2", "s3", "s4", "w", "r1"]],
                "tag": "cut"}),
            FaultEvent(20, "heal", {"tag": "cut"}),
            FaultEvent(9, "corrupt", {"object": 1, "strategy": "silent"}),
        ))
        back = FaultSchedule.from_json(schedule.to_json())
        assert back == schedule
        # Events store sorted by step regardless of construction order.
        assert [e.at_step for e in back.events] == [3, 9, 20]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent(0, "meteor", {})

    def test_validate_flags_budget_violations(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        schedule = FaultSchedule(seed=0, events=(
            FaultEvent(0, "corrupt", {"object": 0, "strategy": "silent"}),
            FaultEvent(1, "crash", {"object": 1}),
            FaultEvent(2, "crash", {"object": 2}),
        ))
        problems = validate_schedule(schedule, config)
        assert any("exceed" in p for p in problems)
        assert validate_schedule(FaultSchedule(seed=0), config) == []


# ---------------------------------------------------------------------------
# Harness: named scenarios, determinism, counters
# ---------------------------------------------------------------------------


class TestHarness:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_named_scenarios_absorb_generated_chaos(self, name):
        scenario = get_scenario(name)
        for seed in range(3):
            _, verdict = run_seed(scenario, seed)
            assert verdict.ok, verdict.violations()

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_fingerprint(self, name):
        """Acceptance: (seed, scenario) -> bit-identical state, twice."""
        scenario = get_scenario(name)
        for seed in (0, 5):
            schedule_a, verdict_a = run_seed(scenario, seed)
            schedule_b, verdict_b = run_seed(scenario, seed)
            assert schedule_a == schedule_b
            assert verdict_a.fingerprint == verdict_b.fingerprint
            assert verdict_a.counters == verdict_b.counters

    def test_fault_counters_surface_in_verdict(self):
        scenario = get_scenario("swmr-regular")
        schedule = FaultSchedule(seed=1, scenario=scenario.name, events=(
            FaultEvent(1, "corrupt", {"object": 1, "strategy": "silent"}),
            FaultEvent(2, "partition", {
                "groups": [["s1"], ["s2", "s3", "s4", "w", "r1", "r2"]],
                "tag": "cut"}),
            FaultEvent(12, "drop", {"object": 1}),
            FaultEvent(30, "heal", {"tag": "cut"}),
        ))
        verdict = run_chaos(scenario, schedule)
        assert verdict.ok, verdict.violations()
        counters = verdict.counters
        assert counters["events_applied"] == 4
        assert counters["partition_blocks"] > 0
        intercepts = counters["byzantine_intercepts"]
        assert intercepts["s2:MuteByzantine"] > 0
        assert counters["adversarial_drops"] >= 0
        assert counters["messages_delivered"] > 0

    def test_restore_lifts_a_crash_and_amnesia_costs_budget(self):
        scenario = get_scenario("swmr-regular")
        schedule = FaultSchedule(seed=2, scenario=scenario.name, events=(
            FaultEvent(1, "crash", {"object": 0}),
            FaultEvent(15, "restore", {"object": 0, "amnesia": True}),
            # b=1 is now spent on the amnesiac restart: a further corrupt
            # must be skipped, not applied.
            FaultEvent(20, "corrupt", {"object": 2, "strategy": "forger"}),
        ))
        verdict = run_chaos(scenario, schedule)
        assert verdict.ok, verdict.violations()
        assert verdict.counters["events_restore"] == 1
        assert verdict.counters["events_skipped"] == 1
        assert "s1:amnesiac-restart" in verdict.counters[
            "byzantine_intercepts"]

    def test_injector_skips_are_deterministic_data(self):
        scenario = get_scenario("swmr-regular")
        system = scenario.build(0)
        schedule = FaultSchedule(seed=0, events=(
            FaultEvent(0, "corrupt", {"object": 0, "strategy": "silent"}),
            FaultEvent(0, "corrupt", {"object": 1, "strategy": "silent"}),
        ))
        injector = FaultInjector(system, schedule)
        injector.apply_due(0)
        assert len(injector.applied) == 1
        assert len(injector.skipped) == 1
        assert "budget" in injector.skipped[0][1]


# ---------------------------------------------------------------------------
# Explorer: generation properties, the planted mutant, shrinking, replay
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=30, deadline=None)
def test_generated_schedules_are_deterministic_and_legal(seed):
    scenario = get_scenario("swmr-regular")
    schedule = generate_schedule(scenario, seed)
    again = generate_schedule(scenario, seed)
    assert schedule.to_json() == again.to_json()
    system = scenario.build(seed)
    assert validate_schedule(schedule, system.config) == []


class SabotagedFastRead(FastReadProtocol):
    """Planted mutant: accepts a single ack as a full read quorum.

    Test-only -- the chaos explorer must find the resulting safety
    violation and shrink the trigger to a minimal schedule.
    """

    name = "sabotaged-fast"

    def __init__(self):
        super().__init__("highest-ts")

    def make_read(self, reader_state):
        operation = super().make_read(reader_state)
        operation.config = SystemConfig.with_objects(
            t=reader_state.config.num_objects - 1, b=0,
            num_objects=reader_state.config.num_objects)
        return operation


def mutant_scenario() -> ChaosScenario:
    config = SystemConfig.optimal(t=1, b=1, num_readers=1)

    def build(seed: int) -> StorageSystem:
        return StorageSystem(
            SabotagedFastRead(), config,
            scheduler=RandomScheduler(seed=derive_seed(seed, "scheduler")),
            trace_enabled=False)

    return ChaosScenario(
        name="mutant-fast-read",
        description="planted bug: read quorum of one",
        build=build,
        workload=(WorkloadOp(0, "write", 0, "v0"),
                  WorkloadOp(25, "read", 0)),
        checkers=(checkers.check_safety,),
        event_kinds=("partition",),
        max_events=4,
        event_window=20,
    )


class TestMutantHunt:
    def test_explorer_finds_shrinks_and_replays_the_planted_bug(
            self, tmp_path, monkeypatch):
        scenario = mutant_scenario()

        # 1. A healthy protocol absorbs the same schedules: the explorer
        # only fires on the mutant, not on chaos noise.
        report = explore(scenario, range(10), stop_at_first_failure=True)
        failure = report.first_failure()
        assert failure is not None, "explorer missed the planted bug"
        schedule, verdict = failure
        assert verdict.failing_properties() == ["safety"]

        # 2. Shrinking: minimal reproducer, well under the 5-event bound.
        result = shrink(scenario, schedule, verdict)
        assert len(result.schedule.events) <= 5
        assert result.verdict.failing_properties() == ["safety"]

        # 3. The JSON reproducer replays to the same violation and the
        # same post-run state fingerprint.
        path = tmp_path / "reproducer.json"
        save_reproducer(str(path), result.schedule, result.verdict)
        data = load_reproducer(str(path))
        monkeypatch.setitem(SCENARIOS, scenario.name, mutant_scenario)
        replayed = replay_reproducer(data)
        assert replayed.failing_properties() == ["safety"]
        assert replayed.fingerprint == result.verdict.fingerprint
        assert replayed.violations() == result.verdict.violations()

    def test_reproducer_json_is_self_describing(self, tmp_path):
        scenario = mutant_scenario()
        report = explore(scenario, range(10), stop_at_first_failure=True)
        schedule, verdict = report.first_failure()
        data = reproducer_dict(schedule, verdict)
        text = json.dumps(data)  # must be pure JSON, no custom types
        parsed = json.loads(text)
        assert parsed["scenario"] == "mutant-fast-read"
        assert parsed["expected"]["failing_properties"] == ["safety"]


# ---------------------------------------------------------------------------
# Crash during reconfiguration (service tier)
# ---------------------------------------------------------------------------


class TestCrashDuringReconfig:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_handoff_survives_a_replica_crash(self, seed):
        verdict = run_crash_during_reconfig(seed)
        assert verdict.ok, verdict.violations()
        assert verdict.counters["killed"] == 1
        assert verdict.counters["keys_moved"] > 0
        checked = {check.property_name for check in verdict.checks}
        assert any("atomic" in name for name in checked)
        assert any("snapshot" in name for name in checked)

    def test_fault_choice_is_seed_stable(self):
        a = run_crash_during_reconfig(0)
        b = run_crash_during_reconfig(0)
        assert a.counters["kill_stage"] == b.counters["kill_stage"]
        assert a.counters["kill_replica"] == b.counters["kill_replica"]
