"""Shared fixtures for the test suite."""

import pytest

from repro.config import SystemConfig
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularStorageProtocol)
from repro.core.safe import SafeStorageProtocol
from repro.system import StorageSystem


@pytest.fixture
def small_config() -> SystemConfig:
    """t=1, b=1, S=4, one reader -- the smallest interesting system."""
    return SystemConfig.optimal(t=1, b=1, num_readers=1)


@pytest.fixture
def medium_config() -> SystemConfig:
    """t=2, b=1, S=6, two readers."""
    return SystemConfig.optimal(t=2, b=1, num_readers=2)


@pytest.fixture
def safe_system(medium_config) -> StorageSystem:
    return StorageSystem(SafeStorageProtocol(), medium_config)


@pytest.fixture
def regular_system(medium_config) -> StorageSystem:
    return StorageSystem(RegularStorageProtocol(), medium_config)


@pytest.fixture
def cached_system(medium_config) -> StorageSystem:
    return StorageSystem(CachedRegularStorageProtocol(), medium_config)


@pytest.fixture(params=["safe", "regular", "cached"])
def any_paper_system(request, medium_config) -> StorageSystem:
    """Parametrized over all three protocols of the paper."""
    protocol = {
        "safe": SafeStorageProtocol,
        "regular": RegularStorageProtocol,
        "cached": CachedRegularStorageProtocol,
    }[request.param]()
    return StorageSystem(protocol, medium_config)
