"""Unit tests for the safe storage object automaton (Figure 3)."""

import pytest

from repro.config import SystemConfig
from repro.core.safe.object import SafeObject
from repro.messages import Pw, PwAck, ReadAck, ReadRequest, W, WriteAck
from repro.types import (INITIAL_TSVAL, TimestampValue, TsrArray, WRITER,
                         WriteTuple, reader)


@pytest.fixture
def config():
    return SystemConfig.optimal(t=1, b=1, num_readers=2)


@pytest.fixture
def object_(config):
    return SafeObject(0, config)


def make_pair(ts, value="v"):
    return TimestampValue(ts, value)


def make_tuple(config, ts, value="v"):
    return WriteTuple(make_pair(ts, value),
                      TsrArray.empty(config.num_objects,
                                     config.num_readers))


class TestPwHandler:
    def test_fresh_pw_updates_and_acks(self, object_, config):
        w_prev = make_tuple(config, 0, None) if False else None
        pw = make_pair(1)
        tup = make_tuple(config, 1)
        replies = object_.on_message(WRITER, Pw(ts=1, pw=pw, w=tup))
        assert object_.ts == 1
        assert object_.pw == pw
        assert object_.w == tup
        [(receiver, ack)] = replies
        assert receiver == WRITER
        assert isinstance(ack, PwAck)
        assert ack.tsr == (0, 0)

    def test_stale_pw_ignored_silently(self, object_, config):
        object_.on_message(WRITER, Pw(1, make_pair(1), make_tuple(config, 1)))
        replies = object_.on_message(
            WRITER, Pw(1, make_pair(1, "other"), make_tuple(config, 1)))
        assert replies == []  # guard is strict: ts' > ts

    def test_pw_ack_reports_reader_timestamps(self, object_, config):
        object_.on_message(reader(1), ReadRequest(1, 5, reader_index=1))
        [(_, ack)] = object_.on_message(
            WRITER, Pw(1, make_pair(1), make_tuple(config, 1)))
        assert ack.tsr == (0, 5)


class TestWHandler:
    def test_w_accepts_equal_timestamp(self, object_, config):
        object_.on_message(WRITER, Pw(1, make_pair(1), make_tuple(config, 1)))
        replies = object_.on_message(
            WRITER, W(1, make_pair(1), make_tuple(config, 1)))
        assert len(replies) == 1
        assert isinstance(replies[0][1], WriteAck)

    def test_w_rejects_older_timestamp(self, object_, config):
        object_.on_message(WRITER, Pw(2, make_pair(2), make_tuple(config, 2)))
        replies = object_.on_message(
            WRITER, W(1, make_pair(1), make_tuple(config, 1)))
        assert replies == []
        assert object_.ts == 2

    def test_out_of_order_pw_after_w(self, object_, config):
        """W of write k+1 arriving before PW of write k: PW must not
        regress the state."""
        object_.on_message(WRITER, W(2, make_pair(2, "new"),
                                     make_tuple(config, 2, "new")))
        replies = object_.on_message(
            WRITER, Pw(1, make_pair(1, "old"), make_tuple(config, 1, "old")))
        assert replies == []
        assert object_.pw.value == "new"


class TestReadHandler:
    def test_fresh_read_updates_tsr_and_acks(self, object_):
        [(receiver, ack)] = object_.on_message(
            reader(0), ReadRequest(1, 3, reader_index=0))
        assert isinstance(ack, ReadAck)
        assert ack.tsr == 3
        assert object_.tsr[0] == 3
        assert ack.pw == INITIAL_TSVAL

    def test_stale_read_request_ignored(self, object_):
        object_.on_message(reader(0), ReadRequest(1, 3, reader_index=0))
        assert object_.on_message(reader(0),
                                  ReadRequest(1, 3, reader_index=0)) == []
        assert object_.on_message(reader(0),
                                  ReadRequest(1, 2, reader_index=0)) == []

    def test_readers_tracked_independently(self, object_):
        object_.on_message(reader(0), ReadRequest(1, 3, reader_index=0))
        replies = object_.on_message(reader(1),
                                     ReadRequest(1, 1, reader_index=1))
        assert len(replies) == 1
        assert object_.tsr == [3, 1]

    def test_out_of_range_reader_ignored(self, object_):
        assert object_.on_message(reader(9),
                                  ReadRequest(1, 1, reader_index=9)) == []

    def test_ack_reflects_current_write_state(self, object_, config):
        object_.on_message(WRITER, Pw(1, make_pair(1, "x"),
                                      make_tuple(config, 1, "x")))
        [(_, ack)] = object_.on_message(reader(0),
                                        ReadRequest(1, 1, reader_index=0))
        assert ack.pw.value == "x"


class TestRobustness:
    def test_unknown_message_ignored(self, object_):
        assert object_.on_message(WRITER, "garbage") == []

    def test_snapshot_restore_roundtrip(self, object_, config):
        object_.on_message(WRITER, Pw(1, make_pair(1), make_tuple(config, 1)))
        snapshot = object_.snapshot_state()
        object_.on_message(WRITER, Pw(2, make_pair(2, "y"),
                                      make_tuple(config, 2, "y")))
        object_.restore_state(snapshot)
        assert object_.ts == 1
        assert object_.pw.value == "v"

    def test_describe_state_mentions_fields(self, object_):
        text = object_.describe_state()
        assert "ts=" in text and "tsr=" in text
