"""Tests for the Byzantine behaviour library and fault plans."""

import pytest

from repro.adversary import (FaultPlan, adversarial_suite,
                             all_fault_assignments, forger, garbage,
                             max_byzantine, max_crashes, mute, no_faults,
                             random_plan, stale, tsr_inflater)
from repro.adversary.byzantine import (MuteByzantine, StaleReplier, TwoFaced,
                                       TsrInflater, ValueForger)
from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.core.safe.object import SafeObject
from repro.errors import ConfigurationError
from repro.messages import Pw, ReadRequest, W
from repro.system import StorageSystem
from repro.types import (TimestampValue, TsrArray, WRITER, WriteTuple, obj,
                         reader)


@pytest.fixture
def config():
    return SystemConfig.optimal(t=2, b=1, num_readers=1)


def fresh_object(config):
    return SafeObject(0, config)


def pw_message(config, ts, value="v"):
    pair = TimestampValue(ts, value)
    tup = WriteTuple(pair, TsrArray.empty(config.num_objects,
                                          config.num_readers))
    return Pw(ts=ts, pw=pair, w=tup)


class TestStrategies:
    def test_mute_swallows_everything(self, config):
        byz = MuteByzantine(fresh_object(config))
        assert byz.on_message(WRITER, pw_message(config, 1)) == []
        assert byz.on_message(reader(0), ReadRequest(1, 1, 0)) == []

    def test_stale_replier_denies_writes(self, config):
        byz = StaleReplier(fresh_object(config))
        assert byz.on_message(WRITER, pw_message(config, 1)) == []
        [(_, ack)] = byz.on_message(reader(0), ReadRequest(1, 1, 0))
        assert ack.pw.ts == 0  # still the initial state

    def test_two_faced_acks_writes_but_serves_stale(self, config):
        byz = TwoFaced(fresh_object(config))
        replies = byz.on_message(WRITER, pw_message(config, 1))
        assert len(replies) == 1  # the writer sees a healthy ack
        [(_, ack)] = byz.on_message(reader(0), ReadRequest(1, 1, 0))
        assert ack.pw.ts == 0     # the reader sees the initial state

    def test_value_forger_substitutes_payload(self, config):
        byz = ValueForger(fresh_object(config), config,
                          forged_value="EVIL", ts_boost=100)
        byz.on_message(WRITER, pw_message(config, 1))
        [(_, ack)] = byz.on_message(reader(0), ReadRequest(1, 1, 0))
        assert ack.pw.value == "EVIL"
        assert ack.pw.ts >= 100

    def test_tsr_inflater_plants_accusations(self, config):
        byz = TsrInflater(fresh_object(config), config, accused=[2])
        [(_, ack)] = byz.on_message(reader(0), ReadRequest(1, 1, 0))
        assert ack.w.tsrarray.get(2, 0) == 10**6

    def test_byzantine_keeps_object_index(self, config):
        byz = ValueForger(fresh_object(config), config)
        assert byz.object_index == 0


class TestFaultPlans:
    def test_validation_rejects_over_budget_byzantine(self, config):
        plan = FaultPlan(byzantine={0: forger(), 1: forger()})
        with pytest.raises(ConfigurationError):
            plan.validate(config)

    def test_validation_rejects_over_budget_total(self, config):
        plan = FaultPlan(crash_indices=[0, 1], byzantine={2: forger()})
        with pytest.raises(ConfigurationError):
            plan.validate(config)

    def test_validation_rejects_double_assignment(self, config):
        plan = FaultPlan(crash_indices=[0], byzantine={0: forger()})
        with pytest.raises(ConfigurationError):
            plan.validate(config)

    def test_validation_rejects_out_of_range(self, config):
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_indices=[99]).validate(config)

    def test_apply_installs_faults(self, config):
        system = StorageSystem(SafeStorageProtocol(), config)
        plan = FaultPlan(crash_indices=[1], byzantine={0: mute()})
        plan.apply(system)
        assert obj(1) in system.kernel.crashed_processes()
        assert obj(0) in system.kernel.byzantine_processes()

    def test_max_plans(self, config):
        assert len(max_crashes(config).crash_indices) == config.t
        plan = max_byzantine(config)
        assert len(plan.byzantine) == config.b
        assert len(plan.crash_indices) == config.t - config.b

    def test_adversarial_suite_is_legal(self, config):
        for plan in adversarial_suite(config):
            plan.validate(config)

    def test_random_plan_is_legal_and_seeded(self, config):
        a = random_plan(config, 7)
        b = random_plan(config, 7)
        a.validate(config)
        assert a.crash_indices == b.crash_indices
        assert set(a.byzantine) == set(b.byzantine)

    def test_all_fault_assignments_enumerates(self):
        config = SystemConfig.optimal(t=1, b=1)
        plans = list(all_fault_assignments(config, limit=100))
        # choose 1 Byzantine of 4, 0 crashes: exactly 4 assignments
        assert len(plans) == 4
        for plan in plans:
            plan.validate(config)

    def test_describe_no_faults(self):
        assert no_faults().describe() == "fault-free"
