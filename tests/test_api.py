"""Client API: Cluster/Session, writer leases, retry policies, snapshots."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (Cluster, Consistency, RetryPolicy, Snapshot,
                       WriterLeaseAllocator)
from repro.config import SystemConfig
from repro.core.atomic import AtomicStorageProtocol
from repro.core.regular import CachedRegularStorageProtocol
from repro.core.safe import SafeStorageProtocol
from repro.errors import (ConsistencyError, FencedWriteError,
                          RetryExhaustedError, SnapshotContentionError,
                          TransportError, WriterLeaseExhaustedError)
from repro.service.reconfig import FenceOperation
from repro.spec.checkers import (check_mwmr_regularity,
                                 check_snapshot_consistency)
from repro.spec.histories import History, WRITE
from repro.types import TAG0, WriterTag, reader, writer


def run(coro):
    return asyncio.run(coro)


CONFIG = SystemConfig.optimal(t=1, b=1, num_readers=2)
MWMR = SystemConfig.optimal(t=1, b=1, num_readers=2, num_writers=4)


def make_cluster(config=CONFIG, **kwargs):
    kwargs.setdefault("num_shards", 2)
    return Cluster(CachedRegularStorageProtocol, config, **kwargs)


async def hard_fence(cluster, key):
    """Retire ``key`` at its current shard group, as a handoff would."""
    store = cluster.kv.store_for(key)
    operation = FenceOperation(store.config, key, hard=True)
    return await store.control_host().run(operation, 5.0)


async def lift_fence(cluster, key):
    store = cluster.kv.store_for(key)
    operation = FenceOperation(store.config, key, lift=True)
    await store.control_host().run(operation, 5.0)


# ---------------------------------------------------------------------------
# Writer leases
# ---------------------------------------------------------------------------


class TestWriterLeaseAllocator:
    def test_exclusive_until_released(self):
        pool = WriterLeaseAllocator(3)
        a, b, c = pool.acquire("a"), pool.acquire("b"), pool.acquire("c")
        assert sorted([a, b, c]) == [0, 1, 2]
        with pytest.raises(WriterLeaseExhaustedError):
            pool.acquire("d")
        pool.release(b)
        assert pool.acquire("e") == b  # lowest free index first
        with pytest.raises(TransportError):
            pool.release(b + 10)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=60))
    def test_never_double_leases(self, ops):
        """Property: no index is ever leased to two holders at once, and
        acquisition past the pool size always raises the typed error."""
        pool = WriterLeaseAllocator(3)
        leased = set()
        for op in ops:
            if op <= 2:  # acquire
                if len(leased) == pool.num_writers:
                    with pytest.raises(WriterLeaseExhaustedError):
                        pool.acquire()
                else:
                    index = pool.acquire()
                    assert index not in leased
                    assert 0 <= index < pool.num_writers
                    leased.add(index)
            elif leased:  # release one deterministically
                index = sorted(leased)[op % len(leased)]
                pool.release(index)
                leased.discard(index)
            assert set(pool.leased) == leased
            assert pool.available == pool.num_writers - len(leased)

    def test_sessions_lease_distinct_indices(self):
        async def scenario():
            async with make_cluster(MWMR) as cluster:
                sessions = [cluster.session() for _ in
                            range(MWMR.num_writers)]
                indices = {s.writer_index for s in sessions}
                assert indices == set(range(MWMR.num_writers))
                extra = cluster.session()
                with pytest.raises(WriterLeaseExhaustedError):
                    await extra.put("k", "v")
                # A read-only session never consumed a lease.
                assert not extra.writes_leased
                assert await extra.get("nope") is None
                # Closing releases; the identity is reusable.
                sessions[0].close()
                assert extra.writer_index == 0
        run(scenario())

    def test_close_is_idempotent_and_refuses_operations(self):
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session()
                await session.put("k", 1)
                session.close()
                session.close()
                with pytest.raises(TransportError):
                    await session.get("k")
                with pytest.raises(TransportError):
                    session.writer_index
        run(scenario())

    def test_close_defers_release_until_inflight_write_settles(self):
        """Closing a session mid-write must not hand its writer identity
        to another session while the write is still running."""
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session(retry=RetryPolicy.none())
                await session.put("k", 1)
                await hard_fence(cluster, "k")  # the next put will abort
                index = session.writer_index
                put = asyncio.create_task(session.put("k", 2))
                await asyncio.sleep(0)  # put is now in flight
                session.close()
                # Closed, but the identity is still held by the write.
                assert cluster._leases.holder_of(index) is session
                fresh = cluster.session()
                with pytest.raises(WriterLeaseExhaustedError):
                    fresh.writer_index
                with pytest.raises(FencedWriteError):
                    await put
                # Settled: the lease returned to the pool.
                assert cluster._leases.holder_of(index) is None
                assert fresh.writer_index == index
        run(scenario())

    def test_cluster_stop_closes_sessions(self):
        async def scenario():
            cluster = make_cluster()
            async with cluster:
                session = cluster.session()
                await session.put("k", 1)
            assert session.closed
            assert cluster.open_sessions == 0
        run(scenario())


# ---------------------------------------------------------------------------
# Consistency levels
# ---------------------------------------------------------------------------


class TestConsistency:
    def test_levels_are_ordered(self):
        assert Consistency.SAFE < Consistency.REGULAR < Consistency.ATOMIC

    def test_declaring_more_than_provided_fails(self):
        async def scenario():
            async with make_cluster() as cluster:  # regular protocol
                assert cluster.provides is Consistency.REGULAR
                cluster.session(Consistency.SAFE)
                cluster.session(Consistency.REGULAR)
                with pytest.raises(ConsistencyError):
                    cluster.session(Consistency.ATOMIC)
        run(scenario())

    def test_per_call_override_is_validated(self):
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session()
                await session.put("k", 1)
                assert await session.get(
                    "k", consistency=Consistency.SAFE) == 1
                with pytest.raises(ConsistencyError):
                    await session.get("k",
                                      consistency=Consistency.ATOMIC)
        run(scenario())

    def test_atomic_protocol_allows_atomic_sessions(self):
        async def scenario():
            cluster = Cluster(AtomicStorageProtocol, CONFIG, num_shards=2)
            async with cluster:
                session = cluster.session(Consistency.ATOMIC)
                await session.put("k", "v")
                assert await session.get("k") == "v"
        run(scenario())

    def test_safe_protocol_caps_default_and_refuses_snapshots(self):
        async def scenario():
            cluster = Cluster(SafeStorageProtocol, CONFIG, num_shards=2)
            async with cluster:
                session = cluster.session()
                assert session.consistency is Consistency.SAFE
                await session.put("k", "v")
                with pytest.raises(ConsistencyError):
                    await session.snapshot(["k"])
        run(scenario())


# ---------------------------------------------------------------------------
# Retry policies
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_schedule_is_capped(self):
        policy = RetryPolicy(backoff=0.01, multiplier=2.0,
                             max_backoff=0.03)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == \
            [0.01, 0.02, 0.03, 0.03]

    def test_none_fails_fast_on_fence(self):
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session(retry=RetryPolicy.none())
                await session.put("k", 1)
                await hard_fence(cluster, "k")
                with pytest.raises(FencedWriteError):
                    await session.put("k", 2)
        run(scenario())

    def test_exhaustion_raises_typed_error_with_cause(self):
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session(
                    retry=RetryPolicy(attempts=3, backoff=0.0))
                await session.put("k", 1)
                await hard_fence(cluster, "k")
                with pytest.raises(RetryExhaustedError) as excinfo:
                    await session.put("k", 2)
                assert excinfo.value.attempts == 3
                assert isinstance(excinfo.value.last_error,
                                  FencedWriteError)
        run(scenario())

    def test_fence_absorbed_once_routing_recovers(self):
        """A fence that clears mid-retry (as a reconfiguration flip does)
        is absorbed: the session's put succeeds without the caller ever
        seeing FencedWriteError."""
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session(
                    retry=RetryPolicy(attempts=10, backoff=0.001))
                await session.put("k", 1)
                await hard_fence(cluster, "k")

                async def clear():
                    await asyncio.sleep(0.003)
                    await lift_fence(cluster, "k")

                clearer = asyncio.create_task(clear())
                await session.put("k", 2)
                await clearer
                assert await session.get("k") == 2
        run(scenario())

    def test_backpressure_absorbed(self):
        async def scenario():
            async with make_cluster(
                    max_pending_per_host=1) as cluster:
                session = cluster.session()
                keys = [f"k:{n}" for n in range(6)]
                await asyncio.gather(*(session.put(key, key)
                                       for key in keys))
                for key in keys:
                    assert await session.get(key) == key
        run(scenario())

    def test_busy_register_absorbed(self):
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session()
                await session.put("hot", "v")
                values = await asyncio.gather(
                    session.get("hot"), session.get("hot"),
                    session.get("hot"))
                assert values == ["v", "v", "v"]
        run(scenario())


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


class TestSnapshot:
    def test_cut_over_quiet_keys(self):
        async def scenario():
            async with make_cluster(record_history=True) as cluster:
                session = cluster.session()
                await session.put_many({f"k:{n}": n for n in range(8)})
                snap = await session.snapshot([f"k:{n}" for n in range(8)]
                                              + ["missing"])
                assert isinstance(snap, Snapshot)
                assert snap.rounds == 2  # propose + certify
                assert snap["missing"] is None
                assert snap.tags["missing"] == TAG0
                for n in range(8):
                    assert snap[f"k:{n}"] == n
                    assert snap.tags[f"k:{n}"] == WriterTag(1, 0)
                assert cluster.admin().check().ok
        run(scenario())

    def test_defaults_to_known_keys_and_context_manager_form(self):
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session()
                await session.put_many({"a": 1, "b": 2})
                async with session.snapshot() as snap:
                    assert dict(snap) == {"a": 1, "b": 2}
        run(scenario())

    def test_empty_snapshot_is_trivial(self):
        async def scenario():
            async with make_cluster(record_history=True) as cluster:
                session = cluster.session()
                snap = await session.snapshot([])
                assert len(snap) == 0 and snap.rounds == 0
                assert cluster.admin().check().ok
        run(scenario())

    def test_contention_raises_after_bounded_rounds(self):
        """If some key's tag moves between every pair of collects the
        snapshot gives up with the typed error naming the movers."""
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session()
                await session.put_many({"hot": 0, "cold": 0})
                epoch = [0]
                real = cluster.kv.get_many_tagged

                async def always_moving(keys, **kwargs):
                    collect = await real(keys, **kwargs)
                    epoch[0] += 1
                    collect["hot"] = (epoch[0], WriterTag(epoch[0], 0))
                    return collect

                cluster.kv.get_many_tagged = always_moving
                with pytest.raises(SnapshotContentionError) as excinfo:
                    await session.snapshot(["hot", "cold"], max_rounds=4)
                assert excinfo.value.rounds == 4
                assert excinfo.value.unstable_keys == ["hot"]
        run(scenario())

    def test_snapshot_needs_two_collects(self):
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session()
                with pytest.raises(ValueError):
                    session.snapshot(["k"], max_rounds=1)
        run(scenario())

    def test_consistent_under_multi_writer_load(self):
        """Concurrent writers race on keys spanning both shard groups;
        every certified snapshot must pass the cut checker."""
        async def scenario():
            async with make_cluster(MWMR, record_history=True,
                                    seed=11) as cluster:
                keys = [f"k:{n}" for n in range(10)]
                assert len({cluster.kv.shard_for(k) for k in keys}) == 2
                writers = [cluster.session() for _ in range(3)]
                snapper = cluster.session()
                await writers[0].put_many({key: "init" for key in keys})
                done = asyncio.Event()

                async def write_load(session, w):
                    i = 0
                    while not done.is_set():
                        await session.put(keys[(i * 3 + w) % len(keys)],
                                          f"w{w}-{i}")
                        i += 1
                        # Paced load: continuous back-to-back writes on
                        # every key would leave no quiet window for any
                        # snapshot to certify a cut in.
                        await asyncio.sleep(0.002)

                tasks = [asyncio.create_task(write_load(s, w))
                         for w, s in enumerate(writers)]
                taken = contended = 0
                for _ in range(12):
                    try:
                        snap = await snapper.snapshot(keys,
                                                      max_rounds=12)
                        taken += 1
                        assert set(snap) == set(keys)
                    except SnapshotContentionError:
                        contended += 1
                done.set()
                await asyncio.gather(*tasks)
                assert taken >= 1, f"all {contended} snapshots contended"
                result = cluster.admin().check(check_mwmr_regularity)
                assert result.ok, result.violations
                assert len(cluster.history.snapshots()) == taken
        run(scenario())

    def test_snapshot_spans_reconfiguration(self):
        """Acceptance: snapshots stay consistent while an add_shard
        migration is in flight; the session retry policy absorbs the
        fences the migration installs."""
        async def scenario():
            async with make_cluster(MWMR, record_history=True,
                                    seed=23) as cluster:
                keys = [f"k:{n}" for n in range(12)]
                assert len({cluster.kv.shard_for(k) for k in keys}) == 2
                writer_s = cluster.session(
                    retry=RetryPolicy(attempts=50, backoff=0.001))
                snapper = cluster.session(
                    retry=RetryPolicy(attempts=50, backoff=0.001))
                await writer_s.put_many({key: "init" for key in keys})
                done = asyncio.Event()

                async def write_load():
                    i = 0
                    while not done.is_set():
                        # The retry policy must absorb every fence the
                        # migration installs: no FencedWriteError may
                        # reach this call site.
                        await writer_s.put(keys[i % len(keys)],
                                           f"v-{i}")
                        i += 1
                        await asyncio.sleep(0.002)  # paced, see above
                    return i

                async def snapshot_load():
                    taken = 0
                    while not done.is_set():
                        try:
                            snap = await snapper.snapshot(
                                keys, max_rounds=16)
                            taken += 1
                            assert set(snap) == set(keys)
                        except SnapshotContentionError:
                            pass
                        await asyncio.sleep(0)
                    return taken

                loader = asyncio.create_task(write_load())
                snaps = asyncio.create_task(snapshot_load())
                report = await cluster.admin().add_shard()
                await asyncio.sleep(0.01)
                done.set()
                writes, taken = await loader, await snaps
                assert report.moved, "migration moved no key"
                assert writes > 0 and taken > 0
                result = cluster.admin().check(check_mwmr_regularity)
                assert result.ok, result.violations
                snapshots = cluster.history.snapshots()
                assert len(snapshots) >= taken
        run(scenario())


# ---------------------------------------------------------------------------
# The snapshot cut checker itself
# ---------------------------------------------------------------------------


def record_write(history, op_id, register, value, tag,
                 client=writer(0)):
    history.record_invocation(op_id, client, WRITE, argument=value,
                              register=register)
    history.record_completion(op_id, result=None, tag=tag)


class TestSnapshotChecker:
    def test_accepts_consistent_cut(self):
        h = History()
        record_write(h, 1, "a", "a1", WriterTag(1, 0))
        begin = h.mark()
        record_write(h, 2, "b", "b1", WriterTag(1, 1), client=writer(1))
        h.record_snapshot(begin,
                          {"a": WriterTag(1, 0), "b": WriterTag(1, 1)},
                          {"a": "a1", "b": "b1"})
        assert check_snapshot_consistency(h).ok

    def test_rejects_stale_key(self):
        h = History()
        record_write(h, 1, "a", "a1", WriterTag(1, 0))
        begin = h.mark()  # the write completed before this
        h.record_snapshot(begin, {"a": TAG0}, {"a": None})
        result = check_snapshot_consistency(h)
        assert not result.ok and "stale" in result.violations[0]

    def test_rejects_torn_cut_across_registers(self):
        """The snapshot reflects w2 but excludes w1 although w1 completed
        before w2 was even invoked -- not a consistent cut."""
        h = History()
        begin = h.mark()  # snapshot starts before either write
        record_write(h, 1, "a", "a1", WriterTag(5, 0))           # w1
        record_write(h, 2, "b", "b1", WriterTag(1, 1),           # w2
                     client=writer(1))
        h.record_snapshot(begin,
                          {"a": TAG0, "b": WriterTag(1, 1)},
                          {"a": None, "b": "b1"})
        result = check_snapshot_consistency(h)
        assert not result.ok
        assert "not a consistent cut" in "".join(result.violations)

    def test_rejects_uninstalled_tag_and_wrong_value(self):
        h = History()
        record_write(h, 1, "a", "a1", WriterTag(1, 0))
        begin = h.mark()
        h.record_snapshot(begin, {"a": WriterTag(9, 9)}, {"a": "a1"})
        assert not check_snapshot_consistency(h).ok

        h2 = History()
        begin = h2.mark()
        record_write(h2, 1, "a", "a1", WriterTag(1, 0))
        h2.record_snapshot(begin, {"a": WriterTag(1, 0)},
                           {"a": "forged"})
        result = check_snapshot_consistency(h2)
        assert not result.ok and "installed" in result.violations[0]

    def test_concurrent_write_may_be_included_or_excluded(self):
        h = History()
        begin = h.mark()
        # Invoked but not completed: genuinely concurrent with the cut.
        h.record_invocation(1, writer(0), WRITE, argument="a1",
                            register="a")
        h.record_snapshot(begin, {"a": TAG0}, {"a": None})
        assert check_snapshot_consistency(h).ok

    def test_record_keeping(self):
        h = History()
        begin = h.mark()
        h.record_snapshot(begin, {"a": TAG0}, client=reader(1))
        (snap,) = h.snapshots()
        assert snap.snapshot_id == 1
        assert snap.client == reader(1)
        assert snap.invoked_seq < snap.completed_seq
        assert "SNAPSHOT#1" in snap.describe()


# ---------------------------------------------------------------------------
# Tag-returning reads (service tier)
# ---------------------------------------------------------------------------


class TestTaggedReads:
    def test_get_tagged_reports_version(self):
        async def scenario():
            async with make_cluster() as cluster:
                kv = cluster.kv
                value, tag = await kv.get_tagged("k")
                assert value is None and tag == TAG0
                await kv.put("k", "v1")
                value, tag = await kv.get_tagged("k")
                assert (value, tag) == ("v1", WriterTag(1, 0))
                await kv.put("k", "v2")
                value, tag = await kv.get_tagged("k")
                assert (value, tag) == ("v2", WriterTag(2, 0))
        run(scenario())

    def test_get_many_tagged_caller_order_across_shards(self):
        async def scenario():
            async with make_cluster() as cluster:
                kv = cluster.kv
                keys = [f"k:{n}" for n in range(12)]
                assert len({kv.shard_for(k) for k in keys}) == 2
                await kv.put_many({key: key.upper() for key in keys})
                tagged = await kv.get_many_tagged(reversed(keys))
                assert list(tagged) == list(reversed(keys))
                for key, (value, tag) in tagged.items():
                    assert value == key.upper()
                    assert tag == WriterTag(1, 0)
        run(scenario())

    def test_session_get_tagged(self):
        async def scenario():
            async with make_cluster() as cluster:
                session = cluster.session()
                await session.put("k", 7)
                assert await session.get_tagged("k") == \
                    (7, WriterTag(1, 0))
        run(scenario())
