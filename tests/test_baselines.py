"""Tests for the three baseline protocols (ABD, passive reader, auth)."""

import pytest

from repro.adversary import adversarial_suite, forger, max_byzantine
from repro.baselines import (AbdAtomicProtocol, AbdRegularProtocol,
                             AuthenticatedProtocol, PassiveReaderProtocol)
from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.sim import RandomScheduler
from repro.spec import (check_atomicity, check_regularity, check_safety)
from repro.spec.histories import READ
from repro.system import StorageSystem
from repro.types import BOTTOM, obj


class TestAbd:
    def test_rejects_byzantine_configs(self):
        config = SystemConfig.optimal(t=2, b=1)
        with pytest.raises(ConfigurationError, match="crash"):
            StorageSystem(AbdRegularProtocol(), config)

    def test_regular_read_one_round(self):
        config = SystemConfig.with_objects(t=2, b=0, num_objects=5)
        system = StorageSystem(AbdRegularProtocol(), config)
        system.write("v")
        handle = system.read_handle(0)
        assert handle.result == "v"
        assert handle.rounds_used == 1

    def test_atomic_read_writes_back(self):
        config = SystemConfig.with_objects(t=1, b=0, num_objects=3)
        system = StorageSystem(AbdAtomicProtocol(), config)
        system.write("v")
        handle = system.read_handle(0)
        assert handle.rounds_used == 2  # query + write-back

    def test_atomic_initial_read_skips_write_back(self):
        config = SystemConfig.with_objects(t=1, b=0, num_objects=3)
        system = StorageSystem(AbdAtomicProtocol(), config)
        handle = system.read_handle(0)
        assert handle.result is BOTTOM
        assert handle.rounds_used == 1

    def test_tolerates_t_crashes(self):
        config = SystemConfig.with_objects(t=2, b=0, num_objects=5)
        system = StorageSystem(AbdRegularProtocol(), config)
        system.write("v1")
        system.crash_object(0)
        system.crash_object(1)
        system.write("v2")
        assert system.read(0) == "v2"

    def test_atomicity_over_concurrent_runs(self):
        config = SystemConfig.with_objects(t=1, b=0, num_objects=3,
                                           num_readers=2)
        for seed in range(5):
            system = StorageSystem(AbdAtomicProtocol(), config,
                                   scheduler=RandomScheduler(seed))
            system.write("v1")
            w = system.invoke_write("v2")
            r0 = system.invoke_read(0)
            r1 = system.invoke_read(1)
            system.run_until_done(w, r0, r1)
            check_atomicity(system.history).assert_ok()


class TestPassiveReader:
    def test_fault_free_single_round(self):
        config = SystemConfig.optimal(t=2, b=1)
        system = StorageSystem(PassiveReaderProtocol(), config)
        system.write("v")
        handle = system.read_handle(0)
        assert handle.result == "v"
        assert handle.rounds_used == 1

    def test_objects_keep_no_reader_state(self):
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(PassiveReaderProtocol(), config)
        system.write("v")
        system.read(0)
        automaton = system.kernel.object_automaton(obj(0))
        assert not hasattr(automaton, "tsr")

    def test_forgery_costs_extra_rounds(self):
        """The b+1 shape of [1]: each forgery needs an elimination round."""
        config = SystemConfig.optimal(t=2, b=1)
        system = StorageSystem(PassiveReaderProtocol(), config)
        max_byzantine(config, forger()).apply(system)
        system.write("v")
        handle = system.read_handle(0)
        assert handle.result == "v"
        assert handle.rounds_used == config.b + 1

    def test_safety_under_adversarial_suite(self):
        config = SystemConfig.optimal(t=2, b=2)
        for plan in adversarial_suite(config):
            system = StorageSystem(PassiveReaderProtocol(), config)
            plan.apply(system)
            system.write("a")
            system.read(0)
            system.write("b")
            system.read(0)
            check_safety(system.history).assert_ok()

    def test_reads_do_not_touch_objects(self):
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(PassiveReaderProtocol(), config)
        system.write("v")
        before = [system.kernel.object_automaton(obj(i)).snapshot_state()
                  for i in range(config.num_objects)]
        system.read(0)
        after = [system.kernel.object_automaton(obj(i)).snapshot_state()
                 for i in range(config.num_objects)]
        assert before == after


class TestAuthenticated:
    def test_one_round_reads_and_writes(self):
        config = SystemConfig.optimal(t=2, b=2)
        system = StorageSystem(AuthenticatedProtocol(), config)
        w = system.write("v")
        r = system.read_handle(0)
        assert w.rounds_used == 1
        assert r.rounds_used == 1
        assert r.result == "v"

    def test_regularity_under_adversarial_suite(self):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        for plan in adversarial_suite(config):
            system = StorageSystem(AuthenticatedProtocol(), config)
            plan.apply(system)
            system.write("a")
            system.read(0)
            system.write("b")
            system.read(1)
            check_regularity(system.history).assert_ok()

    def test_forged_signatures_rejected(self):
        """A Byzantine object minting its own 'signed' value is ignored."""
        from repro.automata.base import ObjectAutomaton
        from repro.baselines.authenticated.protocol import (AuthQuery,
                                                            AuthQueryAck)
        from repro.crypto_sim import forge_attempt
        from repro.types import TimestampValue

        class SignatureForger(ObjectAutomaton):
            def on_message(self, sender, message):
                if isinstance(message, AuthQuery):
                    fake = forge_attempt(
                        "writer", TimestampValue(999, "FORGED"))
                    return [(sender, AuthQueryAck(nonce=message.nonce,
                                                  signed=fake))]
                return []

        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(AuthenticatedProtocol(), config)
        system.kernel.make_byzantine(obj(0), SignatureForger(0))
        system.write("genuine")
        handle = system.read_handle(0)
        assert handle.result == "genuine"
        assert handle.operation.rejected_forgeries >= 1

    def test_replayed_old_signature_is_still_regular(self):
        """Byzantine objects may replay old signed values; regularity
        survives because some correct quorum member has the newest one."""
        from repro.adversary import stale
        config = SystemConfig.optimal(t=1, b=1)
        system = StorageSystem(AuthenticatedProtocol(), config)
        system.write("v1")
        max_byzantine(config, stale()).apply(system)
        system.write("v2")
        assert system.read(0) == "v2"
