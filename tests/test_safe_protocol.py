"""Integration tests for the safe storage (Figures 2-4, Proposition 2).

These are the executable form of Theorem 1 (safety), Theorem 2 /
Lemmas 1-3 (wait-freedom) and Proposition 2 (2-round complexity).
"""

import pytest

from repro.adversary import (FaultPlan, adversarial_suite, forger,
                             max_byzantine, max_crashes, tsr_inflater)
from repro.adversary.byzantine import AckFlooder, Equivocator
from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.errors import ProtocolError, ResilienceError
from repro.sim import FifoScheduler, LifoScheduler, RandomScheduler
from repro.spec import (check_round_complexity, check_safety,
                        check_wait_freedom)
from repro.system import StorageSystem
from repro.types import BOTTOM, obj


def make_system(t=2, b=1, readers=2, scheduler=None):
    config = SystemConfig.optimal(t=t, b=b, num_readers=readers)
    return StorageSystem(SafeStorageProtocol(), config, scheduler=scheduler)


class TestSequentialSemantics:
    def test_initial_read_returns_bottom(self):
        system = make_system()
        assert system.read(0) is BOTTOM

    def test_read_your_write(self):
        system = make_system()
        system.write("v1")
        assert system.read(0) == "v1"
        assert system.read(1) == "v1"

    def test_reads_see_latest_write(self):
        system = make_system()
        for k in range(1, 6):
            system.write(f"v{k}")
            assert system.read(k % 2) == f"v{k}"

    def test_repeated_reads_without_writes(self):
        system = make_system()
        system.write("x")
        assert [system.read(0) for _ in range(3)] == ["x", "x", "x"]

    def test_write_returns_ok(self):
        system = make_system()
        assert system.write("v").result == "OK"

    def test_bottom_not_writable(self):
        system = make_system()
        with pytest.raises(ProtocolError):
            system.write(BOTTOM)


class TestRoundComplexity:
    def test_write_is_two_rounds(self):
        system = make_system()
        assert system.write("v").rounds_used == 2

    def test_read_is_two_rounds(self):
        system = make_system()
        system.write("v")
        assert system.read_handle(0).rounds_used == 2

    def test_rounds_invariant_under_faults(self):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        for plan in adversarial_suite(config):
            system = StorageSystem(SafeStorageProtocol(), config)
            plan.apply(system)
            system.write("a")
            system.read(0)
            system.write("b")
            system.read(1)
            check_round_complexity(system.history, max_read_rounds=2,
                                   max_write_rounds=2).assert_ok()


class TestResilienceGuard:
    def test_rejects_below_optimal(self):
        config = SystemConfig.with_objects(t=2, b=1, num_objects=5)
        with pytest.raises(ResilienceError):
            StorageSystem(SafeStorageProtocol(), config)

    def test_accepts_above_optimal(self):
        config = SystemConfig.with_objects(t=1, b=1, num_objects=6)
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("v")
        assert system.read(0) == "v"


class TestFaultTolerance:
    @pytest.mark.parametrize("seed", range(4))
    def test_safety_under_adversarial_suite(self, seed):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        for plan in adversarial_suite(config):
            system = StorageSystem(SafeStorageProtocol(), config,
                                   scheduler=RandomScheduler(seed))
            plan.apply(system)
            system.write("a")
            system.read(0)
            system.write("b")
            system.read(1)
            check_safety(system.history).assert_ok()

    def test_max_crashes_mid_run(self):
        system = make_system(t=2, b=1)
        system.write("before")
        system.crash_object(0)
        system.crash_object(3)
        system.write("after")
        assert system.read(0) == "after"

    def test_equivocating_object(self):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        system = StorageSystem(SafeStorageProtocol(), config)
        inner = system.kernel.object_automaton(obj(0))
        system.kernel.make_byzantine(obj(0), Equivocator(inner))
        system.write("v1")
        assert system.read(0) == "v1"  # even reader: honest state
        assert system.read(1) == "v1"  # odd reader: stale state absorbed

    def test_ack_flooding_does_not_fake_confirmations(self):
        config = SystemConfig.optimal(t=2, b=1, num_readers=1)
        system = StorageSystem(SafeStorageProtocol(), config)
        inner = system.kernel.object_automaton(obj(0))
        system.kernel.make_byzantine(obj(0),
                                     AckFlooder(inner, config, copies=5))
        system.write("real")
        assert system.read(0) == "real"

    def test_tsr_inflation_cannot_block_round1(self):
        """Lemma 2: a Byzantine accuser cannot starve the first round."""
        config = SystemConfig.optimal(t=2, b=1, num_readers=1)
        system = StorageSystem(SafeStorageProtocol(), config)
        max_byzantine(config, tsr_inflater()).apply(system)
        system.write("v1")
        handle = system.read_handle(0)
        assert handle.done and handle.result == "v1"

    def test_wait_freedom_with_reader_crash(self):
        system = make_system()
        read = system.invoke_read(0)
        system.crash_reader(0)
        # the other clients must still make progress
        system.write("v")
        assert system.read(1) == "v"
        result = check_wait_freedom(system.history,
                                    crashed_clients={read.operation.client_id})
        result.assert_ok()

    def test_writer_crash_mid_write_leaves_readers_live(self):
        system = make_system()
        system.write("complete")
        handle = system.invoke_write("partial")
        # deliver only a few steps of the write, then crash the writer
        for _ in range(3):
            system.kernel.step()
        system.crash_writer()
        value = system.read(0)
        # a partially applied write is concurrent "forever": any of the
        # two values is legal, but the read must terminate.
        assert value in ("complete", "partial") or value is BOTTOM
        del handle


class TestConcurrency:
    @pytest.mark.parametrize("scheduler_factory", [
        FifoScheduler, LifoScheduler, lambda: RandomScheduler(5)])
    def test_read_concurrent_with_write_terminates(self, scheduler_factory):
        system = make_system(scheduler=scheduler_factory())
        system.write("v1")
        write = system.invoke_write("v2")
        read = system.invoke_read(0)
        system.run_until_done(write, read)
        assert read.result in ("v1", "v2") or read.result is BOTTOM
        check_safety(system.history).assert_ok()

    def test_two_readers_concurrent(self):
        system = make_system()
        system.write("v1")
        r0 = system.invoke_read(0)
        r1 = system.invoke_read(1)
        system.run_until_done(r0, r1)
        assert r0.result == r1.result == "v1"

    def test_sequential_reads_by_same_reader_reuse_state(self):
        system = make_system()
        system.write("v")
        system.read(0)
        tsr_after_first = system.reader_states[0].tsr
        system.read(0)
        assert system.reader_states[0].tsr == tsr_after_first + 2
