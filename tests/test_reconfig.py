"""Live reconfiguration: epoch fences, shard handoff, replica repair."""

import asyncio

import pytest

from repro.config import SystemConfig
from repro.core.regular import CachedRegularStorageProtocol
from repro.core.regular.object import RegularObject
from repro.core.safe import SafeStorageProtocol
from repro.core.safe.object import SafeObject
from repro.errors import (BusyRegisterError, ConfigurationError,
                          FencedWriteError)
from repro.messages import EpochFence, EpochFenceAck, Pw, W, WriteFenced
from repro.service import (HashRing, MultiRegisterStore,
                           ReconfigCoordinator, ShardedKVStore, owned_diff)
from repro.service.hashing import key_position
from repro.service.reconfig import FENCE_MARGIN, FenceOperation
from repro.spec.checkers import (check_mwmr_atomicity,
                                 check_mwmr_regularity, check_per_register)
from repro.types import (TimestampValue, WriterTag, initial_write_tuple,
                         obj, writer)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig.optimal(t=1, b=1, num_readers=2)


# ---------------------------------------------------------------------------
# Object-level fencing
# ---------------------------------------------------------------------------


class TestEpochFenceAutomata:
    def _pw(self, ts, register_id="x", wid=0):
        pw = TimestampValue(ts, f"v{ts}", wid=wid)
        return Pw(ts=ts, pw=pw, w=initial_write_tuple(4, 2),
                  register_id=register_id, wid=wid)

    @pytest.mark.parametrize("object_cls", [SafeObject, RegularObject])
    def test_fence_rejects_stale_write_rounds(self, config, object_cls):
        automaton = object_cls(0, config)
        [(_, ack)] = automaton.on_message(
            writer(0), EpochFence(nonce=1, epoch=5, register_id="x"))
        assert isinstance(ack, EpochFenceAck) and ack.epoch == 5
        # A write round below the fence is refused with a report...
        [(_, nack)] = automaton.on_message(writer(0), self._pw(4))
        assert isinstance(nack, WriteFenced)
        assert nack.fence_epoch == 5 and nack.epoch == 4
        # ...and was not applied.
        assert "x" not in automaton.slots or automaton._slot("x").ts == 0
        # At or above the fence, writes proceed normally.
        [(_, reply)] = automaton.on_message(writer(0), self._pw(5))
        assert not isinstance(reply, WriteFenced)

    def test_fence_is_per_register(self, config):
        automaton = RegularObject(0, config)
        automaton.on_message(writer(0),
                             EpochFence(nonce=1, epoch=9, register_id="x"))
        [(_, reply)] = automaton.on_message(
            writer(0), self._pw(1, register_id="y"))
        assert not isinstance(reply, WriteFenced)

    def test_fence_only_ratchets_upward(self, config):
        automaton = SafeObject(0, config)
        automaton.on_message(writer(0),
                             EpochFence(nonce=1, epoch=7, register_id="x"))
        [(_, ack)] = automaton.on_message(
            writer(0), EpochFence(nonce=2, epoch=3, register_id="x"))
        assert ack.epoch == 7  # lowering a fence is refused

    def test_w_round_fenced_too(self, config):
        automaton = SafeObject(0, config)
        automaton.on_message(writer(0),
                             EpochFence(nonce=1, epoch=5, register_id="x"))
        w = W(ts=2, pw=TimestampValue(2, "v"),
              w=initial_write_tuple(4, 2), register_id="x")
        [(_, nack)] = automaton.on_message(writer(0), w)
        assert isinstance(nack, WriteFenced)


# ---------------------------------------------------------------------------
# HashRing ownership transfer (satellite: moved fraction + exact diff)
# ---------------------------------------------------------------------------


class TestHashRingReconfig:
    KEYS = [f"key:{n}" for n in range(2000)]

    def test_add_shard_moves_bounded_fraction(self):
        before = HashRing(8)
        after = before.add_shard()
        moved = sum(1 for k in self.KEYS
                    if before.shard_for(k) != after.shard_for(k))
        # Ideal is 1/9 of the keyspace; allow up to 2/num_shards slack.
        assert 0 < moved <= len(self.KEYS) * 2 / before.num_shards
        # Every moved key lands on the new shard -- adding a shard only
        # pulls ring-adjacent arcs, it never shuffles third parties.
        for k in self.KEYS:
            if before.shard_for(k) != after.shard_for(k):
                assert after.shard_for(k) == 8

    def test_remove_shard_moves_only_its_keys(self):
        before = HashRing(8)
        after = before.remove_shard(3)
        for k in self.KEYS:
            if before.shard_for(k) != 3:
                assert after.shard_for(k) == before.shard_for(k)
            else:
                assert after.shard_for(k) != 3
        moved = sum(1 for k in self.KEYS if before.shard_for(k) == 3)
        assert 0 < moved <= len(self.KEYS) * 2 / before.num_shards

    def test_add_then_remove_is_identity(self):
        ring = HashRing(5)
        back = ring.add_shard(9).remove_shard(9)
        assert [back.shard_for(k) for k in self.KEYS[:500]] == \
            [ring.shard_for(k) for k in self.KEYS[:500]]

    def test_owned_diff_exact_against_brute_force(self):
        old = HashRing(4)
        for new in (old.add_shard(), old.remove_shard(1)):
            ranges = owned_diff(old, new)
            assert ranges == old.owned_diff(new)  # method alias
            for k in self.KEYS:
                pos = key_position(k)
                hits = [r for r in ranges if r.contains(pos)]
                if old.shard_for(k) == new.shard_for(k):
                    assert not hits, k
                else:
                    assert len(hits) == 1, k
                    assert hits[0].old_shard == old.shard_for(k)
                    assert hits[0].new_shard == new.shard_for(k)

    def test_owned_diff_of_identical_rings_is_empty(self):
        assert owned_diff(HashRing(4), HashRing(4)) == []

    def test_validation(self):
        ring = HashRing(2)
        with pytest.raises(ValueError):
            ring.add_shard(1)  # already present
        with pytest.raises(ValueError):
            ring.remove_shard(7)  # unknown
        with pytest.raises(ValueError):
            HashRing(1).remove_shard(0)  # last shard
        with pytest.raises(ValueError):
            HashRing(vnodes=8, shard_ids=[1, 1])

    def test_sparse_ids_equal_dense_prefix(self):
        # Ring identity depends only on the id set, not construction path.
        grown = HashRing(2).add_shard()
        dense = HashRing(3)
        assert [grown.shard_for(k) for k in self.KEYS[:300]] == \
            [dense.shard_for(k) for k in self.KEYS[:300]]


# ---------------------------------------------------------------------------
# Fence operation at the store level
# ---------------------------------------------------------------------------


class TestFenceOperation:
    def test_fence_then_stale_write_fails_fast(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write("k", "v1")
                await store.write("k", "v2")
                fence = await store.control_host().run(
                    FenceOperation(config, "k"), 5.0)
                assert fence == 2 + FENCE_MARGIN
                with pytest.raises(FencedWriteError):
                    await store.write("k", "v3")
                # Reads are never fenced: the last value stays readable.
                assert await store.read("k") == "v2"
                # Writes at or above the fence proceed (handoff replay).
                store.seed_writer_epoch("k", fence - 1)
                await store.write("k", "v4")
                return await store.read("k")

        assert run(scenario()) == "v4"

    def test_fence_on_safe_protocol(self, config):
        async def scenario():
            async with MultiRegisterStore(SafeStorageProtocol(),
                                          config) as store:
                await store.write("k", "v1")
                await store.control_host().run(
                    FenceOperation(config, "k"), 5.0)
                with pytest.raises(FencedWriteError):
                    await store.write("k", "v2")
                return await store.read("k")

        assert run(scenario()) == "v1"


# ---------------------------------------------------------------------------
# Shard handoff (the acceptance scenario)
# ---------------------------------------------------------------------------


class TestAddShard:
    def test_reshard_under_load_keeps_serving_and_checks_clean(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=3, record_history=True)
            async with kv:
                keys = [f"user:{n}" for n in range(40)]
                for key in keys:
                    await kv.put(key, f"before-{key}")
                old_ring = kv.ring
                preview = old_ring.add_shard()
                moved = [k for k in keys
                         if preview.shard_for(k) != old_ring.shard_for(k)]
                unmoved = [k for k in keys if k not in moved]
                assert moved and unmoved

                # Concurrent load on unmoved keys throughout the handoff.
                stats = {"puts": 0, "gets": 0}
                done = asyncio.Event()

                async def load():
                    i = 0
                    while not done.is_set():
                        key = unmoved[i % len(unmoved)]
                        await kv.put(key, f"during-{i}")
                        stats["puts"] += 1
                        value = await kv.get(
                            unmoved[(i * 7) % len(unmoved)])
                        assert value is not None
                        stats["gets"] += 1
                        i += 1

                loader = asyncio.create_task(load())
                report = await ReconfigCoordinator(kv).add_shard()
                done.set()
                await loader

                # Routing flipped to 3 shard groups; the load progressed.
                assert kv.ring.shard_ids == (0, 1, 2)
                assert set(kv.shards) == {0, 1, 2}
                assert stats["puts"] > 0 and stats["gets"] > 0
                assert set(report.moved) == set(moved)
                # Moved keys read their last pre-handoff value at the new
                # home (served by the new shard group).
                for key in moved:
                    assert kv.shard_for(key) == 2
                    assert await kv.get(key) == f"before-{key}"

                # A stale-epoch write through the old source shard is
                # fenced -- rejected, not silently applied.
                stale_key = moved[0]
                source = kv.shards[old_ring.shard_for(stale_key)]
                with pytest.raises(FencedWriteError):
                    await source.write(stale_key, "stale")
                assert await kv.get(stale_key) == f"before-{stale_key}"

                # Post-flip writes to moved keys succeed at the new home.
                await kv.put(stale_key, "fresh")
                assert await kv.get(stale_key) == "fresh"

                # The recorded history spans the handoff and still checks
                # regular per register under the tag-based checker.
                result = check_per_register(kv.history,
                                            check_mwmr_regularity)
                assert result.ok, result.violations[:3]

        run(scenario())

    def test_explicit_store_and_shard_id(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=1)
            async with kv:
                await kv.put("a", 1)
                custom = kv.make_shard_store(7)
                report = await ReconfigCoordinator(kv).add_shard(
                    shard_id=7, store=custom)
                assert report.shard_id == 7
                assert kv.shards[7] is custom
                assert kv.ring.shard_ids == (0, 1, 7)
                return await kv.get("a")

        assert run(scenario()) == 1

    def test_unwritten_keys_are_skipped_not_replayed(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=2)
            async with kv:
                preview = kv.ring.add_shard()
                # Touch (read-only) keys until one would move.
                n = 0
                while True:
                    key = f"ghost:{n}"
                    if preview.shard_for(key) != kv.ring.shard_for(key):
                        break
                    n += 1
                assert await kv.get(key) is None  # known but never written
                report = await ReconfigCoordinator(kv).add_shard()
                assert key in report.skipped and key not in report.moved
                return await kv.get(key)

        assert run(scenario()) is None


class TestRemoveShard:
    def test_drain_scatters_keys_and_stops_store(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=3, seed=5, record_history=True)
            async with kv:
                keys = [f"k:{n}" for n in range(30)]
                for key in keys:
                    await kv.put(key, f"v-{key}")
                drained_store = kv.shards[2]
                owned = [k for k in keys if kv.shard_for(k) == 2]
                assert owned
                report = await ReconfigCoordinator(kv).remove_shard(2)
                assert set(report.moved) == set(owned)
                assert kv.ring.shard_ids == (0, 1)
                assert 2 not in kv.shards
                assert not drained_store._started
                for key in keys:
                    assert await kv.get(key) == f"v-{key}"
                result = check_per_register(kv.history,
                                            check_mwmr_regularity)
                assert result.ok, result.violations[:3]

        run(scenario())

    def test_remove_validation(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2)
            async with kv:
                coordinator = ReconfigCoordinator(kv)
                with pytest.raises(ConfigurationError):
                    await coordinator.remove_shard(9)

        run(scenario())


class TestMultiWriterHandoff:
    def test_mwmr_reshard_keeps_tag_order(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2,
                                      num_writers=2)
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=11, record_history=True)
            async with kv:
                keys = [f"m:{n}" for n in range(16)]
                for i, key in enumerate(keys):
                    await kv.put(key, f"w0-{key}", writer_index=0)
                    await kv.put(key, f"w1-{key}", writer_index=1)
                report = await ReconfigCoordinator(kv).add_shard()
                assert report.moved  # something crossed shards
                for key in keys:
                    assert await kv.get(key) == f"w1-{key}"
                # Writers keep racing after the handoff; discovery must
                # land above the replayed fence epochs.
                for key in report.moved:
                    await kv.put(key, f"post-{key}", writer_index=1)
                    assert await kv.get(key) == f"post-{key}"
                result = check_per_register(kv.history,
                                            check_mwmr_atomicity)
                # Regularity is the contract; atomicity may legitimately
                # fail only through concurrency, absent here (sequential
                # ops), so assert the stronger property.
                assert result.ok, result.violations[:3]

        run(scenario())


# ---------------------------------------------------------------------------
# Replica replacement / repair
# ---------------------------------------------------------------------------


class TestHealReplica:
    def test_replacement_resyncs_and_survives_second_crash(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=5)
            async with kv:
                keys = [f"k:{n}" for n in range(20)]
                for key in keys:
                    await kv.put(key, f"v-{key}")
                store = kv.shards[0]
                owned = [k for k in keys if kv.shard_for(k) == 0]
                store.crash_object(0)
                await kv.put(owned[0], "post-crash")  # quorum without s1
                report = await ReconfigCoordinator(kv).heal_replica(0, 0)
                assert set(report.moved) == set(owned)
                # The healed replica materialized every owned key.
                healed = store.object_automaton(0)
                assert set(owned) <= set(healed.registers())
                # Lose a *different* replica: quorums now depend on the
                # healed one actually holding data.
                store.crash_object(3)
                assert await kv.get(owned[0]) == "post-crash"
                for key in owned[1:4]:
                    assert await kv.get(key) == f"v-{key}"

        run(scenario())

    def test_replace_object_inherits_inbox(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config) as store:
                await store.write("k", "v1")
                # Wedge replica 0 (task stopped, pid not crashed): the
                # next write round parks in its inbox.
                store._object_hosts[0].stop()
                await store.write("k", "v2")  # completes via s2..s4
                assert store.network.inbox(obj(0)).qsize() > 0
                # Replacement takes over the queue and drains the backlog.
                store.replace_object(0)
                await asyncio.sleep(0.01)
                assert store.network.inbox(obj(0)).qsize() == 0
                healed = store.object_automaton(0)
                # The parked PW/W rounds for v2 reached the new automaton.
                assert "k" in healed.registers()
                return await store.read("k")

        assert run(scenario()) == "v2"


# ---------------------------------------------------------------------------
# Per-register checking helper
# ---------------------------------------------------------------------------


class TestCheckPerRegister:
    def test_merges_subhistory_results(self, config):
        async def scenario():
            async with MultiRegisterStore(CachedRegularStorageProtocol(),
                                          config,
                                          record_history=True) as store:
                await store.write("a", 1)
                await store.write("b", 2)
                await store.read("a")
                await store.read("b")
                return store.history

        history = run(scenario())
        result = check_per_register(history, check_mwmr_regularity)
        assert result.ok and result.checked_reads == 2
        assert "check_mwmr_regularity" in result.property_name

    def test_violations_are_register_tagged(self):
        from repro.spec.histories import History
        history = History()
        history.record_invocation(1, writer(0), "WRITE", argument="x",
                                  register="r")
        history.record_completion(1, "OK", tag=WriterTag(1, 0))
        history.record_invocation(2, writer(0), "READ", register="r")
        history.record_completion(2, "forged", tag=WriterTag(9, 0))
        result = check_per_register(history, check_mwmr_regularity)
        assert not result.ok
        assert result.violations[0].startswith("[r]")


# ---------------------------------------------------------------------------
# Races found in review: mid-migration writes, heal lost-update, drain stop
# ---------------------------------------------------------------------------


class TestMidMigrationWrites:
    def test_key_first_written_during_migration_is_not_stranded(self,
                                                                config):
        """A put acknowledged while the handoff is in flight must be
        readable after the flip even if its key lands on a moved arc."""
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=3)
            async with kv:
                for n in range(25):
                    await kv.put(f"old:{n}", n)
                preview = kv.ring.add_shard()
                # Fresh keys the old ring owns but the new ring moves.
                fresh = [f"fresh:{n}" for n in range(200)
                         if preview.shard_for(f"fresh:{n}")
                         != kv.ring.shard_for(f"fresh:{n}")][:3]
                assert fresh

                async def write_mid_migration():
                    # Wait until the migration provably started (some
                    # source object carries a fence), then write keys
                    # the initial enumeration cannot have seen.
                    def fencing_started():
                        return any(
                            store.object_automaton(0).fences
                            for store in kv.shards.values())
                    while not fencing_started():
                        await asyncio.sleep(0)
                    written = []
                    for key in fresh:
                        try:
                            await kv.put(key, f"mid-{key}")
                            written.append(key)
                        except FencedWriteError:
                            pass  # already fenced: the put failed fast
                    return written

                writer_task = asyncio.create_task(write_mid_migration())
                await ReconfigCoordinator(kv).add_shard()
                written = await writer_task
                # Every acknowledged mid-migration put survives the flip.
                for key in written:
                    assert await kv.get(key) == f"mid-{key}", key
                return written

        # The scenario asserts internally; written may be empty only if
        # every fresh put lost the race, which the fence guarantees is
        # reported -- never silent.
        run(scenario())


class TestHealUnderLoad:
    def test_no_lost_update_during_heal(self, config):
        """An application write acknowledged during heal_replica must not
        be buried by the coordinator's re-install."""
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=5)
            async with kv:
                keys = [f"k:{n}" for n in range(12)]
                for key in keys:
                    await kv.put(key, "base")
                owned = [k for k in keys if kv.shard_for(k) == 0]
                store = kv.shards[0]
                store.crash_object(1)
                done = asyncio.Event()
                last_acked: dict = {}

                async def load():
                    i = 0
                    while not done.is_set():
                        key = owned[i % len(owned)]
                        try:
                            await kv.put(key, f"app-{i}")
                            last_acked[key] = f"app-{i}"
                        except (FencedWriteError, BusyRegisterError):
                            pass  # failed fast: nothing was acked
                        i += 1
                        await asyncio.sleep(0)

                loader = asyncio.create_task(load())
                report = await ReconfigCoordinator(kv).heal_replica(0, 1)
                done.set()
                await loader
                assert set(report.moved) == set(owned)
                for key, value in last_acked.items():
                    assert await kv.get(key) == value, key

        run(scenario())


class TestDrainQuiesces:
    def test_reads_in_flight_at_flip_complete(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=3, seed=7)
            async with kv:
                keys = [f"k:{n}" for n in range(30)]
                for key in keys:
                    await kv.put(key, f"v-{key}")
                draining = [k for k in keys if kv.shard_for(k) == 2]
                assert draining
                done = asyncio.Event()
                reads = {"ok": 0, "busy": 0}

                async def load():
                    i = 0
                    while not done.is_set():
                        key = draining[i % len(draining)]
                        try:
                            value = await kv.get(key, reader_index=1)
                            assert value == f"v-{key}"
                            reads["ok"] += 1
                        except BusyRegisterError:
                            reads["busy"] += 1
                        i += 1

                loader = asyncio.create_task(load())
                await ReconfigCoordinator(kv).remove_shard(2)
                done.set()
                await loader
                assert reads["ok"] > 0
                return reads

        run(scenario())


class TestHardFence:
    def test_hard_fence_rejects_any_epoch(self, config):
        """An epoch-only fence can be outrun by chained tag discoveries;
        a hard fence retires the register outright."""
        automaton = RegularObject(0, config)
        automaton.on_message(writer(0), EpochFence(
            nonce=1, epoch=5, register_id="x", hard=True))
        pw = Pw(ts=10**9, pw=TimestampValue(10**9, "late"),
                w=initial_write_tuple(4, 2), register_id="x")
        [(_, nack)] = automaton.on_message(writer(0), pw)
        assert isinstance(nack, WriteFenced)

    def test_migration_installs_hard_fences(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=3)
            async with kv:
                for n in range(20):
                    await kv.put(f"k:{n}", n)
                old_ring = kv.ring
                report = await ReconfigCoordinator(kv).add_shard()
                moved_key = next(iter(report.moved))
                source = kv.shards[old_ring.shard_for(moved_key)]
                fenced = source.object_automaton(0).hard_fences
                assert moved_key in fenced
                # Even an epoch far above the fence cannot write the
                # retired register at the source.
                source.seed_writer_epoch(moved_key, 10**6)
                with pytest.raises(FencedWriteError):
                    await source.write(moved_key, "chained-past-margin")

        run(scenario())

    def test_heal_fence_stays_soft(self, config):
        """heal_replica re-installs through the same store, so its fence
        must admit the seeded replay (and all later writes)."""
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=5)
            async with kv:
                await kv.put("h", "v1")
                sid = kv.shard_for("h")
                kv.shards[sid].crash_object(0)
                await ReconfigCoordinator(kv).heal_replica(sid, 0)
                assert "h" not in \
                    kv.shards[sid].object_automaton(1).hard_fences
                await kv.put("h", "v2")  # writes keep working post-heal
                return await kv.get("h")

        assert run(scenario()) == "v2"


class TestRetiredIdsNotReused:
    def test_add_after_draining_highest_id_picks_fresh_id(self, config):
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=3, seed=7)
            async with kv:
                await kv.put("a", 1)
                coordinator = ReconfigCoordinator(kv)
                await coordinator.remove_shard(2)
                assert kv.retired_shard_ids == {2}
                report = await coordinator.add_shard()
                assert report.shard_id == 3  # not the retired 2
                assert set(kv.shards) == {0, 1, 3}
                return await kv.get("a")

        assert run(scenario()) == 1


class TestHandBack:
    def test_move_back_to_former_owner_lifts_hard_fence(self, config):
        """add_shard then remove_shard routes keys back to stores that
        hard-fenced them; the hand-back must lift those fences."""
        async def scenario():
            kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                                num_shards=2, seed=3, record_history=True)
            async with kv:
                keys = [f"k:{n}" for n in range(25)]
                for key in keys:
                    await kv.put(key, f"v-{key}")
                coordinator = ReconfigCoordinator(kv)
                grown = await coordinator.add_shard()
                assert grown.moved
                # Drain the shard we just added: every key it received
                # goes back to a store that hard-fenced it.
                drained = await coordinator.remove_shard(grown.shard_id)
                assert set(drained.moved) == set(grown.moved)
                for key in keys:
                    assert await kv.get(key) == f"v-{key}", key
                # The keys are writable again at their (re)current home.
                for key in list(grown.moved)[:3]:
                    await kv.put(key, f"back-{key}")
                    assert await kv.get(key) == f"back-{key}"
                result = check_per_register(kv.history,
                                            check_mwmr_regularity)
                assert result.ok, result.violations[:3]

        run(scenario())

    def test_lift_clears_both_fences_at_object(self, config):
        automaton = RegularObject(0, config)
        automaton.on_message(writer(0), EpochFence(
            nonce=1, epoch=5, register_id="x", hard=True))
        assert automaton._fence_rejects("x", 10**9)
        automaton.on_message(writer(0), EpochFence(
            nonce=2, epoch=0, register_id="x", lift=True))
        assert not automaton._fence_rejects("x", 1)
        assert "x" not in automaton.fences
        assert "x" not in automaton.hard_fences


class TestReconfigOnBaselines:
    def test_abd_store_reshards(self):
        """Fencing must work on protocol families with their own
        discovery vocabulary (ABD speaks AbdQuery, not TagQuery)."""
        config = SystemConfig.optimal(t=1, b=0, num_readers=2)
        from repro.baselines.abd import AbdRegularProtocol

        async def scenario():
            kv = ShardedKVStore(AbdRegularProtocol, config,
                                num_shards=2, seed=3)
            async with kv:
                keys = [f"k:{n}" for n in range(20)]
                for key in keys:
                    await kv.put(key, f"v-{key}")
                report = await ReconfigCoordinator(kv).add_shard()
                assert report.moved
                for key in keys:
                    assert await kv.get(key) == f"v-{key}", key
                stale = next(iter(report.moved))
                src = report.moved[stale][0]
                with pytest.raises(FencedWriteError):
                    await kv.shards[src].write(stale, "stale")

        run(scenario())

    def test_authenticated_store_reshards(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2)
        from repro.baselines.authenticated import AuthenticatedProtocol

        async def scenario():
            kv = ShardedKVStore(AuthenticatedProtocol, config,
                                num_shards=2, seed=4)
            async with kv:
                keys = [f"k:{n}" for n in range(12)]
                for key in keys:
                    await kv.put(key, f"v-{key}")
                report = await ReconfigCoordinator(kv).add_shard()
                assert report.moved
                for key in keys:
                    assert await kv.get(key) == f"v-{key}", key

        run(scenario())
