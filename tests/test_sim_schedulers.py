"""Unit tests for the delivery schedulers and delay models."""

import pytest

from repro.sim.delay import (ConstantDelay, ExponentialDelay, PerLinkDelay,
                             SlowProcessDelay, UniformDelay, ZeroDelay)
from repro.sim.envelope import Envelope
from repro.sim.schedulers import (EarliestDeliveryScheduler, FifoScheduler,
                                  LifoScheduler, RandomScheduler,
                                  ReplayScheduler, TargetedScheduler,
                                  delay_link_rule)
from repro.types import WRITER, obj, reader


def envs(n, available=None):
    return [
        Envelope(sender=WRITER, receiver=obj(i), payload=i,
                 available_at=(available[i] if available else 0.0))
        for i in range(n)
    ]


class TestBasicSchedulers:
    def test_fifo_oldest_first(self):
        batch = envs(3)
        assert FifoScheduler().choose(batch) is batch[0]

    def test_lifo_newest_first(self):
        batch = envs(3)
        assert LifoScheduler().choose(batch) is batch[2]

    def test_random_is_seeded(self):
        batch = envs(10)
        a = RandomScheduler(seed=4)
        b = RandomScheduler(seed=4)
        picks_a = [a.choose(batch).envelope_id for _ in range(5)]
        picks_b = [b.choose(batch).envelope_id for _ in range(5)]
        assert picks_a == picks_b

    def test_random_reset_restores_sequence(self):
        batch = envs(10)
        sched = RandomScheduler(seed=9)
        first = [sched.choose(batch).envelope_id for _ in range(3)]
        sched.reset()
        assert [sched.choose(batch).envelope_id for _ in range(3)] == first

    def test_earliest_delivery(self):
        batch = envs(3, available=[5.0, 1.0, 3.0])
        assert EarliestDeliveryScheduler().choose(batch) is batch[1]


class TestTargetedScheduler:
    def test_priority_rules(self):
        batch = envs(3)
        sched = TargetedScheduler()
        sched.add_rule(lambda e: 0 if e.receiver == obj(2) else None)
        assert sched.choose(batch) is batch[2]

    def test_default_priority_fifo(self):
        batch = envs(3)
        assert TargetedScheduler().choose(batch) is batch[0]

    def test_delay_link_rule_deprioritizes(self):
        batch = envs(2)
        rule = delay_link_rule(lambda s: s == WRITER,
                               lambda r: r == obj(0))
        sched = TargetedScheduler([rule])
        assert sched.choose(batch) is batch[1]


class TestReplayScheduler:
    def test_replays_recorded_order(self):
        batch = envs(3)
        order = [batch[2].envelope_id, batch[0].envelope_id,
                 batch[1].envelope_id]
        sched = ReplayScheduler(order)
        picked = []
        pool = list(batch)
        while pool:
            choice = sched.choose(pool)
            picked.append(choice.envelope_id)
            pool.remove(choice)
        assert picked == order

    def test_falls_back_to_fifo_when_exhausted(self):
        batch = envs(2)
        sched = ReplayScheduler([])
        assert sched.choose(batch) is batch[0]


class TestDelayModels:
    def test_zero(self):
        assert ZeroDelay().delay(WRITER, obj(0)) == 0.0

    def test_constant(self):
        assert ConstantDelay(2.5).delay(WRITER, obj(0)) == 2.5
        with pytest.raises(ValueError):
            ConstantDelay(-1)

    def test_uniform_bounds_and_determinism(self):
        model = UniformDelay(1.0, 2.0, seed=3)
        values = [model.delay(WRITER, obj(0)) for _ in range(50)]
        assert all(1.0 <= v <= 2.0 for v in values)
        model.reset()
        assert model.delay(WRITER, obj(0)) == values[0]

    def test_exponential_positive(self):
        model = ExponentialDelay(base=0.5, mean=1.0, seed=1)
        assert all(model.delay(WRITER, obj(0)) >= 0.5 for _ in range(20))

    def test_per_link(self):
        model = PerLinkDelay(default=1.0)
        model.set_symmetric(WRITER, obj(0), 9.0)
        assert model.delay(WRITER, obj(0)) == 9.0
        assert model.delay(obj(0), WRITER) == 9.0
        assert model.delay(WRITER, obj(1)) == 1.0

    def test_slow_process(self):
        model = SlowProcessDelay({obj(0)}, fast=1.0, slow=10.0)
        assert model.delay(WRITER, obj(0)) == 10.0
        assert model.delay(obj(0), reader(0)) == 10.0
        assert model.delay(WRITER, obj(1)) == 1.0
