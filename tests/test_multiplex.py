"""Register multiplexing: many SWMR registers over one replica set.

Covers the tentpole invariants:

* per-register isolation -- a write to register A never surfaces in
  register B's reads, and each register's sub-history satisfies its
  semantics under the spec checkers;
* Byzantine forgery on one register does not disturb sibling registers
  served by the same (partially compromised) replica set;
* the kernel runs one operation per (client, register) concurrently and
  still rejects two concurrent operations on the same register.
"""

import pytest

from repro.baselines.abd.protocol import AbdRegularProtocol
from repro.config import SystemConfig
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularStorageProtocol)
from repro.core.safe import SafeStorageProtocol
from repro.adversary.byzantine import StaleReplier, ValueForger
from repro.errors import PendingOperationError
from repro.spec.checkers import check_regularity, check_safety
from repro.system import StorageSystem
from repro.types import BOTTOM, DEFAULT_REGISTER, obj


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig.optimal(t=1, b=1, num_readers=2)


class TestRegisterIsolation:
    def test_writes_land_on_their_register_only(self, config):
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("apple", register_id="fruit")
        system.write("carrot", register_id="veg")
        assert system.read(0, register_id="fruit") == "apple"
        assert system.read(1, register_id="veg") == "carrot"
        # An untouched register still reads the initial value.
        assert system.read(0, register_id="empty") is BOTTOM

    def test_default_register_is_r0(self, config):
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("via-default")
        assert system.read(0, register_id=DEFAULT_REGISTER) == "via-default"

    def test_per_register_timestamps_are_independent(self, config):
        system = StorageSystem(RegularStorageProtocol(), config)
        for k in range(3):
            system.write(f"a{k}", register_id="a")
        system.write("b0", register_id="b")
        # Object slots advanced independently.
        automaton = system.objects[0]
        assert automaton.slots["a"].ts == 3
        assert automaton.slots["b"].ts == 1

    def test_per_register_histories_check_clean(self, config):
        system = StorageSystem(RegularStorageProtocol(), config)
        for register in ("a", "b", "c"):
            for k in range(2):
                system.write(f"{register}-{k}", register_id=register)
                system.read(0, register_id=register)
                system.read(1, register_id=register)
        history = system.history
        assert sorted(history.registers()) == ["a", "b", "c"]
        for register in history.registers():
            sub = history.for_register(register)
            assert len(sub.writes()) == 2
            check_safety(sub).assert_ok()
            check_regularity(sub).assert_ok()
            # No foreign values leaked into this register's reads.
            for read in sub.reads(complete_only=True):
                assert str(read.result).startswith(f"{register}-")

    def test_abd_baseline_multiplexes_too(self):
        config = SystemConfig.with_objects(t=1, b=0, num_objects=3)
        system = StorageSystem(AbdRegularProtocol(), config)
        system.write(1, register_id="x")
        system.write(2, register_id="y")
        assert system.read(0, register_id="x") == 1
        assert system.read(0, register_id="y") == 2


class TestByzantineIsolation:
    def test_forgery_on_one_register_leaves_siblings_regular(self, config):
        system = StorageSystem(CachedRegularStorageProtocol(), config)
        for register in ("target", "sibling1", "sibling2"):
            system.write(f"{register}-genuine", register_id=register)
        # Compromise one replica for ALL registers at once.
        pid = obj(0)
        honest = system.kernel.object_automaton(pid)
        system.kernel.make_byzantine(
            pid, ValueForger(honest, config, forged_value="$FORGED$",
                             ts_boost=10**6))
        for register in ("target", "sibling1", "sibling2"):
            assert system.read(0, register_id=register) == \
                f"{register}-genuine"
        # Writes after the compromise stay correct everywhere too.
        system.write("target-v2", register_id="target")
        assert system.read(1, register_id="target") == "target-v2"
        assert system.read(1, register_id="sibling1") == "sibling1-genuine"

    def test_stale_replier_cannot_serve_one_register_stale(self, config):
        system = StorageSystem(RegularStorageProtocol(), config)
        system.write("a1", register_id="a")
        system.write("b1", register_id="b")
        pid = obj(1)
        system.kernel.make_byzantine(
            pid, StaleReplier(system.kernel.object_automaton(pid)))
        system.write("a2", register_id="a")
        assert system.read(0, register_id="a") == "a2"
        assert system.read(0, register_id="b") == "b1"
        sub = system.history.for_register("a")
        check_regularity(sub).assert_ok()


class TestKernelPerRegisterConcurrency:
    def test_same_client_concurrent_across_registers(self, config):
        system = StorageSystem(SafeStorageProtocol(), config)
        h1 = system.invoke_write("x", register_id="rx")
        h2 = system.invoke_write("y", register_id="ry")
        system.run_until_done(h1, h2)
        assert system.read(0, register_id="rx") == "x"
        assert system.read(0, register_id="ry") == "y"

    def test_same_register_still_exclusive(self, config):
        system = StorageSystem(SafeStorageProtocol(), config)
        system.invoke_write("x", register_id="rx")
        with pytest.raises(PendingOperationError):
            system.invoke_write("y", register_id="rx")

    def test_reader_concurrent_across_registers(self, config):
        system = StorageSystem(SafeStorageProtocol(), config)
        system.write("v-a", register_id="a")
        system.write("v-b", register_id="b")
        ha = system.invoke_read(0, register_id="a")
        hb = system.invoke_read(0, register_id="b")
        system.run_until_done(ha, hb)
        assert ha.result == "v-a"
        assert hb.result == "v-b"

    def test_concurrent_workload_many_registers_checks_clean(self, config):
        system = StorageSystem(RegularStorageProtocol(), config)
        registers = [f"k{n}" for n in range(8)]
        for round_no in range(3):
            handles = [
                system.invoke_write(f"{register}:{round_no}",
                                    register_id=register)
                for register in registers
            ]
            system.run_until_done(*handles)
            reads = [system.invoke_read(round_no % 2, register_id=register)
                     for register in registers]
            system.run_until_done(*reads)
        history = system.history
        assert len(history.registers()) == 8
        for register in registers:
            check_regularity(history.for_register(register)).assert_ok()
