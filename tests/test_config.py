"""Unit tests for SystemConfig and the resilience arithmetic."""

import pytest

from repro.config import (SystemConfig, fast_read_impossibility_threshold,
                          optimal_resilience)
from repro.errors import ConfigurationError, ResilienceError


class TestBounds:
    @pytest.mark.parametrize("t,b,expected", [
        (1, 1, 4), (2, 1, 6), (2, 2, 7), (3, 3, 10), (5, 2, 13),
    ])
    def test_optimal_resilience(self, t, b, expected):
        assert optimal_resilience(t, b) == expected

    @pytest.mark.parametrize("t,b,expected", [
        (1, 1, 4), (2, 1, 6), (2, 2, 8), (3, 2, 10),
    ])
    def test_impossibility_threshold(self, t, b, expected):
        assert fast_read_impossibility_threshold(t, b) == expected

    def test_thresholds_relate(self):
        # 2t+2b >= 2t+b+1 iff b >= 1: with Byzantine failures there is
        # always a gap between optimal resilience and fast-read territory.
        for t in range(1, 6):
            for b in range(1, t + 1):
                assert (fast_read_impossibility_threshold(t, b)
                        >= optimal_resilience(t, b))


class TestSystemConfig:
    def test_optimal_constructor(self):
        config = SystemConfig.optimal(t=2, b=1, num_readers=3)
        assert config.num_objects == 6
        assert config.is_optimally_resilient
        assert config.quorum_size == 4
        assert config.max_crash_only == 1

    def test_impossibility_constructor(self):
        config = SystemConfig.at_impossibility_threshold(2, 1)
        assert config.num_objects == 6
        assert not config.fast_reads_possible

    def test_fast_reads_possible_above_threshold(self):
        config = SystemConfig.with_objects(t=2, b=1, num_objects=7)
        assert config.fast_reads_possible

    def test_b_greater_than_t_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(t=1, b=2, num_objects=10)

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(t=-1, b=0, num_objects=3)
        with pytest.raises(ConfigurationError):
            SystemConfig(t=1, b=-1, num_objects=4)

    def test_no_readers_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(t=1, b=0, num_objects=3, num_readers=0)

    def test_too_few_objects_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(t=3, b=0, num_objects=3)

    def test_process_enumeration(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=2)
        assert len(config.objects()) == 4
        assert len(config.readers()) == 2
        assert len(config.clients()) == 3
        assert len(config.all_processes()) == 7

    def test_require_optimal_resilience(self):
        config = SystemConfig.with_objects(t=2, b=1, num_objects=5)
        with pytest.raises(ResilienceError, match="2t \\+ b \\+ 1"):
            config.require_optimal_resilience("test-protocol")
        SystemConfig.optimal(2, 1).require_optimal_resilience("ok")

    def test_describe_mentions_everything(self):
        text = SystemConfig.optimal(t=2, b=1, num_readers=2).describe()
        assert "S=6" in text and "t=2" in text and "b=1" in text

    def test_crash_only_configuration_allowed(self):
        config = SystemConfig.with_objects(t=2, b=0, num_objects=5)
        assert config.max_crash_only == 2
        assert config.quorum_size == 3
