"""Tests for the Proposition 1 machinery: blocks, driver, victims, figure."""

import pytest

from repro.config import SystemConfig
from repro.core.lower_bound import (ALL_RULES, BlockPartition,
                                    FastReadProtocol, LowerBoundDriver,
                                    ReplayResponder, RULE_HIGHEST_TS,
                                    RULE_MAJORITY, RULE_THRESHOLD, figure1,
                                    run_lower_bound)
from repro.core.regular import RegularStorageProtocol
from repro.core.safe import SafeStorageProtocol
from repro.errors import ConfigurationError, ProtocolError
from repro.spec import check_safety
from repro.system import StorageSystem
from repro.types import BOTTOM


class TestBlockPartition:
    def test_sizes_at_threshold(self):
        config = SystemConfig.at_impossibility_threshold(2, 2)
        part = BlockPartition.for_config(config)
        assert len(part.t1) == len(part.t2) == 2
        assert len(part.b1) == len(part.b2) == 2
        all_indices = part.t1 + part.t2 + part.b1 + part.b2
        assert sorted(all_indices) == list(range(8))

    def test_below_threshold_still_partitions(self):
        config = SystemConfig.with_objects(t=2, b=2, num_objects=7)
        part = BlockPartition.for_config(config)
        assert len(part.b1) >= 1 and len(part.b2) >= 1
        assert len(part.b1) <= 2 and len(part.b2) <= 2

    def test_rejects_b_zero(self):
        config = SystemConfig.with_objects(t=2, b=0, num_objects=6)
        with pytest.raises(ConfigurationError):
            BlockPartition.for_config(config)

    def test_rejects_above_threshold(self):
        config = SystemConfig.with_objects(t=1, b=1, num_objects=5)
        with pytest.raises(ConfigurationError):
            BlockPartition.for_config(config)

    def test_block_name_lookup(self):
        config = SystemConfig.at_impossibility_threshold(1, 1)
        part = BlockPartition.for_config(config)
        assert part.block_name(part.t1[0]) == "T1"
        assert part.block_name(part.b2[0]) == "B2"
        with pytest.raises(KeyError):
            part.block_name(99)


class TestVictims:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ProtocolError):
            FastReadProtocol("coin-flip")

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_benign_sequential_behaviour(self, rule):
        config = SystemConfig.at_impossibility_threshold(2, 1)
        system = StorageSystem(FastReadProtocol(rule), config)
        system.write("x")
        assert system.read(0) == "x"
        handle = system.read_handle(0)
        assert handle.rounds_used == 1  # it really is fast

    def test_threshold_rule_safe_above_bound(self):
        """At S = 2t+2b+1 the threshold fast read is actually safe."""
        config = SystemConfig.with_objects(t=1, b=1, num_objects=5)
        from repro.adversary import adversarial_suite
        for plan in adversarial_suite(config):
            system = StorageSystem(FastReadProtocol(RULE_THRESHOLD), config)
            plan.apply(system)
            system.write("a")
            system.read(0)
            system.write("b")
            system.read(0)
            check_safety(system.history).assert_ok()


class TestDriver:
    @pytest.mark.parametrize("t,b", [(1, 1), (2, 1), (2, 2)])
    def test_highest_ts_rule_dies_in_run5(self, t, b):
        report = run_lower_bound(lambda: FastReadProtocol(RULE_HIGHEST_TS),
                                 t=t, b=b)
        assert report.violated
        assert report.violation_run == "run5"
        assert report.runs["run5"].value == "v1"  # never written!

    @pytest.mark.parametrize("t,b", [(1, 1), (2, 1), (2, 2)])
    def test_majority_rule_dies_in_run4(self, t, b):
        report = run_lower_bound(lambda: FastReadProtocol(RULE_MAJORITY),
                                 t=t, b=b)
        assert report.violated
        assert report.violation_run == "run4"
        assert report.runs["run4"].value is BOTTOM  # missed a write

    def test_threshold_rule_dies_at_bound(self):
        report = run_lower_bound(lambda: FastReadProtocol(RULE_THRESHOLD),
                                 t=2, b=1)
        assert report.violated

    def test_indistinguishability_verified(self):
        report = run_lower_bound(lambda: FastReadProtocol(RULE_HIGHEST_TS),
                                 t=1, b=1)
        assert report.indistinguishable
        values = {report.runs[name].value for name in ("run3", "run4",
                                                       "run5")}
        assert len(values) == 1

    @pytest.mark.parametrize("factory", [SafeStorageProtocol,
                                         RegularStorageProtocol])
    def test_two_round_protocols_survive(self, factory):
        report = run_lower_bound(factory, t=1, b=1)
        assert not report.violated
        assert report.survived_by_blocking
        assert report.blocked_run == "run5"
        # and when they do answer (runs 3, 4), they answer correctly
        assert report.runs["run3"].value == "v1"
        assert report.runs["run4"].value == "v1"

    def test_report_renders(self):
        report = run_lower_bound(lambda: FastReadProtocol(RULE_MAJORITY),
                                 t=1, b=1)
        text = report.render()
        assert "SAFETY VIOLATED" in text
        assert "run4" in text

    def test_custom_written_value(self):
        report = run_lower_bound(lambda: FastReadProtocol(RULE_HIGHEST_TS),
                                 t=1, b=1, written_value="payload-42")
        assert report.runs["run5"].value == "payload-42"

    def test_smaller_s_also_covered(self):
        """The proof covers any S in [2t+2, 2t+2b]."""
        report = run_lower_bound(lambda: FastReadProtocol(RULE_MAJORITY),
                                 t=2, b=2, num_objects=7)
        assert report.violated


class TestReplayResponder:
    def test_replays_in_order_then_falls_back(self):
        from repro.core.lower_bound.victims import FastObject
        from repro.messages import ReadRequest, ReadAck
        from repro.types import reader
        config = SystemConfig.at_impossibility_threshold(1, 1)
        honest = FastObject(0, config)
        recorded = ["first", "second"]
        responder = ReplayResponder(honest, recorded)
        r1 = responder.on_message(reader(0), ReadRequest(1, 1, 0))
        r2 = responder.on_message(reader(0), ReadRequest(1, 2, 0))
        assert r1 == [(reader(0), "first")]
        assert r2 == [(reader(0), "second")]
        # exhausted: nothing more to say
        assert responder.on_message(reader(0), ReadRequest(1, 3, 0)) == []
        assert responder.replayed == 2


class TestFigure1:
    def test_contains_all_runs(self):
        art = figure1(t=1, b=1)
        for run in ("run1", "run2", "run3", "run4", "run5"):
            assert run in art

    def test_mentions_blocks_and_contradiction(self):
        art = figure1(t=2, b=2)
        assert "T1" in art and "B2" in art
        assert "CONTRADICTION" in art

    def test_parameterized_write_rounds(self):
        art = figure1(t=1, b=1, write_rounds=3)
        assert "wr1:3" in art
