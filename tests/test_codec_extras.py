"""Codec coverage for baseline and extension message vocabularies."""

import pytest

from repro.baselines.abd.protocol import (AbdQuery, AbdQueryAck, AbdStore,
                                          AbdStoreAck)
from repro.baselines.authenticated.protocol import (AuthQuery, AuthQueryAck,
                                                    AuthStore, AuthStoreAck)
from repro.core.atomic import WriteBack, WriteBackAck
from repro.crypto_sim import Signer
from repro.runtime import decode_message, encode_message, register_codec
from repro.types import (TimestampValue, TsrArray, WriteTuple,
                         initial_write_tuple)


def roundtrip(message):
    decoded = decode_message(encode_message(message))
    assert decoded == message
    return decoded


class TestAbdCodecs:
    def test_store(self):
        roundtrip(AbdStore(tsval=TimestampValue(5, "v"), nonce=9))

    def test_store_ack(self):
        roundtrip(AbdStoreAck(nonce=9, ts=5))

    def test_query_pair(self):
        roundtrip(AbdQuery(nonce=1))
        roundtrip(AbdQueryAck(nonce=1, tsval=TimestampValue(2, 17)))


class TestAuthCodecs:
    def test_signed_roundtrip_verifies(self):
        signer = Signer("writer")
        signed = signer.sign(TimestampValue(4, "v"))
        decoded = roundtrip(AuthStore(signed=signed, nonce=2))
        # the signature must still verify after the wire trip
        assert signer.public_key().verify(decoded.signed)

    def test_none_signed(self):
        roundtrip(AuthQueryAck(nonce=3, signed=None))

    def test_query_and_acks(self):
        roundtrip(AuthQuery(nonce=4))
        roundtrip(AuthStoreAck(nonce=4))


class TestAtomicCodecs:
    def test_write_back(self):
        c = WriteTuple(TimestampValue(3, "wb"),
                       TsrArray.empty(4, 2).with_entry(1, 1, 8))
        roundtrip(WriteBack(c=c, nonce=5, reader_index=1))

    def test_write_back_initial_tuple(self):
        roundtrip(WriteBack(c=initial_write_tuple(4, 1), nonce=1,
                            reader_index=0))

    def test_write_back_ack(self):
        roundtrip(WriteBackAck(nonce=5, object_index=2))


class TestRegisterCodec:
    def test_user_defined_type(self):
        from dataclasses import dataclass
        from repro.messages import Message

        @dataclass(frozen=True)
        class Probe(Message):
            label: str

        register_codec(Probe,
                       lambda m: {"label": m.label},
                       lambda d: Probe(label=d["label"]))
        roundtrip(Probe(label="hello"))


class TestFenceCodecs:
    def test_epoch_fence_roundtrip(self):
        from repro.messages import EpochFence, EpochFenceAck, WriteFenced
        roundtrip(EpochFence(nonce=7, epoch=12, register_id="k"))
        roundtrip(EpochFenceAck(nonce=7, object_index=2, epoch=12,
                                register_id="k"))
        roundtrip(WriteFenced(object_index=1, epoch=9, fence_epoch=12,
                              wid=3, nonce=5, register_id="k"))

    def test_write_fenced_writer_zero_omits_wid(self):
        import json
        from repro.messages import WriteFenced
        from repro.runtime import encode_message
        wire = json.loads(encode_message(
            WriteFenced(object_index=0, epoch=1, fence_epoch=4)))
        assert "wid" not in wire  # legacy-stable framing

    def test_abd_store_write_back_flag(self):
        import json
        from repro.runtime import encode_message
        plain = AbdStore(tsval=TimestampValue(5, "v"), nonce=9)
        wb = AbdStore(tsval=TimestampValue(5, "v"), nonce=9,
                      write_back=True)
        roundtrip(plain)
        roundtrip(wb)
        # Writer stores encode exactly as before the flag existed.
        assert "wb" not in json.loads(encode_message(plain))
        assert json.loads(encode_message(wb))["wb"] is True
