"""Unit tests for the message schema and size accounting."""

import pytest

from repro.messages import (HistoryEntry, HistoryReadAck, Pw, PwAck, ReadAck,
                            ReadRequest, W, WriteAck, estimate_size,
                            summarize)
from repro.types import (BOTTOM, INITIAL_TSVAL, TimestampValue, TsrArray,
                         WriteTuple, initial_write_tuple)


@pytest.fixture
def tsval():
    return TimestampValue(3, "hello")


@pytest.fixture
def wtuple(tsval):
    return WriteTuple(tsval, TsrArray.empty(4, 2))


class TestSizeEstimation:
    def test_scalars(self):
        assert estimate_size(5) == 8
        assert estimate_size("abcd") == 4
        assert estimate_size(None) == 1
        assert estimate_size(BOTTOM) == 1
        assert estimate_size(True) == 1

    def test_tsval(self, tsval):
        assert estimate_size(tsval) == 8 + 5

    def test_tsrarray_scales_with_dimensions(self):
        small = estimate_size(TsrArray.empty(2, 1))
        big = estimate_size(TsrArray.empty(8, 4))
        assert big == 16 * small

    def test_write_tuple_is_sum(self, tsval, wtuple):
        assert estimate_size(wtuple) == (estimate_size(tsval)
                                         + estimate_size(wtuple.tsrarray))

    def test_mapping_and_sequences(self):
        assert estimate_size({"a": 1}) == 1 + 8
        assert estimate_size((1, 2, 3)) == 24


class TestMessages:
    def test_kinds(self, tsval, wtuple):
        assert Pw(1, tsval, wtuple).kind == "Pw"
        assert ReadRequest(1, 5, 0).kind == "ReadRequest"

    def test_history_ack_size_grows_with_entries(self, tsval, wtuple):
        entry = HistoryEntry(pw=tsval, w=wtuple)
        small = HistoryReadAck(1, 1, 0, {1: entry})
        big = HistoryReadAck(1, 1, 0, {k: entry for k in range(1, 11)})
        assert big.estimated_size() > 5 * small.estimated_size()

    def test_history_ack_hash_and_eq(self, tsval, wtuple):
        entry = HistoryEntry(pw=tsval, w=wtuple)
        a = HistoryReadAck(1, 1, 0, {1: entry})
        b = HistoryReadAck(1, 1, 0, {1: entry})
        assert a == b
        assert hash(a) == hash(b)
        c = HistoryReadAck(2, 1, 0, {1: entry})
        assert a != c

    def test_messages_are_frozen(self, tsval, wtuple):
        message = Pw(1, tsval, wtuple)
        with pytest.raises(Exception):
            message.ts = 2  # type: ignore[misc]

    def test_summaries_are_informative(self, tsval, wtuple):
        assert "PW" in summarize(Pw(1, tsval, wtuple))
        assert "READ1" in summarize(ReadRequest(1, 7, 0))
        assert "s3" in summarize(WriteAck(ts=1, object_index=2))
        assert "history" in summarize(
            HistoryReadAck(1, 1, 0, {0: HistoryEntry(INITIAL_TSVAL, None)}))

    def test_read_request_optional_suffix(self):
        plain = ReadRequest(1, 5, 0)
        suffix = ReadRequest(1, 5, 0, from_ts=10)
        assert plain.from_ts is None
        # Legacy bare-epoch suffixes normalize to writer-0 tags.
        assert suffix.from_ts == (10, 0)
