"""Smoke tests over the experiment registry: every experiment reproduces.

These are the repository's acceptance tests: each run() both exercises a
large slice of the library and asserts the paper's claim held.  The heavy
sweeps live in benchmarks/; here we assert outcomes.
"""

import pytest

from repro.harness.experiments import REGISTRY, run_all
from repro.harness.experiments.base import ExperimentResult

EXPECTED_IDS = [f"E{n}" for n in range(1, 12)]


def test_registry_is_complete():
    run_all(ids=["E2"])  # force registration imports
    assert set(EXPECTED_IDS) <= set(REGISTRY)


@pytest.mark.parametrize("experiment_id", EXPECTED_IDS)
def test_experiment_reproduces(experiment_id):
    run_all(ids=["E2"])  # ensure registry populated
    result = REGISTRY[experiment_id]()
    assert isinstance(result, ExperimentResult)
    assert result.ok, result.render()
    assert result.paper_claim
    assert result.measured


def test_render_contains_verdict():
    run_all(ids=["E2"])
    result = REGISTRY["E6"]()
    text = result.render()
    assert "REPRODUCED" in text
    assert "paper:" in text and "measured:" in text
