"""WAL + snapshot durability (:mod:`repro.runtime.wal`).

Three families:

1. record framing: CRC-framed round-trips over generated frame
   payloads, including torn-tail truncation on arbitrary cut points;
2. frame codec: ``unpack_frame(pack_frame(...))`` over generated
   durable protocol messages;
3. snapshot + replay equivalence: an automaton recovered from
   snapshot + WAL holds the same top tag, value and fence state as the
   automaton that processed the original message stream.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.base import resolve_batch_handler
from repro.config import SystemConfig
from repro.core.regular import RegularStorageProtocol
from repro.messages import EpochFence, Pw, ReadRequest, TagQuery, W
from repro.runtime.wal import (DURABLE_TYPES, FrameCompactor,
                               ReplicaDurability, SnapshotStore,
                               WriteAheadLog, is_durable, pack_frame,
                               scan_records, unpack_frame)
from repro.types import (TimestampValue, TsrArray, WriteTuple, WriterTag,
                         obj, reader, writer)

CONFIG = SystemConfig.optimal(t=1, b=1, num_readers=2)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

registers = st.sampled_from(["k0", "key:1", "a/b·c"])
epochs = st.integers(min_value=1, max_value=2**32)
wids = st.integers(min_value=0, max_value=2**10)


def _tsval(ts, wid):
    return TimestampValue(ts, f"v{ts}.{wid}", wid=wid)


def _wtuple(ts, wid):
    tsr = TsrArray(tuple((0,) * CONFIG.num_readers
                         for _ in range(CONFIG.num_objects)))
    return WriteTuple(_tsval(ts, wid), tsr)


@st.composite
def durable_messages(draw):
    register_id = draw(registers)
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 2:
        return EpochFence(nonce=draw(st.integers(0, 2**20)),
                          epoch=draw(epochs), register_id=register_id,
                          hard=draw(st.booleans()),
                          lift=draw(st.booleans()))
    ts, wid = draw(epochs), draw(wids)
    cls = Pw if shape == 0 else W
    return cls(ts=ts, pw=_tsval(ts, wid), w=_wtuple(ts - 1 or 1, wid),
               register_id=register_id, wid=wid)


@st.composite
def senders(draw):
    role = draw(st.integers(0, 2))
    index = draw(st.integers(0, 8))
    return (writer, reader, obj)[role](index)


# ---------------------------------------------------------------------------
# 1. record framing
# ---------------------------------------------------------------------------


class TestRecordFraming:
    @given(payloads=st.lists(st.binary(min_size=0, max_size=200),
                             max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_scan_recovers_all_records(self, tmp_path_factory, payloads):
        path = str(tmp_path_factory.mktemp("wal") / "wal.bin")
        log = WriteAheadLog(path, fsync="never")
        for payload in payloads:
            log.append(payload)
        log.close()
        with open(path, "rb") as fh:
            recovered, good_end = scan_records(fh.read())
        assert recovered == payloads
        assert good_end == os.path.getsize(path)

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                    max_size=12),
           st.integers(min_value=1, max_value=10_000),
           st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_torn_tail_is_truncated(self, payloads, cut, flip):
        blob = b""
        boundaries = [0]
        log_records = []
        for payload in payloads:
            import struct
            import zlib
            blob += struct.pack("<II", len(payload),
                                zlib.crc32(payload)) + payload
            boundaries.append(len(blob))
            log_records.append(payload)
        cut = min(cut, len(blob))
        torn = blob[:cut]
        if flip and cut > 0:
            # also corrupt the final byte, not just shorten the file
            torn = torn[:-1] + bytes([torn[-1] ^ 0xFF])
        recovered, good_end = scan_records(torn)
        # the verified prefix is exactly the records wholly intact
        assert good_end in boundaries
        assert recovered == log_records[:boundaries.index(good_end)]

    def test_replay_truncates_file_and_appends_continue(self, tmp_path):
        path = str(tmp_path / "wal.bin")
        log = WriteAheadLog(path, fsync="always")
        log.append(b"one")
        log.append(b"two")
        log.close()
        # simulate a torn append
        with open(path, "ab") as fh:
            fh.write(b"\x99\x00\x00\x00garbage")
        log = WriteAheadLog(path, fsync="always")
        assert log.replay() == [b"one", b"two"]
        log.append(b"three")
        log.close()
        log = WriteAheadLog(path)
        assert log.replay() == [b"one", b"two", b"three"]
        log.close()

    def test_reset_empties_the_log(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal.bin"))
        log.append(b"gone")
        log.reset()
        assert log.replay() == []
        log.append(b"kept")
        assert log.replay() == [b"kept"]
        log.close()


# ---------------------------------------------------------------------------
# 2. frame codec
# ---------------------------------------------------------------------------


class TestFrameCodec:
    @given(senders(), durable_messages())
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_roundtrip(self, sender, message):
        sender2, message2 = unpack_frame(pack_frame(sender, message))
        assert sender2 == sender
        assert message2 == message

    def test_is_durable_classification(self):
        assert is_durable(Pw(ts=1, pw=_tsval(1, 0), w=_wtuple(1, 0)))
        assert is_durable(W(ts=1, pw=_tsval(1, 0), w=_wtuple(1, 0)))
        assert is_durable(EpochFence(nonce=0, epoch=3))
        assert not is_durable(TagQuery(nonce=0))
        assert not is_durable(ReadRequest(round_index=1, tsr=1,
                                          reader_index=0))

    @given(sender=senders(), message=durable_messages())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_durability_roundtrip_through_files(self, tmp_path_factory,
                                                sender, message):
        directory = str(tmp_path_factory.mktemp("replica"))
        store = ReplicaDurability(directory, fsync="never")
        store.log(sender, message)
        store.close()
        recovered = ReplicaDurability(directory).recover()
        assert recovered == [(sender, message)]


# ---------------------------------------------------------------------------
# 3. snapshot + replay equivalence
# ---------------------------------------------------------------------------


def _drive(automaton, stream, durability=None):
    """Feed ``(sender, message)`` pairs, optionally logging them."""
    handler = resolve_batch_handler(automaton)
    for sender, message in stream:
        if durability is not None:
            durability.log(sender, message)
        handler(sender, (message,), [])


def _write_stream(keys, writes_per_key):
    stream = []
    for key in keys:
        for ts in range(1, writes_per_key + 1):
            pw, w = _tsval(ts, 0), _wtuple(max(ts - 1, 1), 0)
            stream.append((writer(0), Pw(ts=ts, pw=pw, w=w,
                                         register_id=key)))
            stream.append((writer(0), W(ts=ts, pw=pw, w=_wtuple(ts, 0),
                                        register_id=key)))
    return stream


class TestSnapshotReplayEquivalence:
    def _fresh(self):
        return RegularStorageProtocol().make_objects(CONFIG)[0]

    def _assert_equivalent(self, reference, recovered, keys):
        for key in keys:
            ref, rec = reference._slot(key), recovered._slot(key)
            assert rec.top_tag() == ref.top_tag()
            top = ref.top_tag()
            assert rec.history[top] == ref.history[top]

    def test_wal_only_replay_matches(self, tmp_path):
        keys = ["a", "b", "c"]
        stream = _write_stream(keys, writes_per_key=5)
        durability = ReplicaDurability(str(tmp_path), fsync="never")
        reference = self._fresh()
        _drive(reference, stream, durability)
        durability.close()

        recovered_store = ReplicaDurability(str(tmp_path))
        recovered = self._fresh()
        _drive(recovered, recovered_store.recover())
        self._assert_equivalent(reference, recovered, keys)

    def test_snapshot_plus_wal_replay_matches(self, tmp_path):
        keys = ["a", "b"]
        durability = ReplicaDurability(str(tmp_path), fsync="never")
        reference = self._fresh()
        # first burst -> snapshot, second burst stays in the WAL
        first = _write_stream(keys, writes_per_key=4)
        _drive(reference, first, durability)
        assert durability.take_snapshot() > 0
        second = []
        for key in keys:
            for ts in range(5, 8):
                pw, w = _tsval(ts, 0), _wtuple(ts - 1, 0)
                second.append((writer(0), Pw(ts=ts, pw=pw, w=w,
                                             register_id=key)))
                second.append((writer(0), W(ts=ts, pw=pw,
                                            w=_wtuple(ts, 0),
                                            register_id=key)))
        _drive(reference, second, durability)
        durability.close()

        recovered_store = ReplicaDurability(str(tmp_path))
        recovered = self._fresh()
        _drive(recovered, recovered_store.recover())
        self._assert_equivalent(reference, recovered, keys)

    def test_snapshot_bounds_state_and_truncates_wal(self, tmp_path):
        durability = ReplicaDurability(str(tmp_path), fsync="never")
        _drive(self._fresh(), _write_stream(["k"], 50), durability)
        assert durability.records_since_snapshot == 100
        frames = durability.take_snapshot()
        # 50 writes compact to the top Pw + W of the one register
        assert frames == 2
        assert durability.records_since_snapshot == 0
        assert durability.wal.replay() == []
        durability.close()

    def test_fence_state_survives_recovery(self, tmp_path):
        durability = ReplicaDurability(str(tmp_path), fsync="never")
        reference = self._fresh()
        stream = _write_stream(["k"], 3) + [
            (writer(0), EpochFence(nonce=1, epoch=9, register_id="k")),
        ]
        _drive(reference, stream, durability)
        durability.take_snapshot()
        durability.close()

        recovered = self._fresh()
        _drive(recovered, ReplicaDurability(str(tmp_path)).recover())
        # a write below the recovered fence is refused on both automata
        low = Pw(ts=5, pw=_tsval(5, 0), w=_wtuple(4, 0), register_id="k")
        for automaton in (reference, recovered):
            sink = []
            resolve_batch_handler(automaton)(writer(0), (low,), sink)
            kinds = [type(m).__name__ for m in sink]
            assert "WriteFenced" in kinds, kinds

    def test_fence_lift_clears_digest(self):
        compactor = FrameCompactor()
        compactor.observe(writer(0), EpochFence(nonce=1, epoch=9,
                                                register_id="k",
                                                hard=True))
        compactor.observe(writer(0), EpochFence(nonce=2, epoch=0,
                                                register_id="k",
                                                lift=True))
        frames = compactor.snapshot_frames()
        assert frames == []  # nothing durable left for the register

    def test_corrupt_snapshot_degrades_to_prefix(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        frames = [pack_frame(writer(0), m)
                  for _, m in _write_stream(["k"], 2)]
        store.save(frames)
        with open(store.path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)[0]
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last ^ 0xFF]))
        loaded = store.load()
        assert loaded == frames[:-1]


class TestConfigKnobs:
    def test_deployment_validation(self):
        with pytest.raises(Exception):
            SystemConfig.optimal(t=1, b=1).with_deployment("clustered")
        with pytest.raises(Exception):
            SystemConfig.optimal(t=1, b=1).with_deployment(
                "multiproc", wal_fsync="sometimes")
        config = SystemConfig.optimal(t=1, b=1).with_deployment(
            "multiproc", wal_fsync="always")
        assert config.deployment == "multiproc"
        assert config.wal_fsync == "always"
        assert config.quorum_size == 3  # the rest of the config is kept

    def test_fsync_policies_all_replayable(self, tmp_path):
        for fsync in ("always", "batch", "never"):
            path = str(tmp_path / f"wal-{fsync}.bin")
            log = WriteAheadLog(path, fsync=fsync)
            for i in range(70):  # crosses the batch-sync interval
                log.append(b"x%d" % i)
            log.close()
            log = WriteAheadLog(path)
            assert len(log.replay()) == 70
            log.close()
