"""Binary wire codec + vector round engine tests.

Covers the PR-5 fast wire path end to end:

* property-based binary ⟷ JSON codec equivalence over every message
  type (tagged MWMR frames, legacy frames, ``Batch`` envelopes);
* fuzzed truncated/corrupted binary frames must fail with
  :class:`TransportError`, never another exception;
* legacy JSON frames (recorded literals) keep decoding;
* the vector round engine: ``MuxClientHost.run_many`` under faults,
  deterministic ``SimKernel.invoke_many``, the TCP tier in both wire
  formats (and mixed), and the ``handle_batch`` consistency guard.
"""

import asyncio
import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.base import (ObjectAutomaton, resolve_batch_handler)
from repro.adversary.byzantine import StaleReplier, ValueForger
from repro.config import SystemConfig
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularStorageProtocol)
from repro.core.regular.object import RegularObject
from repro.core.safe import SafeStorageProtocol
from repro.errors import FencedWriteError, TransportError
from repro.messages import (Batch, EpochFence, EpochFenceAck, HistoryEntry,
                            HistoryReadAck, Pw, PwAck, ReadAck, ReadRequest,
                            TagQuery, TagQueryAck, W, WriteAck, WriteFenced)
from repro.runtime.codec import (decode_message, decode_message_auto,
                                 decode_message_binary, encode_message,
                                 encode_message_binary)
from repro.runtime.hosts import MuxClientHost, ObjectHost
from repro.runtime.memnet import AsyncNetwork
from repro.runtime.tcp import TcpObjectServer, TcpStorageClient
from repro.service import MultiRegisterStore
from repro.sim.kernel import SimKernel
from repro.types import (BOTTOM, TAG0, TimestampValue, TsrArray, WRITER,
                         WriterTag, WriteTuple, initial_write_tuple, obj,
                         reader, writer)

CONFIG = SystemConfig.optimal(t=1, b=1, num_readers=2)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# hypothesis strategies over the wire vocabulary
# ---------------------------------------------------------------------------

registers = st.sampled_from(["r0", "key:1", "key:2", "a-long/register·id"])
epochs = st.integers(min_value=0, max_value=2**40)
wids = st.integers(min_value=0, max_value=2**20)
indexes = st.integers(min_value=0, max_value=64)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=24),
    st.binary(max_size=24),
)


@st.composite
def tsvals(draw, min_ts=1):
    ts = draw(st.integers(min_value=min_ts, max_value=2**40))
    value = draw(scalars)
    if value is BOTTOM or (ts > 0 and isinstance(value, type(BOTTOM))):
        value = "v"
    if value is None:
        value = 0
    return TimestampValue(ts, value, wid=draw(wids))


@st.composite
def tsr_arrays(draw):
    num_objects = draw(st.integers(min_value=1, max_value=6))
    num_readers = draw(st.integers(min_value=1, max_value=3))
    rows = tuple(
        tuple(draw(st.one_of(st.none(),
                             st.integers(min_value=0, max_value=2**40)))
              for _ in range(num_readers))
        for _ in range(num_objects))
    return TsrArray(rows)


@st.composite
def wtuples(draw):
    return WriteTuple(draw(tsvals()), draw(tsr_arrays()))


@st.composite
def history_entries(draw):
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:  # provisional: PW seen, W not yet
        return HistoryEntry(pw=draw(tsvals()), w=None)
    if shape == 1:  # complete, pw echoing the tuple's pair (the norm)
        w = draw(wtuples())
        return HistoryEntry(pw=w.tsval, w=w)
    return HistoryEntry(pw=draw(tsvals()), w=draw(wtuples()))


@st.composite
def histories(draw):
    tags = draw(st.lists(
        st.tuples(epochs, wids), min_size=0, max_size=6, unique=True))
    return {WriterTag(*tag): draw(history_entries()) for tag in tags}


@st.composite
def messages(draw):
    kind = draw(st.integers(min_value=0, max_value=11))
    register_id = draw(registers)
    if kind == 0:
        tsval = draw(tsvals())
        return Pw(ts=tsval.ts, pw=tsval, w=draw(wtuples()),
                  register_id=register_id, wid=tsval.wid)
    if kind == 1:
        tsval = draw(tsvals())
        return W(ts=tsval.ts, pw=tsval, w=draw(wtuples()),
                 register_id=register_id, wid=tsval.wid)
    if kind == 2:
        return PwAck(ts=draw(epochs), object_index=draw(indexes),
                     tsr=tuple(draw(st.lists(
                         st.one_of(st.none(), epochs), max_size=4))),
                     register_id=register_id, wid=draw(wids))
    if kind == 3:
        return WriteAck(ts=draw(epochs), object_index=draw(indexes),
                        register_id=register_id, wid=draw(wids))
    if kind == 4:
        return TagQuery(nonce=draw(epochs), register_id=register_id)
    if kind == 5:
        return TagQueryAck(nonce=draw(epochs),
                           object_index=draw(indexes),
                           epoch=draw(epochs), wid=draw(wids),
                           register_id=register_id)
    if kind == 6:
        return EpochFence(nonce=draw(epochs), epoch=draw(epochs),
                          register_id=register_id,
                          hard=draw(st.booleans()),
                          lift=draw(st.booleans()))
    if kind == 7:
        return EpochFenceAck(nonce=draw(epochs),
                             object_index=draw(indexes),
                             epoch=draw(epochs),
                             register_id=register_id)
    if kind == 8:
        return WriteFenced(object_index=draw(indexes),
                           epoch=draw(epochs),
                           fence_epoch=draw(epochs), wid=draw(wids),
                           nonce=draw(epochs), register_id=register_id)
    if kind == 9:
        from_ts = draw(st.one_of(
            st.none(), st.tuples(epochs, wids).map(lambda t: WriterTag(*t))))
        return ReadRequest(round_index=draw(st.sampled_from([1, 2])),
                           tsr=draw(epochs), reader_index=draw(indexes),
                           from_ts=from_ts, register_id=register_id)
    if kind == 10:
        return ReadAck(round_index=draw(st.sampled_from([1, 2])),
                       tsr=draw(epochs), object_index=draw(indexes),
                       pw=draw(tsvals()), w=draw(wtuples()),
                       register_id=register_id)
    return HistoryReadAck(round_index=draw(st.sampled_from([1, 2])),
                          tsr=draw(epochs), object_index=draw(indexes),
                          history=draw(histories()),
                          register_id=register_id)


class TestCodecProperties:
    @settings(max_examples=200, deadline=None)
    @given(messages())
    def test_binary_json_equivalence(self, message):
        """Both codecs round-trip to the same (equal) message."""
        via_json = decode_message(encode_message(message))
        via_binary = decode_message_binary(encode_message_binary(message))
        assert via_json == message
        assert via_binary == message
        assert via_binary == via_json

    @settings(max_examples=60, deadline=None)
    @given(st.lists(messages(), min_size=0, max_size=5))
    def test_batch_equivalence(self, parts):
        batch = Batch(messages=tuple(parts))
        assert decode_message(encode_message(batch)) == batch
        assert decode_message_binary(encode_message_binary(batch)) == batch

    @settings(max_examples=80, deadline=None)
    @given(messages(), st.data())
    def test_truncated_frames_rejected(self, message, data):
        """Any strict prefix either fails with TransportError or (for a
        prefix that is itself a complete frame) decodes -- no other
        exception type may escape."""
        wire = encode_message_binary(message)
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(wire) - 1))
        try:
            decode_message_binary(wire[:cut])
        except TransportError:
            pass

    @settings(max_examples=80, deadline=None)
    @given(messages(), st.data())
    def test_corrupted_frames_never_crash(self, message, data):
        """Single-byte corruption decodes, raises TransportError, or
        (on payload bytes) yields a different message -- never an
        arbitrary exception."""
        wire = bytearray(encode_message_binary(message))
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(wire) - 1))
        wire[position] ^= data.draw(st.integers(min_value=1,
                                                max_value=255))
        try:
            decode_message_binary(bytes(wire))
        except TransportError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(messages())
    def test_auto_decode_sniffs_format(self, message):
        assert decode_message_auto(encode_message_binary(message)) \
            == message
        assert decode_message_auto(
            encode_message(message).encode("utf-8")) == message


class TestLegacyFrames:
    def test_legacy_json_frames_still_decode(self):
        """Pre-binary recorded frames (no register, no wid) decode to
        DEFAULT_REGISTER / writer-0 messages, byte-for-byte as before."""
        legacy = '{"__kind":"WriteAck","i":2,"ts":7}'
        message = decode_message(legacy)
        assert message == WriteAck(ts=7, object_index=2,
                                   register_id="r0", wid=0)
        assert decode_message_auto(legacy.encode()) == message
        legacy_read = ('{"__kind":"ReadRequest","from_ts":3,"j":0,'
                       '"k":2,"tsr":9}')
        request = decode_message(legacy_read)
        assert request.from_ts == WriterTag(3, 0)
        assert request.register_id == "r0"

    def test_nested_string_value_keeps_table_in_sync(self):
        """Regression: a write tuple whose *nested* value hides a string
        must not take the context-independent cached encoding -- that
        would desynchronize the frame's shared string table and corrupt
        later strings in the same frame."""
        arr = TsrArray.empty(2, 1)
        nested = WriteTuple(
            TimestampValue(7, TimestampValue(5, "shared-string")), arr)
        plain = initial_write_tuple(2, 1)
        batch = Batch(messages=(
            Pw(ts=7, pw=TimestampValue(7, "x"), w=nested,
               register_id="regA"),
            Pw(ts=1, pw=TimestampValue(1, "y"), w=plain,
               register_id="regB"),
            Pw(ts=2, pw=TimestampValue(2, "z"), w=plain,
               register_id="regB"),
        ))
        decoded = decode_message_binary(encode_message_binary(batch))
        assert decoded == batch
        assert decoded.messages[2].register_id == "regB"

    def test_binary_magic_never_opens_json(self):
        assert encode_message_binary(TagQuery(nonce=1))[0] == 0xB1
        assert encode_message(TagQuery(nonce=1))[0] == "{"


class TestVectorEngine:
    def test_run_many_vector_rides_one_frame_per_replica_step(self):
        """256 keys' write round must cost S frames, not 256 * S."""
        async def scenario():
            store = MultiRegisterStore(CachedRegularStorageProtocol(),
                                       SystemConfig.optimal(
                                           t=1, b=1, num_readers=1))
            await store.start()
            keys = [f"k{i}" for i in range(64)]
            before = store.network.messages_sent
            await store.write_many({k: f"v-{k}" for k in keys})
            sent = store.network.messages_sent - before
            reads = await store.read_many(keys)
            await store.stop()
            assert reads == {k: f"v-{k}" for k in keys}
            # Write = 2 rounds broadcast (2*S=8 frames) + acks (one
            # reply frame per object per burst).  Allow slack for burst
            # splits, but a per-key framing regression (64*4 and up)
            # must fail loudly.
            assert sent < 64, f"write batch cost {sent} frames"

        run(scenario())

    def test_vector_write_read_with_byzantine_replica(self):
        """The vector path keeps the protocol's fault tolerance: one
        forging replica cannot corrupt batched reads."""
        async def scenario():
            config = SystemConfig.optimal(t=1, b=1, num_readers=1)
            store = MultiRegisterStore(RegularStorageProtocol(), config)
            await store.start()
            keys = [f"k{i}" for i in range(16)]
            await store.write_many({k: f"v-{k}" for k in keys})
            store.make_byzantine(0, ValueForger(
                store.object_automaton(0), config,
                forged_value="FORGED"))
            reads = await store.read_many(keys)
            await store.stop()
            assert reads == {k: f"v-{k}" for k in keys}

        run(scenario())

    def test_vector_batch_fails_fast_on_fence(self):
        """A fenced register fails the whole batch with the fence error
        (run_many's cancel-siblings contract)."""
        async def scenario():
            config = SystemConfig.optimal(t=1, b=1, num_readers=1)
            store = MultiRegisterStore(CachedRegularStorageProtocol(),
                                       config)
            await store.start()
            await store.write_many({"a": 1, "b": 2})
            # Hard-fence register "a" at every replica.
            for i in range(config.num_objects):
                automaton = store.object_automaton(i)
                automaton.hard_fences.add("a")
                automaton.fences["a"] = 10**6
            with pytest.raises(FencedWriteError):
                await store.write_many({"a": 10, "b": 20})
            # The fenced batch must leave both registers writable for
            # later (unfenced) work.
            for i in range(config.num_objects):
                automaton = store.object_automaton(i)
                automaton.hard_fences.discard("a")
                automaton.fences.pop("a", None)
            await store.write_many({"a": 30, "b": 40})
            reads = await store.read_many(["a", "b"])
            await store.stop()
            assert reads == {"a": 30, "b": 40}

        run(scenario())

    def test_sim_invoke_many_vector_rounds(self):
        """The deterministic twin: batched writes+reads as Batch frames
        through the kernel, same results, batch envelopes on the wire."""
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        protocol = CachedRegularStorageProtocol()
        kernel = SimKernel(config)
        kernel.register_objects(protocol.make_objects(config))
        states = protocol.client_states(config)
        keys = [f"k{i}" for i in range(12)]
        writes = kernel.invoke_many([
            protocol.make_write_to(states.writer(k), f"v-{k}", k)
            for k in keys])
        kernel.run_until(lambda: all(h.done for h in writes))
        assert all(h.result == "OK" for h in writes)
        read_handles = kernel.invoke_many([
            protocol.make_read_from(states.reader(k), k) for k in keys])
        kernel.run_until(lambda: all(h.done for h in read_handles))
        assert [h.result for h in read_handles] == \
            [f"v-{k}" for k in keys]
        batched = [e for e in kernel.trace
                   if e.payload is not None
                   and isinstance(e.payload, Batch)]
        assert batched, "vector rounds must ride Batch envelopes"

    def test_sim_invoke_many_with_stale_replier(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        protocol = RegularStorageProtocol()
        kernel = SimKernel(config)
        automata = protocol.make_objects(config)
        kernel.register_objects(automata)
        kernel.make_byzantine(obj(0), StaleReplier(automata[0]))
        states = protocol.client_states(config)
        keys = [f"k{i}" for i in range(8)]
        writes = kernel.invoke_many([
            protocol.make_write_to(states.writer(k), f"v-{k}", k)
            for k in keys])
        kernel.run_until(lambda: all(h.done for h in writes))
        reads = kernel.invoke_many([
            protocol.make_read_from(states.reader(k), k) for k in keys])
        kernel.run_until(lambda: all(h.done for h in reads))
        assert [h.result for h in reads] == [f"v-{k}" for k in keys]

    def test_resolve_batch_handler_guards_overrides(self):
        """A subclass overriding on_message below a specialized
        handle_batch must not inherit the fast path silently."""
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        plain = RegularObject(0, config)
        assert resolve_batch_handler(plain).__func__ \
            is RegularObject.handle_batch

        class Lying(RegularObject):
            def on_message(self, sender, message):
                return []  # drops everything

        lying = Lying(0, config)
        handler = resolve_batch_handler(lying)
        sink = []
        leftovers = handler(
            reader(0), (ReadRequest(round_index=1, tsr=1,
                                    reader_index=0),), sink)
        # The override's semantics (silence) must win over the parent's
        # fast path, which would have produced an ack.
        assert sink == [] and (leftovers or []) == []


class TestTcpWireFormats:
    @pytest.mark.parametrize("wire_format", ["binary", "json"])
    def test_full_protocol_over_sockets(self, wire_format):
        async def scenario():
            protocol = CachedRegularStorageProtocol()
            config = SystemConfig.optimal(t=1, b=1, num_readers=1)
            servers = [TcpObjectServer(o, wire_format=wire_format)
                       for o in protocol.make_objects(config)]
            ports = [await s.start() for s in servers]
            endpoints = [("127.0.0.1", p) for p in ports]
            states = protocol.client_states(config)
            writer_client = TcpStorageClient(WRITER, endpoints,
                                             wire_format=wire_format)
            reader_client = TcpStorageClient(reader(0), endpoints,
                                             wire_format=wire_format)
            await writer_client.connect()
            await reader_client.connect()
            try:
                keys = [f"k{i}" for i in range(6)]
                results = await writer_client.run_many([
                    protocol.make_write_to(states.writer(k), f"v-{k}", k)
                    for k in keys])
                assert results == ["OK"] * len(keys)
                reads = await reader_client.run_many([
                    protocol.make_read_from(states.reader(k), k)
                    for k in keys])
                assert reads == [f"v-{k}" for k in keys]
            finally:
                await writer_client.close()
                await reader_client.close()
                for server in servers:
                    await server.stop()

        run(scenario())

    def test_mixed_formats_on_one_deployment(self):
        """A JSON client and a binary client against the same binary
        servers: inbound sniffing keeps old peers working."""
        async def scenario():
            protocol = CachedRegularStorageProtocol()
            config = SystemConfig.optimal(t=1, b=1, num_readers=2)
            servers = [TcpObjectServer(o)
                       for o in protocol.make_objects(config)]
            ports = [await s.start() for s in servers]
            endpoints = [("127.0.0.1", p) for p in ports]
            states = protocol.client_states(config)
            legacy_writer = TcpStorageClient(WRITER, endpoints,
                                             wire_format="json")
            modern_reader = TcpStorageClient(reader(0), endpoints,
                                             wire_format="binary")
            await legacy_writer.connect()
            await modern_reader.connect()
            try:
                assert await legacy_writer.run(
                    protocol.make_write(
                        states.writer("r0"), "mixed")) == "OK"
                assert await modern_reader.run(
                    protocol.make_read(states.reader("r0"))) == "mixed"
            finally:
                await legacy_writer.close()
                await modern_reader.close()
                for server in servers:
                    await server.stop()

        run(scenario())

    def test_json_wire_format_config_validates(self):
        with pytest.raises(Exception):
            SystemConfig.optimal(t=1, b=1).__class__(
                t=1, b=1, num_objects=4, wire_format="msgpack")
        config = dataclasses.replace(
            SystemConfig.optimal(t=1, b=1), wire_format="json")
        assert config.wire_format == "json"
