"""Integration + unit tests for the regular storage (Section 5)."""

import pytest

from repro.adversary import adversarial_suite, max_byzantine
from repro.adversary.byzantine import HistoryForger
from repro.config import SystemConfig
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularObject, RegularStorageProtocol)
from repro.core.regular.evidence import RegularEvidence
from repro.messages import (HistoryEntry, HistoryReadAck, Pw, ReadRequest, W)
from repro.sim import LifoScheduler, RandomScheduler
from repro.spec import check_regularity, check_round_complexity
from repro.system import StorageSystem
from repro.types import (BOTTOM, INITIAL_TSVAL, TimestampValue, TsrArray,
                         WRITER, WriteTuple, obj, reader)


def make_pair(ts, value="v"):
    return TimestampValue(ts, value)


def make_tuple(config, ts, value="v"):
    return WriteTuple(make_pair(ts, value),
                      TsrArray.empty(config.num_objects,
                                     config.num_readers))


@pytest.fixture
def config():
    return SystemConfig.optimal(t=1, b=1, num_readers=1)


class TestRegularObject:
    def test_initial_history_has_slot_zero(self, config):
        object_ = RegularObject(0, config)
        assert (0, 0) in object_.history
        assert object_.history[0, 0].pw == INITIAL_TSVAL

    def test_pw_records_provisional_and_backfills(self, config):
        object_ = RegularObject(0, config)
        # simulate: write 1's PW carries w_0; write 2's PW carries w_1
        w1 = make_tuple(config, 1, "a")
        object_.on_message(WRITER, Pw(1, make_pair(1, "a"),
                                      object_.history[0, 0].w))
        assert object_.history[1, 0].w is None          # provisional
        object_.on_message(WRITER, Pw(2, make_pair(2, "b"), w1))
        assert object_.history[1, 0].w == w1            # back-filled
        assert object_.history[2, 0].pw == make_pair(2, "b")

    def test_w_completes_slot(self, config):
        object_ = RegularObject(0, config)
        w1 = make_tuple(config, 1, "a")
        object_.on_message(WRITER, Pw(1, make_pair(1, "a"),
                                      object_.history[0, 0].w))
        object_.on_message(WRITER, W(1, make_pair(1, "a"), w1))
        assert object_.history[1, 0].w == w1

    def test_read_ships_full_history(self, config):
        object_ = RegularObject(0, config)
        object_.on_message(WRITER, Pw(1, make_pair(1, "a"),
                                      object_.history[0, 0].w))
        [(_, ack)] = object_.on_message(reader(0),
                                        ReadRequest(1, 1, reader_index=0))
        assert isinstance(ack, HistoryReadAck)
        assert set(ack.history) == {(0, 0), (1, 0)}

    def test_read_ships_suffix_with_from_ts(self, config):
        object_ = RegularObject(0, config)
        for ts in range(1, 6):
            object_.on_message(WRITER, W(ts, make_pair(ts, f"v{ts}"),
                                         make_tuple(config, ts, f"v{ts}")))
        [(_, ack)] = object_.on_message(
            reader(0), ReadRequest(1, 1, reader_index=0, from_ts=4))
        assert set(ack.history) == {(4, 0), (5, 0)}

    def test_stale_read_request_ignored(self, config):
        object_ = RegularObject(0, config)
        object_.on_message(reader(0), ReadRequest(1, 5, reader_index=0))
        assert object_.on_message(reader(0),
                                  ReadRequest(1, 5, reader_index=0)) == []


class TestRegularEvidence:
    @pytest.fixture
    def evidence(self):
        return RegularEvidence(elimination_threshold=3,
                               confirmation_threshold=2)

    def test_candidates_from_round1_w_entries(self, evidence, config):
        c = make_tuple(config, 1)
        evidence.record(1, 0, {1: HistoryEntry(pw=c.tsval, w=c)})
        assert c in evidence.candidates()

    def test_round2_contributes_no_candidates(self, evidence, config):
        c = make_tuple(config, 1)
        evidence.record(2, 0, {1: HistoryEntry(pw=c.tsval, w=c)})
        assert evidence.candidates() == set()

    def test_duplicate_round_record_ignored(self, evidence, config):
        c = make_tuple(config, 1)
        assert evidence.record(1, 0, {1: HistoryEntry(pw=c.tsval, w=c)})
        assert not evidence.record(1, 0, {})

    def test_invalid_counts_missing_and_mismatched(self, evidence, config):
        c = make_tuple(config, 1, "real")
        fake = make_tuple(config, 1, "fake")
        evidence.record(1, 0, {1: HistoryEntry(pw=fake.tsval, w=fake)})
        evidence.record(1, 1, {})                       # missing slot
        evidence.record(1, 2, {1: HistoryEntry(pw=c.tsval, w=c)})
        # objects 1 (missing) + 2 (different tuple) + 0 (pw mismatch is
        # not: object 0 actually reported fake itself) -> for c: 0,1 vote
        voters_c = evidence.invalid_voters(c)
        assert voters_c == {0, 1}
        voters_fake = evidence.invalid_voters(fake)
        assert voters_fake == {1, 2}

    def test_safe_via_pw_or_w(self, evidence, config):
        c = make_tuple(config, 2, "x")
        evidence.record(1, 0, {2: HistoryEntry(pw=c.tsval, w=c)})
        evidence.record(2, 1, {2: HistoryEntry(pw=c.tsval, w=None)})
        assert evidence.is_safe(c)

    def test_returnable_highest_safe(self, evidence, config):
        low = make_tuple(config, 1, "old")
        high = make_tuple(config, 2, "new")
        for i in (0, 1):
            evidence.record(1, i, {
                1: HistoryEntry(pw=low.tsval, w=low),
                2: HistoryEntry(pw=high.tsval, w=high),
            })
        assert evidence.returnable() == high


class TestRegularSemantics:
    @pytest.mark.parametrize("protocol_cls", [RegularStorageProtocol,
                                              CachedRegularStorageProtocol])
    def test_sequential_reads(self, protocol_cls):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        system = StorageSystem(protocol_cls(), config)
        assert system.read(0) is BOTTOM
        system.write("v1")
        assert system.read(0) == "v1"
        system.write("v2")
        system.write("v3")
        assert system.read(1) == "v3"
        check_regularity(system.history).assert_ok()

    @pytest.mark.parametrize("protocol_cls", [RegularStorageProtocol,
                                              CachedRegularStorageProtocol])
    def test_rounds_bounded_by_two(self, protocol_cls):
        config = SystemConfig.optimal(t=2, b=1, num_readers=1)
        system = StorageSystem(protocol_cls(), config)
        system.write("a")
        system.read(0)
        check_round_complexity(system.history, 2, 2).assert_ok()

    @pytest.mark.parametrize("protocol_cls", [RegularStorageProtocol,
                                              CachedRegularStorageProtocol])
    def test_regularity_under_adversarial_suite(self, protocol_cls):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        for plan in adversarial_suite(config):
            system = StorageSystem(protocol_cls(), config,
                                   scheduler=LifoScheduler())
            plan.apply(system)
            system.write("a")
            system.read(0)
            system.write("b")
            system.read(1)
            check_regularity(system.history).assert_ok()

    def test_history_forger_cannot_rewrite_the_past(self):
        config = SystemConfig.optimal(t=2, b=1, num_readers=1)
        system = StorageSystem(RegularStorageProtocol(), config)
        inner = system.kernel.object_automaton(obj(0))
        system.kernel.make_byzantine(
            obj(0), HistoryForger(inner, config, target_ts=1,
                                  forged_value="REWRITTEN"))
        system.write("genuine")
        assert system.read(0) == "genuine"

    def test_concurrent_read_write_regular(self):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        for seed in range(5):
            system = StorageSystem(RegularStorageProtocol(), config,
                                   scheduler=RandomScheduler(seed))
            system.write("v1")
            write = system.invoke_write("v2")
            read = system.invoke_read(0)
            system.run_until_done(write, read)
            # regular: a concurrent read returns v1 or v2, never ⊥
            assert read.result in ("v1", "v2")
            check_regularity(system.history).assert_ok()


class TestCachedVariant:
    def test_cache_updates_after_read(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        system = StorageSystem(CachedRegularStorageProtocol(), config)
        system.write("v1")
        system.read(0)
        state = system.reader_states[0]
        assert state.cache_ts == 1
        assert state.cache_value == "v1"

    def test_suffix_shrinks_with_cache(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        system = StorageSystem(CachedRegularStorageProtocol(), config)
        for k in range(1, 11):
            system.write(f"v{k}")
        first = system.read_handle(0)
        second = system.read_handle(0)
        assert (second.operation.history_entries_received
                < first.operation.history_entries_received)

    def test_full_history_protocol_never_uses_suffix(self):
        config = SystemConfig.optimal(t=1, b=1, num_readers=1)
        system = StorageSystem(RegularStorageProtocol(), config)
        for k in range(1, 6):
            system.write(f"v{k}")
        h1 = system.read_handle(0)
        h2 = system.read_handle(0)
        assert (h1.operation.history_entries_received
                == h2.operation.history_entries_received)
