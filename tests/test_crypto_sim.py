"""Tests for the simulated signature substrate."""

import pytest

from repro.crypto_sim import (AuthenticationError, PublicKey, SignedValue,
                              Signer, forge_attempt)
from repro.types import BOTTOM, TimestampValue


class TestSigning:
    def test_sign_verify_roundtrip(self):
        signer = Signer("writer")
        signed = signer.sign(TimestampValue(3, "v"))
        assert signer.public_key().verify(signed)

    def test_signatures_deterministic(self):
        a = Signer("writer", seed=1).sign("x")
        b = Signer("writer", seed=1).sign("x")
        assert a.tag == b.tag

    def test_different_seeds_different_keys(self):
        signed = Signer("writer", seed=1).sign("x")
        assert not Signer("writer", seed=2).public_key().verify(signed)

    def test_bottom_signable(self):
        signer = Signer("w")
        assert signer.public_key().verify(signer.sign(BOTTOM))

    def test_unsupported_type_refused(self):
        with pytest.raises(AuthenticationError):
            Signer("w").sign(object())


class TestVerification:
    def test_tampered_payload_rejected(self):
        signer = Signer("writer")
        signed = signer.sign(TimestampValue(3, "v"))
        tampered = SignedValue(payload=TimestampValue(3, "EVIL"),
                               key_id=signed.key_id, tag=signed.tag)
        assert not signer.public_key().verify(tampered)

    def test_timestamp_tampering_rejected(self):
        signer = Signer("writer")
        signed = signer.sign(TimestampValue(3, "v"))
        tampered = SignedValue(payload=TimestampValue(99, "v"),
                               key_id=signed.key_id, tag=signed.tag)
        assert not signer.public_key().verify(tampered)

    def test_wrong_key_id_rejected(self):
        signer = Signer("writer")
        signed = signer.sign("x")
        other = SignedValue(payload="x", key_id="impostor", tag=signed.tag)
        assert not signer.public_key().verify(other)

    def test_forge_attempt_rejected(self):
        signer = Signer("writer")
        fake = forge_attempt("writer", TimestampValue(999, "FORGED"))
        assert not signer.public_key().verify(fake)

    def test_require_raises_on_forgery(self):
        signer = Signer("writer")
        with pytest.raises(AuthenticationError):
            signer.public_key().require(forge_attempt("writer", "x"))

    def test_require_returns_payload(self):
        signer = Signer("writer")
        assert signer.public_key().require(signer.sign("ok")) == "ok"

    def test_value_type_confusion_rejected(self):
        """'1' (str) and 1 (int) must not share a signature."""
        signer = Signer("w")
        signed_int = signer.sign(1)
        confused = SignedValue(payload="1", key_id="w", tag=signed_int.tag)
        assert not signer.public_key().verify(confused)
