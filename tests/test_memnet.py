"""Unit tests for the asyncio in-memory network and hosts."""

import asyncio

import pytest

from repro.automata.base import ObjectAutomaton
from repro.errors import TransportError
from repro.runtime.hosts import ClientHost, ObjectHost
from repro.runtime.memnet import AsyncNetwork
from repro.types import WRITER, obj, reader


def run(coro):
    return asyncio.run(coro)


class Echo(ObjectAutomaton):
    def on_message(self, sender, message):
        return [(sender, ("echo", message))]


class TestAsyncNetwork:
    def test_send_receive_immediate(self):
        async def scenario():
            net = AsyncNetwork()
            net.register(reader(0))
            net.send(WRITER, reader(0), "hi")
            envelope = await net.inbox(reader(0)).get()
            return envelope.sender, envelope.payload

        assert run(scenario()) == (WRITER, "hi")

    def test_unregistered_inbox_rejected(self):
        async def scenario():
            net = AsyncNetwork()
            with pytest.raises(TransportError):
                net.inbox(reader(5))

        run(scenario())

    def test_crashed_receiver_black_holed(self):
        async def scenario():
            net = AsyncNetwork()
            net.register(reader(0))
            net.crash(reader(0))
            net.send(WRITER, reader(0), "lost")
            return net.inbox(reader(0)).qsize()

        assert run(scenario()) == 0

    def test_jitter_delivers_eventually_and_counts(self):
        async def scenario():
            net = AsyncNetwork(jitter=0.005, seed=1)
            net.register(reader(0))
            for n in range(5):
                net.send(WRITER, reader(0), n)
            payloads = set()
            for _ in range(5):
                envelope = await asyncio.wait_for(
                    net.inbox(reader(0)).get(), timeout=2)
                payloads.add(envelope.payload)
            await net.drain()
            return payloads, net.messages_sent

        payloads, sent = run(scenario())
        assert payloads == {0, 1, 2, 3, 4}
        assert sent == 5


class TestHosts:
    def test_object_host_processes_inbox(self):
        async def scenario():
            net = AsyncNetwork()
            host = ObjectHost(Echo(0), net)
            net.register(reader(0))
            host.start()
            net.send(reader(0), obj(0), "ping")
            envelope = await asyncio.wait_for(net.inbox(reader(0)).get(),
                                              timeout=2)
            host.stop()
            return envelope.payload

        assert run(scenario()) == ("echo", "ping")

    def test_client_host_rejects_objects(self):
        async def scenario():
            net = AsyncNetwork()
            with pytest.raises(TransportError):
                ClientHost(obj(0), net)

        run(scenario())

    def test_client_host_rejects_foreign_operation(self):
        from repro.automata.base import ClientOperation

        class Op(ClientOperation):
            kind = "READ"

            def start(self):
                return []

            def on_message(self, sender, message):
                return []

        async def scenario():
            net = AsyncNetwork()
            host = ClientHost(reader(0), net)
            with pytest.raises(TransportError):
                await host.run(Op(reader(1)))

        run(scenario())

    def test_client_host_timeout(self):
        from repro.automata.base import ClientOperation

        class NeverDone(ClientOperation):
            kind = "READ"

            def start(self):
                return []

            def on_message(self, sender, message):
                return []

        async def scenario():
            net = AsyncNetwork()
            host = ClientHost(reader(0), net)
            with pytest.raises(asyncio.TimeoutError):
                await host.run(NeverDone(reader(0)), timeout=0.05)

        run(scenario())

    def test_zero_communication_completion(self):
        from repro.automata.base import ClientOperation

        class Instant(ClientOperation):
            kind = "READ"

            def start(self):
                self.complete("now")
                return []

            def on_message(self, sender, message):
                return []

        async def scenario():
            net = AsyncNetwork()
            host = ClientHost(reader(0), net)
            return await host.run(Instant(reader(0)), timeout=1)

        assert run(scenario()) == "now"
