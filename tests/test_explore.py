"""Tests for the small-scope schedule explorer.

The headline checks: (1) an *exhaustive* exploration of a concurrent
write-versus-read scenario finds no safety violation and no stuck
terminal state across every legal delivery order; (2) the same explorer
aimed at a deliberately broken protocol finds a violating schedule, and
the returned counterexample replays deterministically.
"""

import pytest

from repro.config import SystemConfig
from repro.core.lower_bound import FastReadProtocol
from repro.core.safe import SafeStorageProtocol
from repro.sim import ReplayScheduler
from repro.spec import check_safety
from repro.spec.explore import explore_schedules, sample_schedules
from repro.system import StorageSystem
from repro.types import BOTTOM


def safety_and_completion(system: StorageSystem):
    failures = list(check_safety(system.history).violations)
    for record in system.history.operations():
        if not record.complete:
            failures.append(f"{record.describe()} incomplete at quiescence")
    return failures


def write_vs_read_scenario(protocol_factory, t=1, b=0):
    """WRITE(v1) concurrent with a READ from the initial state."""

    def scenario():
        protocol = protocol_factory()
        config = SystemConfig.with_objects(
            t=t, b=b, num_objects=protocol.min_objects(t, b))
        system = StorageSystem(protocol, config, trace_enabled=False)
        system.invoke_write("v1")
        system.invoke_read(0)
        return system

    return scenario


class BrokenFastProtocol(FastReadProtocol):
    """Fast reader whose quorum is too small: provably unsafe."""

    name = "broken-fast"

    def __init__(self):
        super().__init__("highest-ts")

    def make_read(self, reader_state):
        operation = super().make_read(reader_state)
        # Sabotage: accept a single ack as a full round.
        operation.config = SystemConfig.with_objects(
            t=reader_state.config.num_objects - 1, b=0,
            num_objects=reader_state.config.num_objects)
        return operation


def broken_scenario():
    from repro.types import obj
    config = SystemConfig.optimal(t=1, b=1, num_readers=1)
    system = StorageSystem(BrokenFastProtocol(), config,
                           trace_enabled=False)
    # Make s4 a laggard: it misses WRITE(v0) while the write completes
    # with the other three acks, then its backlog races the read.
    system.kernel.network.hold("lag", lambda e: e.receiver == obj(3))
    system.write("v0")           # completed write, skipping s4
    system.kernel.network.release("lag")
    system.invoke_write("v1")
    system.invoke_read(0)        # must see v0 or v1, never ⊥
    return system


def no_bottom_after_write(system: StorageSystem):
    return ["read returned ⊥ after wr1 completed"
            for record in system.history.reads(complete_only=True)
            if record.result is BOTTOM]


class TestExhaustive:
    def test_fast_protocol_every_schedule_clean(self):
        """~3.5k distinct states, fully enumerated: proof by exhaustion
        for this scenario size."""
        result = explore_schedules(
            write_vs_read_scenario(lambda: FastReadProtocol("threshold")),
            safety_and_completion, max_states=10_000)
        assert not result.truncated
        assert result.ok, result.violations[:3]
        assert result.terminal_states > 10
        assert result.distinct_states > 1000

    def test_safe_protocol_bounded_exploration_clean(self):
        """The 2-round protocol's space is larger; a 4k-state frontier
        still covers thousands of schedules without a violation."""
        result = explore_schedules(
            write_vs_read_scenario(SafeStorageProtocol),
            safety_and_completion, max_states=4_000)
        assert result.ok, result.violations[:3]

    def test_broken_protocol_counterexample_found_and_replays(self):
        result = explore_schedules(broken_scenario, no_bottom_after_write,
                                   max_states=5_000)
        assert not result.ok
        assert result.counterexample_schedule

        # Replay the counterexample deterministically: the same scenario
        # construction yields the same kernel-local envelope ids, so
        # driving the recorded schedule reproduces the violation exactly.
        system = broken_scenario()
        for envelope_id in result.counterexample_schedule:
            assert system.kernel.deliver_by_id(envelope_id)
        assert no_bottom_after_write(system)

    def test_truncation_reported(self):
        result = explore_schedules(
            write_vs_read_scenario(SafeStorageProtocol),
            safety_and_completion, max_states=50)
        assert result.truncated
        assert "TRUNCATED" in result.describe()


class TestSampling:
    def test_safe_protocol_sampled_clean(self):
        result = sample_schedules(
            write_vs_read_scenario(SafeStorageProtocol, t=1, b=1),
            safety_and_completion, samples=25, seed=3)
        assert result.ok, result.violations[:3]
        assert result.terminal_states == 25

    def test_sampling_finds_broken_protocol_too(self):
        result = sample_schedules(broken_scenario, no_bottom_after_write,
                                  samples=300, seed=7)
        assert not result.ok
        assert result.counterexample_schedule
