"""Tests for the atomic (write-back) extension."""

import pytest

from repro.adversary import adversarial_suite, random_plan
from repro.config import SystemConfig
from repro.core.atomic import (AtomicObject, AtomicStorageProtocol,
                               WriteBack, WriteBackAck)
from repro.harness import WorkloadSpec, run_concurrent
from repro.sim import RandomScheduler
from repro.spec import check_atomicity, check_round_complexity
from repro.system import StorageSystem
from repro.types import (BOTTOM, TimestampValue, TsrArray, WriteTuple, obj,
                         reader, WRITER)


def make_tuple(config, ts, value="v"):
    return WriteTuple(TimestampValue(ts, value),
                      TsrArray.empty(config.num_objects,
                                     config.num_readers))


@pytest.fixture
def config():
    return SystemConfig.optimal(t=1, b=1, num_readers=2)


class TestAtomicObject:
    def test_write_back_fills_empty_slot(self, config):
        object_ = AtomicObject(0, config)
        c = make_tuple(config, 3, "wb")
        [(receiver, ack)] = object_.on_message(
            reader(0), WriteBack(c=c, nonce=1, reader_index=0))
        assert isinstance(ack, WriteBackAck)
        assert object_.history[3, 0].w == c

    def test_write_back_completes_incomplete_slot(self, config):
        from repro.messages import Pw
        object_ = AtomicObject(0, config)
        c = make_tuple(config, 1, "v1")
        # PW leaves slot 1 provisional (w=None)
        object_.on_message(WRITER, Pw(1, c.tsval, object_.history[0, 0].w))
        assert object_.history[1, 0].w is None
        object_.on_message(reader(0), WriteBack(c=c, nonce=1,
                                                reader_index=0))
        assert object_.history[1, 0].w == c

    def test_write_back_never_overwrites_complete_slot(self, config):
        from repro.messages import W
        object_ = AtomicObject(0, config)
        genuine = make_tuple(config, 1, "genuine")
        object_.on_message(WRITER, W(1, genuine.tsval, genuine))
        impostor = make_tuple(config, 1, "impostor")
        replies = object_.on_message(
            reader(0), WriteBack(c=impostor, nonce=1, reader_index=0))
        assert len(replies) == 1  # still acked
        assert object_.history[1, 0].w == genuine

    def test_write_back_from_non_reader_ignored(self, config):
        object_ = AtomicObject(0, config)
        c = make_tuple(config, 3)
        assert object_.on_message(WRITER,
                                  WriteBack(c=c, nonce=1,
                                            reader_index=0)) == []
        assert object_.on_message(obj(1),
                                  WriteBack(c=c, nonce=1,
                                            reader_index=0)) == []


class TestAtomicReads:
    def test_read_takes_three_rounds(self, config):
        system = StorageSystem(AtomicStorageProtocol(), config)
        system.write("v1")
        handle = system.read_handle(0)
        assert handle.result == "v1"
        assert handle.rounds_used == 3

    def test_initial_read_skips_write_back(self, config):
        system = StorageSystem(AtomicStorageProtocol(), config)
        handle = system.read_handle(0)
        assert handle.result is BOTTOM
        assert handle.rounds_used == 2  # no write-back for w0

    def test_round_bound_holds_under_faults(self):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        for plan in adversarial_suite(config):
            system = StorageSystem(AtomicStorageProtocol(), config)
            plan.apply(system)
            system.write("a")
            system.read(0)
            system.write("b")
            system.read(1)
            check_round_complexity(system.history, max_read_rounds=3,
                                   max_write_rounds=2).assert_ok()
            check_atomicity(system.history).assert_ok()

    @pytest.mark.parametrize("seed", range(8))
    def test_atomicity_under_concurrent_fuzz(self, seed):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        system = StorageSystem(AtomicStorageProtocol(), config,
                               scheduler=RandomScheduler(seed),
                               trace_enabled=False)
        random_plan(config, seed).apply(system)
        run_concurrent(system, WorkloadSpec(num_writes=5,
                                            reads_per_reader=5, seed=seed))
        check_atomicity(system.history).assert_ok()

    def test_write_back_helps_subsequent_reader(self, config):
        """After r1 returns v under a straggling write, r2 must not see
        anything older -- the written-back evidence guarantees it."""
        system = StorageSystem(AtomicStorageProtocol(), config)
        system.write("v1")
        held = {obj(2), obj(3)}
        system.kernel.network.hold(
            "slow-write",
            lambda env: env.sender == WRITER and env.receiver in held)
        write = system.invoke_write("v2")
        r1 = system.invoke_read(0)
        system.run_until_done(r1)
        r2 = system.invoke_read(1)
        system.run_until_done(r2)
        system.kernel.network.release("slow-write")
        system.run_until_done(write)
        order = {"v1": 1, "v2": 2}
        assert order[r2.result] >= order[r1.result]
        check_atomicity(system.history).assert_ok()
