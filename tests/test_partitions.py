"""Tests for partition scenarios: storage behaviour across cuts."""

import pytest

from repro.config import SystemConfig
from repro.core.safe import SafeStorageProtocol
from repro.errors import SimulationError
from repro.sim.partitions import Partition, isolate
from repro.spec import check_safety
from repro.system import StorageSystem
from repro.types import WRITER, obj, reader


@pytest.fixture
def system():
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)  # S = 6
    return StorageSystem(SafeStorageProtocol(), config)


class TestPartitionMechanics:
    def test_overlapping_groups_rejected(self, system):
        with pytest.raises(SimulationError):
            Partition(system.kernel.network,
                      [[obj(0), obj(1)], [obj(1), obj(2)]])

    def test_unlisted_processes_unaffected(self, system):
        Partition(system.kernel.network, [[obj(0)], [obj(1)]])
        # writer is in no group: can still reach both sides
        system.write("v")
        assert system.read(0) == "v"

    def test_heal_is_idempotent(self, system):
        cut = Partition(system.kernel.network, [[obj(0)], [obj(1)]])
        cut.heal()
        cut.heal()
        assert cut.healed

    def test_context_manager_heals(self, system):
        with Partition(system.kernel.network, [[obj(0)], [obj(1)]]) as cut:
            assert not cut.healed
        assert cut.healed


class TestStorageAcrossCuts:
    def test_minority_cut_tolerated(self, system):
        """Cutting t objects away from the clients: progress continues."""
        all_procs = system.config.all_processes()
        isolate(system.kernel.network, [obj(0), obj(1)], all_procs)
        system.write("during-cut")
        assert system.read(0) == "during-cut"

    def test_majority_cut_blocks_until_heal(self, system):
        """Cutting t+1 objects away stalls writes; healing resumes them."""
        all_procs = system.config.all_processes()
        cut = isolate(system.kernel.network, [obj(0), obj(1), obj(2)],
                      all_procs)
        write = system.invoke_write("stuck")
        system.kernel.run_to_quiescence()
        assert not write.done  # cannot reach S - t objects
        cut.heal()
        system.kernel.run_until(lambda: write.done)
        assert write.result == "OK"
        assert system.read(0) == "stuck"

    def test_reader_separated_from_writer_side_still_reads_old(self, system):
        """A reader that keeps S-t objects reads; values written during
        its cut become visible after healing."""
        system.write("v1")
        all_procs = system.config.all_processes()
        # Cut the reader + 4 objects away from writer + 2 objects:
        reader_side = [reader(0), obj(2), obj(3), obj(4), obj(5)]
        writer_side = [WRITER, obj(0), obj(1)]
        cut = Partition(system.kernel.network, [reader_side, writer_side])
        # The reader still has a quorum: it must read v1.
        assert system.read(0) == "v1"
        # The writer has only 2 objects: its write stalls.
        write = system.invoke_write("v2")
        system.kernel.run_to_quiescence()
        assert not write.done
        cut.heal()
        system.kernel.run_until(lambda: write.done)
        assert system.read(0) == "v2"
        check_safety(system.history).assert_ok()

    def test_post_heal_backlog_is_absorbed(self, system):
        """Messages sent during the cut deliver after healing without
        confusing later operations (stale-ack filtering)."""
        all_procs = system.config.all_processes()
        cut = isolate(system.kernel.network, [obj(0)], all_procs)
        for k in range(1, 4):
            system.write(f"v{k}")
            assert system.read(0) == f"v{k}"
        cut.heal()
        system.kernel.run_to_quiescence()  # the backlog floods in
        system.write("final")
        assert system.read(0) == "final"
        check_safety(system.history).assert_ok()
