"""Unit tests for the Figure 4 reader predicates."""

import pytest

from repro.core.safe.predicates import (CandidateTracker, conflict_pairs,
                                        exists_conflict_free_quorum)
from repro.types import TimestampValue, TsrArray, WriteTuple


def tup(ts, value="v", tsr_entries=None, S=4, R=1):
    arr = TsrArray.empty(S, R)
    for (i, j, v) in tsr_entries or []:
        arr = arr.with_entry(i, j, v)
    return WriteTuple(TimestampValue(ts, value), arr)


class TestConflictPairs:
    def test_no_accusation_no_conflict(self):
        c = tup(1)
        assert conflict_pairs([c], {c: {0}}, reader_index=0,
                              tsr_first_round=5) == set()

    def test_future_timestamp_creates_conflict(self):
        # object 2 exhibits a tuple claiming object 1 reported tsr=9 > 5
        c = tup(1, tsr_entries=[(1, 0, 9)])
        pairs = conflict_pairs([c], {c: {2}}, reader_index=0,
                               tsr_first_round=5)
        assert pairs == {(1, 2)}

    def test_past_timestamp_is_fine(self):
        c = tup(1, tsr_entries=[(1, 0, 5)])
        assert conflict_pairs([c], {c: {2}}, 0, 5) == set()

    def test_multiple_accusers_and_accused(self):
        c = tup(1, tsr_entries=[(0, 0, 9), (1, 0, 9)])
        pairs = conflict_pairs([c], {c: {2, 3}}, 0, 5)
        assert pairs == {(0, 2), (0, 3), (1, 2), (1, 3)}

    def test_self_accusation(self):
        c = tup(1, tsr_entries=[(2, 0, 9)])
        assert (2, 2) in conflict_pairs([c], {c: {2}}, 0, 5)

    def test_other_readers_entries_irrelevant(self):
        c = tup(1, tsr_entries=[(1, 1, 99)], R=2)
        assert conflict_pairs([c], {c: {2}}, reader_index=0,
                              tsr_first_round=5) == set()


class TestConflictFreeQuorum:
    def test_trivially_satisfied(self):
        assert exists_conflict_free_quorum({0, 1, 2}, set(), quorum=3)

    def test_not_enough_responders(self):
        assert not exists_conflict_free_quorum({0, 1}, set(), quorum=3)

    def test_single_conflict_blocks_exact_quorum(self):
        # 3 responders, quorum 3, one conflicting pair: impossible.
        assert not exists_conflict_free_quorum({0, 1, 2}, {(0, 1)}, 3)

    def test_single_conflict_routed_around(self):
        # 4 responders, quorum 3: drop one endpoint of the pair.
        assert exists_conflict_free_quorum({0, 1, 2, 3}, {(0, 1)}, 3)

    def test_self_conflict_disqualifies_vertex(self):
        assert not exists_conflict_free_quorum({0, 1, 2}, {(0, 0)}, 3)
        assert exists_conflict_free_quorum({0, 1, 2, 3}, {(0, 0)}, 3)

    def test_conflict_outside_responders_ignored(self):
        assert exists_conflict_free_quorum({0, 1, 2}, {(7, 8)}, 3)

    def test_independent_set_search(self):
        # Star: 0 conflicts with 1,2,3; {1,2,3,4} is independent.
        pairs = {(0, 1), (0, 2), (0, 3)}
        assert exists_conflict_free_quorum({0, 1, 2, 3, 4}, pairs, 4)
        # Triangle among {0,1,2} leaves max independent 1 + {3,4} = 3.
        triangle = {(0, 1), (1, 2), (0, 2)}
        assert exists_conflict_free_quorum({0, 1, 2, 3, 4}, triangle, 3)
        assert not exists_conflict_free_quorum({0, 1, 2, 3, 4}, triangle, 4)


class TestCandidateTracker:
    @pytest.fixture
    def tracker(self):
        # t=1, b=1 thresholds: eliminate at 3, confirm at 2.
        return CandidateTracker(elimination_threshold=3,
                                confirmation_threshold=2)

    def test_first_round_populates_everything(self, tracker):
        c = tup(1)
        tracker.record_first_round(0, c.tsval, c)
        assert c in tracker.candidates()
        assert tracker.first_rw[c] == {0}
        assert tracker.responded_first == {0}

    def test_second_round_adds_no_candidates(self, tracker):
        c = tup(1)
        tracker.record_second_round(0, c.tsval, c)
        assert tracker.candidates() == set()
        assert tracker.rw[c] == {0}

    def test_elimination_at_threshold(self, tracker):
        fake = tup(9, "forged")
        real = tup(1, "real")
        tracker.record_first_round(0, fake.tsval, fake)
        for i in (1, 2, 3):
            tracker.record_first_round(i, real.tsval, real)
        assert tracker.is_eliminated(fake)
        assert fake not in tracker.candidates()
        assert real in tracker.candidates()

    def test_elimination_counts_distinct_objects_once(self, tracker):
        fake = tup(9)
        real = tup(1)
        tracker.record_first_round(0, fake.tsval, fake)
        # the same object "responding" repeatedly must not triple-count
        for _ in range(5):
            tracker.record_first_round(1, real.tsval, real)
            tracker.record_second_round(1, real.tsval, real)
        assert not tracker.is_eliminated(fake)

    def test_safe_needs_confirmation_threshold(self, tracker):
        c = tup(1)
        tracker.record_first_round(0, c.tsval, c)
        assert not tracker.is_safe(c)
        tracker.record_second_round(1, c.tsval, c)
        assert tracker.is_safe(c)

    def test_higher_timestamp_reports_support_lower_candidates(self, tracker):
        low = tup(1, "old")
        high = tup(2, "new")
        tracker.record_first_round(0, low.tsval, low)
        tracker.record_first_round(1, high.tsval, high)
        # object 1's higher-ts report counts toward safe(low) (line 3)
        assert tracker.is_safe(low)
        assert not tracker.is_safe(high)

    def test_pw_only_report_supports(self, tracker):
        c = tup(2, "x")
        tracker.record_first_round(0, c.tsval, c)
        # object 1 reports c's tsval in pw but an older tuple in w
        older = tup(1, "w-old")
        tracker.record_second_round(1, c.tsval, older)
        assert tracker.is_safe(c)

    def test_high_candidates(self, tracker):
        low, high = tup(1), tup(5)
        tracker.record_first_round(0, low.tsval, low)
        tracker.record_first_round(1, high.tsval, high)
        assert tracker.high_candidates() == {high}

    def test_returnable_requires_safe_and_high(self, tracker):
        low, high = tup(1), tup(5)
        for i in (0, 1):
            tracker.record_first_round(i, low.tsval, low)
        tracker.record_first_round(2, high.tsval, high)
        # high is the top candidate but unsafe; low is safe but not top.
        assert tracker.returnable() is None
        tracker.record_second_round(3, high.tsval, high)
        assert tracker.returnable() == high

    def test_candidates_empty_after_all_eliminated(self, tracker):
        fake = tup(9)
        other = tup(1)
        tracker.record_first_round(0, fake.tsval, fake)
        for i in (1, 2, 3):
            tracker.record_second_round(i, other.tsval, other)
        # 'fake' eliminated; 'other' was never a round-1 candidate.
        assert tracker.candidates_empty()
