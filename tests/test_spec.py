"""Tests for the history recorder and the register-semantics checkers.

The checkers are the test oracle for everything else, so they get their
own adversarial tests: histories constructed by hand that are known-good
and known-bad for each specification clause.
"""

import pytest

from repro.errors import SpecificationViolation
from repro.spec import (History, check_atomicity, check_regularity,
                        check_round_complexity, check_safety,
                        check_wait_freedom)
from repro.spec.histories import READ, WRITE
from repro.types import BOTTOM, WRITER, reader


def write(history, value, complete=True, rounds=2):
    k = len(history.writes()) + 1
    record = history.record_invocation(
        operation_id=1000 + k, client=WRITER, kind=WRITE, argument=value,
        write_index=k)
    if complete:
        history.record_completion(1000 + k, "OK", rounds_used=rounds)
    return record


def read(history, result, op_id, complete=True, rounds=2, j=0):
    record = history.record_invocation(
        operation_id=op_id, client=reader(j), kind=READ)
    if complete:
        history.record_completion(op_id, result, rounds_used=rounds)
    return record


class TestHistoryMechanics:
    def test_precedence_uses_event_order(self):
        h = History()
        w = write(h, "a")
        r = read(h, "a", 1)
        assert w.precedes(r)
        assert not r.precedes(w)
        assert not w.concurrent_with(r)

    def test_concurrency_detection(self):
        h = History()
        w = h.record_invocation(1, WRITER, WRITE, argument="a",
                                write_index=1)
        r = h.record_invocation(2, reader(0), READ)
        h.record_completion(1, "OK")
        h.record_completion(2, "a")
        assert w.concurrent_with(r)

    def test_incomplete_op_concurrent_with_everything_after(self):
        h = History()
        w = h.record_invocation(1, WRITER, WRITE, argument="a",
                                write_index=1)
        r = read(h, "a", 2)
        assert w.concurrent_with(r)

    def test_double_invoke_rejected(self):
        h = History()
        h.record_invocation(1, WRITER, WRITE, argument="a")
        with pytest.raises(ValueError):
            h.record_invocation(1, WRITER, WRITE, argument="b")

    def test_double_completion_rejected(self):
        h = History()
        h.record_invocation(1, WRITER, WRITE, argument="a")
        h.record_completion(1, "OK")
        with pytest.raises(ValueError):
            h.record_completion(1, "OK")

    def test_value_lookup(self):
        h = History()
        write(h, "a")
        write(h, "b")
        write(h, "a")
        assert h.value_of_write(0) is BOTTOM
        assert h.value_of_write(2) == "b"
        assert h.write_indices_of_value("a") == [1, 3]

    def test_last_preceding_write(self):
        h = History()
        write(h, "a")
        write(h, "b")
        r = read(h, "b", 1)
        assert h.last_preceding_write(r).argument == "b"


class TestSafetyChecker:
    def test_clean_history(self):
        h = History()
        write(h, "a")
        read(h, "a", 1)
        assert check_safety(h).ok

    def test_initial_bottom_ok(self):
        h = History()
        read(h, BOTTOM, 1)
        assert check_safety(h).ok

    def test_stale_read_flagged(self):
        h = History()
        write(h, "a")
        write(h, "b")
        read(h, "a", 1)
        result = check_safety(h)
        assert not result.ok
        with pytest.raises(SpecificationViolation):
            result.assert_ok()

    def test_concurrent_read_unconstrained(self):
        h = History()
        write(h, "a")
        w2 = h.record_invocation(50, WRITER, WRITE, argument="b",
                                 write_index=2)
        read(h, "anything at all", 1)
        h.record_completion(50, "OK")
        assert check_safety(h).ok

    def test_never_written_value_flagged(self):
        h = History()
        write(h, "a")
        read(h, "ghost", 1)
        assert not check_safety(h).ok


class TestRegularityChecker:
    def test_concurrent_read_may_return_either(self):
        h = History()
        write(h, "a")
        w2 = h.record_invocation(50, WRITER, WRITE, argument="b",
                                 write_index=2)
        read(h, "b", 1)  # concurrent with wr2: new value fine
        h.record_completion(50, "OK")
        read(h, "b", 2)
        assert check_regularity(h).ok

    def test_concurrent_read_may_not_invent(self):
        h = History()
        write(h, "a")
        w2 = h.record_invocation(50, WRITER, WRITE, argument="b",
                                 write_index=2)
        read(h, "ghost", 1)  # concurrent but never written: clause (1)
        h.record_completion(50, "OK")
        assert not check_regularity(h).ok

    def test_stale_past_preceding_write_flagged(self):
        h = History()
        write(h, "a")
        write(h, "b")
        read(h, "a", 1)  # clause (2)
        assert not check_regularity(h).ok

    def test_bottom_after_write_flagged(self):
        h = History()
        write(h, "a")
        read(h, BOTTOM, 1)
        assert not check_regularity(h).ok

    def test_read_from_the_future_flagged(self):
        h = History()
        read(h, "later", 1)   # returns a value only written afterwards
        write(h, "later")
        assert not check_regularity(h).ok

    def test_repeated_values_resolved(self):
        h = History()
        write(h, "x")
        write(h, "y")
        write(h, "x")  # same value again
        read(h, "x", 1)  # legal: wr3 wrote x
        assert check_regularity(h).ok


class TestAtomicityChecker:
    def test_new_old_inversion_flagged(self):
        h = History()
        write(h, "a")
        w2 = h.record_invocation(50, WRITER, WRITE, argument="b",
                                 write_index=2)
        read(h, "b", 1)          # sees the new value...
        read(h, "a", 2)          # ...then an older one: inversion
        h.record_completion(50, "OK")
        result = check_atomicity(h)
        assert not result.ok
        assert "inversion" in result.violations[0]

    def test_monotone_reads_pass(self):
        h = History()
        write(h, "a")
        w2 = h.record_invocation(50, WRITER, WRITE, argument="b",
                                 write_index=2)
        read(h, "a", 1)
        read(h, "b", 2)
        h.record_completion(50, "OK")
        assert check_atomicity(h).ok

    def test_regular_violation_propagates(self):
        h = History()
        write(h, "a")
        read(h, "ghost", 1)
        assert not check_atomicity(h).ok


class TestWaitFreedomAndRounds:
    def test_incomplete_operation_flagged(self):
        h = History()
        h.record_invocation(1, reader(0), READ)
        assert not check_wait_freedom(h).ok

    def test_crashed_client_excused(self):
        h = History()
        h.record_invocation(1, reader(0), READ)
        assert check_wait_freedom(h, crashed_clients={reader(0)}).ok

    def test_round_complexity_bound(self):
        h = History()
        write(h, "a", rounds=2)
        read(h, "a", 1, rounds=3)
        assert check_round_complexity(h, max_read_rounds=2,
                                      max_write_rounds=2).violations
        assert check_round_complexity(h, max_read_rounds=3,
                                      max_write_rounds=2).ok
