"""Soak/integration tests: long mixed workloads across every protocol.

Each soak run is a miniature deployment: many operations, multiple
readers, mid-run fault injection, and a final audit by the strongest
checker the protocol claims to satisfy.
"""

import pytest

from repro.adversary import forger, max_byzantine, stale
from repro.baselines import (AbdAtomicProtocol, AbdRegularProtocol,
                             AuthenticatedProtocol, PassiveReaderProtocol)
from repro.config import SystemConfig
from repro.core.atomic import AtomicStorageProtocol
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularStorageProtocol)
from repro.core.safe import SafeStorageProtocol
from repro.harness import WorkloadSpec, run_concurrent
from repro.sim import RandomScheduler
from repro.spec import (check_atomicity, check_regularity, check_safety,
                        check_wait_freedom)
from repro.system import StorageSystem

CHECKERS = {
    "safe": check_safety,
    "regular": check_regularity,
    "atomic": check_atomicity,
}

SOAK_MATRIX = [
    (SafeStorageProtocol, 1),
    (RegularStorageProtocol, 1),
    (CachedRegularStorageProtocol, 1),
    (AtomicStorageProtocol, 1),
    (PassiveReaderProtocol, 1),
    (AuthenticatedProtocol, 1),
]


@pytest.mark.parametrize("factory,b", SOAK_MATRIX)
def test_soak_concurrent_with_midrun_corruption(factory, b):
    protocol = factory()
    config = SystemConfig.with_objects(
        t=2, b=b, num_objects=protocol.min_objects(2, b), num_readers=3)
    system = StorageSystem(factory(), config,
                           scheduler=RandomScheduler(271),
                           trace_enabled=False)
    # Phase 1: clean concurrent traffic.
    run_concurrent(system, WorkloadSpec(num_writes=8, reads_per_reader=6,
                                        seed=11))
    # Phase 2: corrupt the full Byzantine budget and keep going.
    max_byzantine(config, forger()).apply(system)
    run_concurrent(system, WorkloadSpec(num_writes=8, reads_per_reader=6,
                                        seed=12))
    history = system.history
    check_wait_freedom(history).assert_ok()
    CHECKERS[protocol.semantics](history).assert_ok()
    assert len(history.writes()) == 16
    assert len(history.reads()) == 36


def test_soak_crash_storm_sequence():
    """Crash objects one by one up to t while traffic continues."""
    config = SystemConfig.optimal(t=3, b=1, num_readers=2)
    system = StorageSystem(SafeStorageProtocol(), config,
                           scheduler=RandomScheduler(5),
                           trace_enabled=False)
    crashed = 0
    for k in range(1, 8):
        system.write(f"v{k}")
        assert system.read(k % 2) == f"v{k}"
        if k % 2 == 0 and crashed < config.t:
            system.crash_object(crashed)
            crashed += 1
    check_safety(system.history).assert_ok()


def test_soak_many_seeds_quick():
    """Breadth over depth: 20 seeds x small concurrent workloads."""
    config = SystemConfig.optimal(t=1, b=1, num_readers=2)
    for seed in range(20):
        system = StorageSystem(RegularStorageProtocol(), config,
                               scheduler=RandomScheduler(seed),
                               trace_enabled=False)
        if seed % 3 == 0:
            max_byzantine(config, stale()).apply(system)
        run_concurrent(system, WorkloadSpec(num_writes=3,
                                            reads_per_reader=3, seed=seed))
        check_regularity(system.history).assert_ok()


def test_soak_abd_crash_only():
    config = SystemConfig.with_objects(t=2, b=0, num_objects=5,
                                       num_readers=2)
    system = StorageSystem(AbdAtomicProtocol(), config,
                           scheduler=RandomScheduler(33),
                           trace_enabled=False)
    run_concurrent(system, WorkloadSpec(num_writes=10, reads_per_reader=8,
                                        seed=3))
    system.crash_object(0)
    system.crash_object(4)
    run_concurrent(system, WorkloadSpec(num_writes=5, reads_per_reader=4,
                                        seed=4))
    check_atomicity(system.history).assert_ok()


def test_soak_long_history_regular_vs_cached_agree():
    """200 writes; both regular flavours must agree on every readback."""
    config = SystemConfig.optimal(t=1, b=1, num_readers=1)
    full = StorageSystem(RegularStorageProtocol(), config,
                         trace_enabled=False)
    cached = StorageSystem(CachedRegularStorageProtocol(), config,
                           trace_enabled=False)
    for k in range(1, 201):
        full.write(f"v{k}")
        cached.write(f"v{k}")
        if k % 25 == 0:
            assert full.read(0) == cached.read(0) == f"v{k}"
