"""Property-based tests (hypothesis) on core invariants.

Four families:

1. value types: TsrArray derivation laws, TimestampValue total order;
2. wire codec: decode(encode(m)) == m over generated messages;
3. protocol safety/regularity under *generated* schedules and fault
   plans -- the heavyweight property: any seeded random run of the
   paper's protocols must satisfy its register specification;
4. the conflict-free-quorum search agrees with a brute-force oracle on
   small instances.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import random_plan
from repro.config import SystemConfig
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularStorageProtocol)
from repro.core.safe import SafeStorageProtocol
from repro.core.safe.predicates import exists_conflict_free_quorum
from repro.harness import WorkloadSpec, run_concurrent
from repro.messages import Pw, ReadAck, ReadRequest
from repro.runtime import decode_message, encode_message
from repro.sim import RandomScheduler
from repro.spec import check_regularity, check_safety, check_wait_freedom
from repro.system import StorageSystem
from repro.types import TimestampValue, TsrArray, WriteTuple

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

values = st.one_of(st.text(max_size=8), st.integers(-1000, 1000),
                   st.booleans())
timestamps = st.integers(1, 10**6)


@st.composite
def tsvals(draw):
    return TimestampValue(draw(timestamps), draw(values))


@st.composite
def tsr_arrays(draw, max_s=5, max_r=3):
    s = draw(st.integers(1, max_s))
    r = draw(st.integers(1, max_r))
    rows = draw(st.lists(
        st.lists(st.one_of(st.none(), st.integers(0, 50)),
                 min_size=r, max_size=r),
        min_size=s, max_size=s))
    return TsrArray.from_lists(rows)


@st.composite
def write_tuples(draw):
    return WriteTuple(draw(tsvals()), draw(tsr_arrays()))


# ---------------------------------------------------------------------------
# 1. value-type laws
# ---------------------------------------------------------------------------


@given(tsr_arrays(), st.data())
def test_tsr_with_entry_changes_exactly_one_cell(arr, data):
    i = data.draw(st.integers(0, arr.num_objects - 1))
    j = data.draw(st.integers(0, arr.num_readers - 1))
    v = data.draw(st.integers(0, 99))
    updated = arr.with_entry(i, j, v)
    for (oi, oj, cell) in updated.entries():
        if (oi, oj) == (i, j):
            assert cell == v
        else:
            assert cell == arr.get(oi, oj)


@given(tsr_arrays())
def test_tsr_hash_consistent_with_eq(arr):
    clone = TsrArray.from_lists([list(row) for row in arr])
    assert arr == clone and hash(arr) == hash(clone)


@given(st.lists(tsvals(), min_size=2, max_size=6))
def test_tsval_order_total_and_ts_monotone(pairs):
    ordered = sorted(pairs)
    for a, b in zip(ordered, ordered[1:]):
        assert a.ts <= b.ts  # order refines timestamp order


# ---------------------------------------------------------------------------
# 2. codec round-trips
# ---------------------------------------------------------------------------


@given(write_tuples())
@settings(max_examples=50)
def test_codec_roundtrip_pw(wt):
    message = Pw(ts=wt.ts if wt.ts > 0 else 1, pw=wt.tsval, w=wt)
    assert decode_message(encode_message(message)) == message


@given(write_tuples(), st.integers(1, 2), st.integers(1, 100))
@settings(max_examples=50)
def test_codec_roundtrip_read_ack(wt, round_index, tsr):
    message = ReadAck(round_index=round_index, tsr=tsr, object_index=0,
                      pw=wt.tsval, w=wt)
    assert decode_message(encode_message(message)) == message


@given(st.integers(1, 2), st.integers(1, 1000),
       st.integers(0, 5), st.one_of(st.none(), st.integers(0, 100)))
def test_codec_roundtrip_read_request(k, tsr, j, from_ts):
    message = ReadRequest(round_index=k, tsr=tsr, reader_index=j,
                          from_ts=from_ts)
    assert decode_message(encode_message(message)) == message


# ---------------------------------------------------------------------------
# 3. protocol specifications under generated schedules/faults
# ---------------------------------------------------------------------------

_PROTOCOLS = {
    "safe": (SafeStorageProtocol, check_safety),
    "regular": (RegularStorageProtocol, check_regularity),
    "cached": (CachedRegularStorageProtocol, check_regularity),
}


@given(
    protocol_name=st.sampled_from(sorted(_PROTOCOLS)),
    t=st.integers(1, 2),
    schedule_seed=st.integers(0, 10**6),
    fault_seed=st.integers(0, 10**6),
    workload_seed=st.integers(0, 10**6),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_protocols_meet_their_specification(protocol_name, t, schedule_seed,
                                            fault_seed, workload_seed):
    protocol_cls, checker = _PROTOCOLS[protocol_name]
    b = 1 if t == 1 else 2
    config = SystemConfig.optimal(t=t, b=b, num_readers=2)
    system = StorageSystem(protocol_cls(), config,
                           scheduler=RandomScheduler(schedule_seed),
                           trace_enabled=False)
    random_plan(config, fault_seed).apply(system)
    run_concurrent(system, WorkloadSpec(num_writes=4, reads_per_reader=3,
                                        seed=workload_seed))
    checker(system.history).assert_ok()
    check_wait_freedom(system.history).assert_ok()


@given(schedule_seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_safe_rounds_never_exceed_two(schedule_seed):
    config = SystemConfig.optimal(t=1, b=1, num_readers=1)
    system = StorageSystem(SafeStorageProtocol(), config,
                           scheduler=RandomScheduler(schedule_seed),
                           trace_enabled=False)
    system.write("a")
    handle = system.read_handle(0)
    assert handle.rounds_used <= 2
    write = system.write("b")
    assert write.rounds_used <= 2


# ---------------------------------------------------------------------------
# 4. conflict-free quorum search vs brute force
# ---------------------------------------------------------------------------


def _brute_force(responders, pairs, quorum):
    bad = {frozenset(p) if p[0] != p[1] else p[0] for p in pairs}
    loops = {p[0] for p in pairs if p[0] == p[1]}
    candidates = [v for v in responders if v not in loops]
    for size in range(quorum, len(candidates) + 1):
        for subset in itertools.combinations(candidates, size):
            chosen = set(subset)
            if any(frozenset((a, b)) in bad
                   for a in chosen for b in chosen if a < b):
                continue
            return True
    return False


@given(
    n=st.integers(3, 7),
    quorum=st.integers(2, 5),
    edges=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)),
                   max_size=8),
)
@settings(max_examples=120, deadline=None)
def test_quorum_search_matches_brute_force(n, quorum, edges):
    responders = set(range(n))
    pairs = {(a, b) for a, b in edges if a < n and b < n}
    fast = exists_conflict_free_quorum(responders, pairs, quorum)
    slow = _brute_force(responders, pairs, quorum)
    assert fast == slow
