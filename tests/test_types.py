"""Unit tests for repro.types: process ids, timestamps, write tuples."""

import pickle

import pytest

from repro.errors import ReproError
from repro.types import (BOTTOM, INITIAL_TSVAL, ProcessId, TimestampValue,
                         TsrArray, WRITER, WriteTuple, _Bottom,
                         initial_write_tuple, obj, reader)


class TestBottom:
    def test_singleton(self):
        assert _Bottom() is BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_distinct_from_none_and_strings(self):
        assert BOTTOM is not None
        assert BOTTOM != "⊥"


class TestProcessId:
    def test_constructors(self):
        assert obj(0).role == "object"
        assert reader(3).index == 3
        assert WRITER.is_writer

    def test_reprs_are_one_based(self):
        assert repr(obj(0)) == "s1"
        assert repr(reader(1)) == "r2"
        assert repr(WRITER) == "w"

    def test_clients_vs_objects(self):
        assert WRITER.is_client
        assert reader(0).is_client
        assert not obj(0).is_client
        assert obj(0).is_object

    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            ProcessId("disk", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            ProcessId("object", -1)

    def test_second_writer_allowed_for_mwmr(self):
        second = ProcessId("writer", 1)
        assert second.is_writer and second.is_client
        assert repr(second) == "w2"
        assert second != WRITER

    def test_ordering_and_hash(self):
        assert len({obj(0), obj(0), obj(1)}) == 2
        assert sorted([reader(1), reader(0)])[0] == reader(0)


class TestTimestampValue:
    def test_initial_pair(self):
        assert INITIAL_TSVAL.ts == 0
        assert INITIAL_TSVAL.value is BOTTOM

    def test_ordering_by_timestamp(self):
        assert TimestampValue(1, "a") < TimestampValue(2, "a")

    def test_equality_ignores_nothing(self):
        assert TimestampValue(1, "a") == TimestampValue(1, "a")
        assert TimestampValue(1, "a") != TimestampValue(1, "b")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            TimestampValue(-1, "x")

    def test_ts_zero_must_be_bottom(self):
        with pytest.raises(ValueError):
            TimestampValue(0, "not-bottom")

    def test_bottom_not_writable(self):
        with pytest.raises(ValueError):
            TimestampValue(5, BOTTOM)

    def test_hashable(self):
        assert len({TimestampValue(1, "a"), TimestampValue(1, "a")}) == 1


class TestTsrArray:
    def test_empty_is_all_nil(self):
        arr = TsrArray.empty(3, 2)
        assert all(cell is None for _, _, cell in arr.entries())
        assert arr.num_objects == 3
        assert arr.num_readers == 2

    def test_with_row_does_not_mutate(self):
        arr = TsrArray.empty(2, 2)
        updated = arr.with_row(0, (5, 6))
        assert arr.get(0, 0) is None
        assert updated.get(0, 0) == 5
        assert updated.get(0, 1) == 6

    def test_with_entry(self):
        arr = TsrArray.empty(2, 2).with_entry(1, 0, 9)
        assert arr.get(1, 0) == 9
        assert arr.get(1, 1) is None

    def test_wrong_row_width_rejected(self):
        with pytest.raises(ValueError):
            TsrArray.empty(2, 2).with_row(0, (1,))

    def test_column_and_non_nil_rows(self):
        arr = TsrArray.empty(3, 1).with_entry(2, 0, 7)
        assert arr.column(0) == (None, None, 7)
        assert arr.non_nil_rows_for_reader(0) == (2,)

    def test_equality_and_hash(self):
        a = TsrArray.empty(2, 1).with_entry(0, 0, 1)
        b = TsrArray.empty(2, 1).with_entry(0, 0, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TsrArray.empty(2, 1)

    def test_from_lists(self):
        arr = TsrArray.from_lists([[1, None], [None, 2]])
        assert arr.get(0, 0) == 1
        assert arr.get(1, 1) == 2


class TestWriteTuple:
    def test_shortcuts(self):
        tup = WriteTuple(TimestampValue(3, "v"), TsrArray.empty(2, 1))
        assert tup.ts == 3
        assert tup.value == "v"

    def test_initial_write_tuple(self):
        tup = initial_write_tuple(4, 2)
        assert tup.ts == 0
        assert tup.value is BOTTOM
        assert tup.tsrarray.num_objects == 4

    def test_set_membership(self):
        t1 = WriteTuple(TimestampValue(1, "a"), TsrArray.empty(2, 1))
        t2 = WriteTuple(TimestampValue(1, "a"), TsrArray.empty(2, 1))
        t3 = WriteTuple(TimestampValue(1, "a"),
                        TsrArray.empty(2, 1).with_entry(0, 0, 1))
        assert len({t1, t2}) == 1
        # Same tsval but different tsrarray: distinct candidates, exactly
        # as the reader's candidate set requires.
        assert len({t1, t3}) == 2
