#!/usr/bin/env python3
"""A sharded, Byzantine-tolerant replicated key-value store.

The paper's motivating deployment at service scale: clients store
*unsigned* data on commodity storage nodes, some of which may be
compromised.  Each key is one SWMR regular register (the Section 5
protocol with the §5.1 cached-suffix optimization) -- but unlike a
register-per-replica-set design, every shard group here multiplexes its
whole keyspace over ONE replica set of 4 objects.  Keys are placed on
shard groups by consistent hashing; batched puts coalesce same-round
messages per object into single envelopes.  Everything runs on real
asyncio tasks with randomized message jitter -- the same protocol
automata the simulator verifies.

Run:  python examples/replicated_kv_store.py
"""

import asyncio

from repro import SystemConfig
from repro.adversary.byzantine import ValueForger
from repro.core.regular import CachedRegularStorageProtocol
from repro.errors import FencedWriteError
from repro.service import ReconfigCoordinator, ShardedKVStore


async def main() -> None:
    # Per shard group: 4 replicas tolerate one arbitrary failure (t = b = 1).
    config = SystemConfig.optimal(t=1, b=1, num_readers=2)
    kv = ShardedKVStore(CachedRegularStorageProtocol, config,
                        num_shards=2, jitter=0.002)
    print(f"shard groups: 2 x [{config.describe()}]")

    async with kv:
        # Normal operation.
        await kv.put("user:42", "ada")
        await kv.put("feature:dark-mode", True)
        print("user:42      =", await kv.get("user:42"),
              f"(shard {kv.shard_for('user:42')})")
        print("feature flag =", await kv.get("feature:dark-mode"),
              f"(shard {kv.shard_for('feature:dark-mode')})")
        print("missing key  =", await kv.get("nope"))

        # Batched writes: one coalesced round per shard group, however
        # many keys -- the multiplexing win in one call.
        await kv.put_many({f"session:{n}": f"token-{n}" for n in range(8)})
        sessions = await kv.get_many([f"session:{n}" for n in range(8)])
        print("batched sessions:", dict(sorted(sessions.items())))

        # Two readers, concurrent with an update.
        results = await asyncio.gather(
            kv.put("user:42", "ada lovelace"),
            kv.get("user:42", reader_index=0),
            kv.get("user:42", reader_index=1),
        )
        print("concurrent readers saw:", results[1:], "(either value is "
              "regular)")

        # Compromise one replica of the shard holding user:42.  The forged
        # high-timestamp value cannot gather b+1 confirmations, so reads
        # keep returning the truth -- for user:42 AND for every other key
        # that shard serves.
        store = kv.store_for("user:42")
        kv.compromise_replica("user:42", 0, ValueForger(
            store.object_automaton(0), config,
            forged_value="$TAMPERED$", ts_boost=10**6))
        print("after compromising replica s1:", await kv.get("user:42"))
        await kv.put("user:42", "still consistent")
        print("after another write:", await kv.get("user:42", 1))
        siblings = await kv.get_many(
            [k for k in sorted(sessions)
             if kv.shard_for(k) == kv.shard_for("user:42")])
        print("sibling keys on the compromised shard still read true:",
              siblings)

        # Live reshard: add a third shard group while the store serves.
        # The coordinator fences each moved key at its source (stale
        # writes are refused, not lost), snapshots it with a regular
        # read, replays it into the new group under a higher epoch, and
        # flips routing atomically.
        old_ring = kv.ring
        report = await ReconfigCoordinator(kv).add_shard()
        print("live reshard:", report.describe())
        moved_key = next(iter(report.moved), None)
        if moved_key is not None:
            print(f"  {moved_key!r} now on shard "
                  f"{kv.shard_for(moved_key)} =",
                  await kv.get(moved_key))
            # A straggler writing through the old placement is fenced:
            try:
                await kv.shards[old_ring.shard_for(moved_key)].write(
                    moved_key, "stale write from the past")
            except FencedWriteError as error:
                print("  stale write fenced:", error)
    print(kv.describe())


if __name__ == "__main__":
    asyncio.run(main())
