#!/usr/bin/env python3
"""A sharded, Byzantine-tolerant replicated key-value store -- client API.

The paper's motivating deployment at service scale: clients store
*unsigned* data on commodity storage nodes, some of which may be
compromised.  Underneath, every key is a multi-writer regular register
(the Section 5 protocol with the §5.1 cached-suffix optimization),
multiplexed over shard groups of 4 replicas each and placed by
consistent hashing.

This walkthrough uses the **client API** (`repro.api`), the one
documented way in: a `Cluster` owns topology and lifecycle, `Session`s
carry identity (leased writer index), a `RetryPolicy` and a declared
`Consistency` level, and `session.snapshot()` reads a *consistent cut*
across shard groups -- something no sequence of per-key gets provides.
Operator verbs (resharding, fault injection, checking) live behind
`cluster.admin()`.

Run:  python examples/replicated_kv_store.py
"""

import asyncio

from repro import SystemConfig
from repro.adversary.byzantine import ValueForger
from repro.api import Cluster, Consistency, RetryPolicy
from repro.core.regular import CachedRegularStorageProtocol


async def main() -> None:
    # Per shard group: 4 replicas tolerate one arbitrary failure
    # (t = b = 1).  Three writer identities -> up to three concurrently
    # writing sessions, arbitrated by (epoch, writer_id) tags.
    config = SystemConfig.optimal(t=1, b=1, num_readers=2, num_writers=3)
    cluster = Cluster(CachedRegularStorageProtocol, config, num_shards=2,
                      jitter=0.002, record_history=True)
    print(f"cluster: 2 shard groups x [{config.describe()}]")

    async with cluster:
        # Sessions bundle identity + retries + consistency.  Nobody
        # passes writer_index/reader_index anymore.
        async with cluster.session(consistency=Consistency.REGULAR) as s:
            await s.put("user:42", "ada")
            await s.put("feature:dark-mode", True)
            print("user:42      =", await s.get("user:42"))
            print("feature flag =", await s.get("feature:dark-mode"))
            print("missing key  =", await s.get("nope"))

            # Batched writes: one coalesced round per shard group.
            await s.put_many({f"session:{n}": f"token-{n}"
                              for n in range(8)})

            # Two sessions writing concurrently = two leased writer
            # identities racing through tag arbitration.
            async with cluster.session() as other:
                await asyncio.gather(s.put("user:42", "ada lovelace"),
                                     other.put("user:42", "countess"))
                value, tag = await s.get_tagged("user:42")
                print(f"after racing writers: {value!r} "
                      f"(winning tag {tag!r})")

            # The headline: a cross-shard consistent snapshot.  Collects
            # converge on a cut of (epoch, writer_id) tags; per-key gets
            # could interleave with writers, a snapshot cannot.
            snap = await s.snapshot([f"session:{n}" for n in range(8)])
            print(f"snapshot of 8 keys across both shard groups "
                  f"({snap.rounds} collects):",
                  dict(sorted(snap.items())))

            # Compromise one replica of the shard group holding user:42.
            # The forged high-tag value cannot gather b+1 confirmations,
            # so reads keep returning the truth -- for every key that
            # shard serves.
            admin = cluster.admin()
            store = cluster.kv.store_for("user:42")
            admin.compromise_replica("user:42", 0, ValueForger(
                store.object_automaton(0), config,
                forged_value="$TAMPERED$", ts_boost=10**6))
            print("after compromising replica s1:", await s.get("user:42"))
            await s.put("user:42", "still consistent")
            print("after another write:", await s.get("user:42"))

            # Live reshard while serving.  The session's RetryPolicy
            # absorbs the migration's epoch fences: a put hitting a
            # mid-handoff key retries after the routing flip instead of
            # surfacing FencedWriteError.
            patient = cluster.session(
                retry=RetryPolicy(attempts=20, backoff=0.001))
            load = asyncio.create_task(
                patient.put("session:3", "written-mid-reshard"))
            report = await admin.add_shard()
            await load
            print("live reshard:", report.describe())
            print("mid-reshard put landed:", await s.get("session:3"))

            # Snapshots keep working across the handed-off keyspace.
            async with s.snapshot() as snap:
                print(f"post-reshard snapshot: {len(snap)} keys, "
                      f"{snap.rounds} collects")

        # Everything the run did -- per-register semantics AND every
        # snapshot cut -- checks clean against the recorded history.
        print("history check:", cluster.admin().check())
    print(cluster.describe())


if __name__ == "__main__":
    asyncio.run(main())
