#!/usr/bin/env python3
"""A Byzantine-tolerant replicated key-value store on the asyncio runtime.

The paper's motivating deployment: a client library storing *unsigned*
data on commodity storage nodes, some of which may be compromised.  Each
key is one SWMR regular register (the Section 5 protocol with the §5.1
cached-suffix optimization); the writer owns all keys, multiple readers
consume them.  Everything runs on real asyncio tasks with randomized
message jitter -- the same protocol automata the simulator verifies.

Run:  python examples/replicated_kv_store.py
"""

import asyncio
from typing import Any, Dict, Optional

from repro import SystemConfig
from repro.adversary.byzantine import ValueForger
from repro.core.regular import CachedRegularStorageProtocol
from repro.runtime import AsyncStorage
from repro.types import BOTTOM


class ReplicatedKV:
    """One register per key, all sharing a replica configuration."""

    def __init__(self, config: SystemConfig, jitter: float = 0.002):
        self.config = config
        self.jitter = jitter
        self._stores: Dict[str, AsyncStorage] = {}
        self._seed = 0

    async def _store_for(self, key: str) -> AsyncStorage:
        store = self._stores.get(key)
        if store is None:
            self._seed += 1
            store = AsyncStorage(CachedRegularStorageProtocol(),
                                 self.config, jitter=self.jitter,
                                 seed=self._seed)
            await store.start()
            self._stores[key] = store
        return store

    async def put(self, key: str, value: Any) -> None:
        store = await self._store_for(key)
        await store.write(value)

    async def get(self, key: str, reader_index: int = 0) -> Optional[Any]:
        store = await self._store_for(key)
        value = await store.read(reader_index)
        return None if value is BOTTOM else value

    async def compromise_replica(self, key: str, index: int) -> None:
        """Corrupt one replica of a key's register (for the demo)."""
        store = await self._store_for(key)
        honest = store._object_hosts[index].automaton
        store.make_byzantine(index, ValueForger(honest, self.config,
                                                forged_value="$TAMPERED$",
                                                ts_boost=10**6))

    async def close(self) -> None:
        for store in self._stores.values():
            await store.stop()


async def main() -> None:
    # 4 replicas tolerate one arbitrary failure (t = b = 1).
    config = SystemConfig.optimal(t=1, b=1, num_readers=2)
    kv = ReplicatedKV(config)
    print(f"replica set per key: {config.describe()}")

    try:
        # Normal operation.
        await kv.put("user:42", {"name": "ada"}["name"])
        await kv.put("feature:dark-mode", True)
        print("user:42      =", await kv.get("user:42"))
        print("feature flag =", await kv.get("feature:dark-mode"))
        print("missing key  =", await kv.get("nope"))

        # Two readers, concurrent with an update.
        results = await asyncio.gather(
            kv.put("user:42", "ada lovelace"),
            kv.get("user:42", reader_index=0),
            kv.get("user:42", reader_index=1),
        )
        print("concurrent readers saw:", results[1:], "(either value is "
              "regular)")

        # Compromise one replica: the forged high-timestamp value cannot
        # gather b+1 confirmations, so reads keep returning the truth.
        await kv.compromise_replica("user:42", 0)
        print("after compromising replica s1:",
              await kv.get("user:42"))
        await kv.put("user:42", "still consistent")
        print("after another write:", await kv.get("user:42", 1))
    finally:
        await kv.close()


if __name__ == "__main__":
    asyncio.run(main())
