#!/usr/bin/env python3
"""Side-by-side comparison of every storage protocol in the library.

For one configuration (t=2, b=1 where applicable) runs the same
write/read workload, fault-free and under the adversarial suite, and
prints measured rounds, messages and bytes per operation -- the paper's
Section 1 positioning as a table you can regenerate.

Run:  python examples/protocol_comparison.py
"""

from repro import StorageSystem, SystemConfig
from repro.adversary import adversarial_suite
from repro.baselines import (AbdRegularProtocol, AuthenticatedProtocol,
                             PassiveReaderProtocol)
from repro.core.regular import (CachedRegularStorageProtocol,
                                RegularStorageProtocol)
from repro.core.safe import SafeStorageProtocol
from repro.harness import render_table
from repro.spec import check_safety
from repro.spec.histories import READ
from repro.harness.metrics import max_rounds

T, B = 2, 1

ENTRIES = [
    ("abd-regular [3]", AbdRegularProtocol, 0),
    ("passive-reader [1]", PassiveReaderProtocol, B),
    ("authenticated [15]", AuthenticatedProtocol, B),
    ("gv-safe (Sec. 4)", SafeStorageProtocol, B),
    ("gv-regular (Sec. 5)", RegularStorageProtocol, B),
    ("gv-regular-cached (§5.1)", CachedRegularStorageProtocol, B),
]


def measure(factory, b):
    protocol = factory()
    config = SystemConfig.with_objects(
        t=T, b=b, num_objects=protocol.min_objects(T, b), num_readers=1)

    # fault-free
    system = StorageSystem(factory(), config)
    system.write("w1")
    handle = system.read_handle(0)
    ff_rounds = handle.rounds_used
    msgs = handle.operation.messages_sent
    byts = handle.operation.bytes_sent

    # adversarial worst case
    adv_rounds = ff_rounds
    for plan in adversarial_suite(config):
        system = StorageSystem(factory(), config)
        plan.apply(system)
        system.write("w1")
        system.read(0)
        system.write("w2")
        system.read(0)
        check_safety(system.history).assert_ok()
        adv_rounds = max(adv_rounds, max_rounds(system.history, READ))
    return config.num_objects, ff_rounds, adv_rounds, msgs, byts


def main() -> None:
    rows = []
    for name, factory, b in ENTRIES:
        S, ff, adv, msgs, byts = measure(factory, b)
        rows.append([name, f"{S} (b={b})", ff, adv, msgs, byts])
    print(render_table(
        ["protocol", "objects", "read rounds (benign)",
         "read rounds (attacked)", "msgs/read", "bytes/read"],
        rows,
        title=f"All protocols at t={T}; every attacked run passed the "
              "safety checker"))
    print()
    print("Takeaways (the paper's Section 1 in one table):")
    print(" * b=0 or signatures buy 1-round reads;")
    print(" * unauthenticated + Byzantine + optimal resilience costs "
          "exactly 2 rounds (never more, Proposition 2);")
    print(" * passive readers degrade to b+1 rounds under attack;")
    print(" * the §5.1 cache trades object memory for small messages.")


if __name__ == "__main__":
    main()
