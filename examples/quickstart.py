#!/usr/bin/env python3
"""Quickstart: an optimally resilient Byzantine-tolerant register.

Creates the paper's safe storage over S = 2t+b+1 = 6 simulated base
objects (t = 2 may fail, b = 1 of those arbitrarily), writes and reads
with two readers, crashes the budgeted objects, corrupts one, and checks
the run against the formal safety specification.

Run:  python examples/quickstart.py
"""

from repro import SafeStorageProtocol, StorageSystem, SystemConfig
from repro.adversary import forger, max_byzantine
from repro.spec import check_round_complexity, check_safety


def main() -> None:
    config = SystemConfig.optimal(t=2, b=1, num_readers=2)
    print(f"system: {config.describe()}")

    system = StorageSystem(SafeStorageProtocol(), config)

    # 1. plain write/read -------------------------------------------------
    system.write("genesis")
    print(f"r1 reads: {system.read(0)!r}")
    print(f"r2 reads: {system.read(1)!r}")

    # 2. crash the crash budget -------------------------------------------
    system.crash_object(0)
    system.write("after-one-crash")
    print(f"after crashing s1, r1 reads: {system.read(0)!r}")

    # 3. corrupt a Byzantine object ---------------------------------------
    plan = max_byzantine(config, forger(value="FORGED", ts_boost=10**6))
    fresh = StorageSystem(SafeStorageProtocol(), config)
    plan.apply(fresh)
    fresh.write("the-truth")
    value = fresh.read(0)
    print(f"with {plan.describe()}: r1 reads {value!r} "
          "(the forged high-timestamp value was filtered)")
    assert value == "the-truth"

    # 4. every run is checkable against the formal spec --------------------
    check_safety(fresh.history).assert_ok()
    check_round_complexity(fresh.history, max_read_rounds=2,
                           max_write_rounds=2).assert_ok()
    print("safety + 2-round complexity verified against the history ✓")

    # 5. rounds and messages are first-class metrics -----------------------
    handle = fresh.read_handle(1)
    print(f"a READ used {handle.rounds_used} round-trips and "
          f"{handle.operation.messages_sent} messages")


if __name__ == "__main__":
    main()
