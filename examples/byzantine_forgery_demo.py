#!/usr/bin/env python3
"""The lower bound, live: why a 1-round robust read cannot exist.

Stages the five-run indistinguishability construction of Proposition 1
against three plausible fast-read protocols at S = 2t + 2b, prints the
Figure 1 block diagrams, and shows the paper's own 2-round protocol
surviving the same attack.

Run:  python examples/byzantine_forgery_demo.py
"""

from repro import SafeStorageProtocol
from repro.core.lower_bound import (ALL_RULES, FastReadProtocol, figure1,
                                    run_lower_bound)

T, B = 2, 1


def main() -> None:
    print(figure1(t=T, b=B))
    print()

    print("=" * 72)
    print("Attacking three plausible fast-read protocols "
          f"(t={T}, b={B}, S={2 * T + 2 * B}):")
    print("=" * 72)
    for rule in ALL_RULES:
        report = run_lower_bound(lambda r=rule: FastReadProtocol(r),
                                 t=T, b=B)
        print()
        print(report.render())

    print()
    print("=" * 72)
    print("The paper's 2-round safe storage under the same construction:")
    print("=" * 72)
    report = run_lower_bound(SafeStorageProtocol, t=T, b=B)
    print(report.render())
    print()
    print("Interpretation: the 2-round read answered runs 3 and 4 "
          "*correctly* (returning v1) and in run5 refused to answer from "
          "the forged evidence -- it was waiting for the held block T2, "
          "which in any fair run would eventually respond and let it "
          "return ⊥.  One-round readers never get that second chance; "
          "that is Proposition 1.")


if __name__ == "__main__":
    main()
