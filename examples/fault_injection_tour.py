#!/usr/bin/env python3
"""A guided tour of the Byzantine behaviour library.

Runs the paper's safe storage against each corruption strategy in
:mod:`repro.adversary`, explains what the strategy tries to achieve, and
shows the protocol mechanism that absorbs it.  Finishes below optimal
resilience, where the same machinery demonstrates a real safety
violation (the reason the S >= 2t+b+1 guard exists).

Run:  python examples/fault_injection_tour.py
"""

from repro import StorageSystem, SystemConfig
from repro.adversary import (forger, garbage, max_byzantine, mute, stale,
                             tsr_inflater)
from repro.core.safe import SafeStorageProtocol
from repro.harness.experiments.e10_resilience import _stale_write_attack
from repro.spec import check_safety

TOUR = [
    (mute(), "mute",
     "stays silent; indistinguishable from a crash. Absorbed because "
     "every wait condition needs only S-t responders."),
    (stale(), "stale replier",
     "pretends the write never happened. Absorbed because b+1 matching "
     "confirmations are required and at most b objects can lie."),
    (forger(), "value forger",
     "invents a high-timestamp value. Absorbed for the same reason: a "
     "never-written tuple gathers at most b supporters, so safe(c) "
     "never holds for it, and t+b+1 honest denials eliminate it."),
    (tsr_inflater(), "tsr inflater",
     "accuses honest objects of reporting future reader timestamps, "
     "trying to wedge round 1. Absorbed by the conflict predicate: the "
     "reader routes around accuser/accused pairs (Lemma 1/2)."),
    (garbage(seed=3), "random garbage",
     "emits arbitrary well-typed junk. Absorbed by all of the above in "
     "combination."),
]


def main() -> None:
    config = SystemConfig.optimal(t=2, b=1, num_readers=1)
    print(f"target: the Section 4 safe storage, {config.describe()}\n")

    for strategy, name, story in TOUR:
        system = StorageSystem(SafeStorageProtocol(), config)
        plan = max_byzantine(config, strategy)
        plan.apply(system)
        system.write("v1")
        r1 = system.read_handle(0)
        system.write("v2")
        r2 = system.read_handle(0)
        check_safety(system.history).assert_ok()
        print(f"[{name}]")
        print(f"  {story}")
        print(f"  reads returned {r1.result!r}, {r2.result!r} in "
              f"{r1.rounds_used} and {r2.rounds_used} rounds -- safety "
              "checker: OK\n")

    print("-" * 72)
    print("And below optimal resilience (S = 2t+b), the two-faced "
          "strategy buries a completed write:")
    violated = _stale_write_attack(t=2, b=1, num_objects=5)
    print(f"  S=5, t=2, b=1: safety violated = {violated}")
    print("  (the same attack at S=6 is absorbed -- run experiment E10)")


if __name__ == "__main__":
    main()
