"""Round bookkeeping shared by quorum-based client operations.

A *communication round-trip* (Section 2.3) is: broadcast to all objects,
collect acknowledgments, terminate once a protocol-specific predicate over
the collected acks holds (at the latest when ``S - t`` correct objects have
answered).  :class:`RoundCollector` implements the bookkeeping every
protocol repeats: which objects already answered this round, with stale
replies (earlier rounds, earlier operations) filtered out by a
freshness key.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, List, Optional, Set, TypeVar

AckT = TypeVar("AckT")


class RoundCollector(Generic[AckT]):
    """Collects one round's acknowledgments, keyed by object index.

    ``freshness`` is the value (typically the reader/writer timestamp the
    round was tagged with) that a genuine ack for this round must echo;
    acks echoing anything else are counted as stale and ignored.  Duplicate
    acks from the same object are ignored too -- a Byzantine object must
    not be able to inflate counts by spamming.
    """

    def __init__(self, round_index: int, freshness: Any):
        self.round_index = round_index
        self.freshness = freshness
        self.acks: Dict[int, AckT] = {}
        self.stale = 0
        self.duplicates = 0

    def offer(self, object_index: int, echoed_freshness: Any,
              ack: AckT) -> bool:
        """Record an ack; returns True if it was fresh and new."""
        if echoed_freshness != self.freshness:
            self.stale += 1
            return False
        if object_index in self.acks:
            self.duplicates += 1
            return False
        self.acks[object_index] = ack
        return True

    @property
    def responders(self) -> Set[int]:
        return set(self.acks)

    def count(self) -> int:
        return len(self.acks)

    def has_quorum(self, quorum: int) -> bool:
        return len(self.acks) >= quorum

    def ack_of(self, object_index: int) -> Optional[AckT]:
        return self.acks.get(object_index)

    def __repr__(self) -> str:
        return (f"RoundCollector(round={self.round_index}, "
                f"acks={sorted(self.acks)}, stale={self.stale})")
