"""Round bookkeeping shared by quorum-based client operations.

A *communication round-trip* (Section 2.3) is: broadcast to all objects,
collect acknowledgments, terminate once a protocol-specific predicate over
the collected acks holds (at the latest when ``S - t`` correct objects have
answered).  :class:`RoundCollector` implements the bookkeeping every
protocol repeats: which objects already answered this round, with stale
replies (earlier rounds, earlier operations) filtered out by a
freshness key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generic, List, Optional, Set, TypeVar

from ..types import TAG0, WriterTag

AckT = TypeVar("AckT")


class RoundCollector(Generic[AckT]):
    """Collects one round's acknowledgments, keyed by object index.

    ``freshness`` is the value (typically the reader/writer timestamp the
    round was tagged with) that a genuine ack for this round must echo;
    acks echoing anything else are counted as stale and ignored.  Duplicate
    acks from the same object are ignored too -- a Byzantine object must
    not be able to inflate counts by spamming.
    """

    def __init__(self, round_index: int, freshness: Any):
        self.round_index = round_index
        self.freshness = freshness
        self.acks: Dict[int, AckT] = {}
        self.stale = 0
        self.duplicates = 0

    def offer(self, object_index: int, echoed_freshness: Any,
              ack: AckT) -> bool:
        """Record an ack; returns True if it was fresh and new."""
        if echoed_freshness != self.freshness:
            self.stale += 1
            return False
        if object_index in self.acks:
            self.duplicates += 1
            return False
        self.acks[object_index] = ack
        return True

    @property
    def responders(self) -> Set[int]:
        return set(self.acks)

    def count(self) -> int:
        return len(self.acks)

    def has_quorum(self, quorum: int) -> bool:
        return len(self.acks) >= quorum

    def ack_of(self, object_index: int) -> Optional[AckT]:
        return self.acks.get(object_index)

    def __repr__(self) -> str:
        return (f"RoundCollector(round={self.round_index}, "
                f"acks={sorted(self.acks)}, stale={self.stale})")


class TagDiscovery:
    """The MWMR read-timestamp phase, shared by every writer automaton.

    Before installing a value, a multi-writer writer broadcasts a tag
    query, collects a quorum of ``(epoch, writer_id)`` tags, and picks
    ``(max_epoch + 1, own_writer_id)`` -- the classic ABD-style epoch bump
    with writer-id tie-break.  The helper owns the bookkeeping every
    protocol repeats: freshness (acks must echo the query nonce), dedup
    per object, the running maximum, and the floor of the writer's own
    last-used epoch so a writer's tags stay monotone even if a quorum
    under-reports (a Byzantine minority cannot lower the maximum a whole
    quorum observed, and inflated reports merely waste epochs).
    """

    def __init__(self, nonce: int, quorum: int, writer_id: int,
                 floor: WriterTag = TAG0):
        self.collector: RoundCollector[WriterTag] = RoundCollector(
            round_index=0, freshness=nonce)
        self.quorum = quorum
        self.writer_id = writer_id
        self.max_tag = floor

    def offer(self, object_index: int, echoed_nonce: int,
              tag: WriterTag) -> bool:
        """Record one object's tag report; returns True if fresh and new."""
        if not self.collector.offer(object_index, echoed_nonce, tag):
            return False
        if tag > self.max_tag:
            self.max_tag = tag
        return True

    def ready(self) -> bool:
        return self.collector.has_quorum(self.quorum)

    def chosen_tag(self) -> WriterTag:
        """The tag this writer installs: bumped epoch, own writer id."""
        return self.max_tag.next_for(self.writer_id)


# ---------------------------------------------------------------------------
# Tag leases (contention-adaptive fast reads)
# ---------------------------------------------------------------------------


@dataclass
class TagLease:
    """A certified ``(tag, value)`` a reader may try to fast-read from.

    A lease is *granted* only from quorum-held evidence: a completed write
    ack, an atomic read (post write-back), a regular read on a regular
    cluster, or a certified snapshot collect.  Holding one entitles the
    reader to attempt a single-round :class:`~repro.messages.LeaseProbe`
    instead of full history collection; it guarantees nothing by itself --
    the probe round re-certifies freshness against a live quorum.

    ``failures`` drives contention adaptivity: consecutive fallbacks grow
    an exponential backoff of classic reads that skip the probe entirely,
    so a contended register degrades to classic-round cost (plus nothing)
    instead of paying probe + classic on every read.
    """

    tag: WriterTag
    value: Any
    failures: int = 0
    skips_left: int = 0

    #: cap the probe-skipping backoff at this many classic reads.
    MAX_SKIPS = 64

    def refresh(self, tag: WriterTag, value: Any) -> None:
        """Adopt newer certified evidence (monotone in the tag order)."""
        if tag >= self.tag:
            self.tag = tag
            self.value = value

    def record_hit(self) -> None:
        self.failures = 0
        self.skips_left = 0

    def record_fallback(self) -> None:
        self.failures += 1
        self.skips_left = min(self.MAX_SKIPS, 1 << min(self.failures, 6))

    def should_probe(self) -> bool:
        """Whether the next read should attempt the fast path at all."""
        if self.skips_left > 0:
            self.skips_left -= 1
            return False
        return True


class LeaseValidation:
    """Collects :class:`~repro.messages.LeaseProbeAck` verdicts for a probe.

    The fast read returns iff a quorum of fresh acks arrives in which

    * **every** ack's top tag is at most the lease tag (any honest object
      reporting a newer tag refutes the lease -- by quorum intersection a
      completed newer write overlaps the responders in ``S - 2t >= b + 1``
      objects, at least one honest),
    * **no** ack reports a fence (a fenced register is mid-handoff; the
      classic path re-routes), and
    * at least ``b + 1`` acks confirm they *hold* the leased write
      complete -- one of them is honest, so the leased value really is a
      quorum-installed write, defending against restarted-empty replicas
      and Byzantine confirmation.

    The decision is taken at the first quorum of fresh acks, mirroring
    :class:`TagDiscovery`; any refutation before that point short-circuits
    to fallback immediately.
    """

    def __init__(self, nonce: int, quorum: int,
                 confirmation_threshold: int, lease_tag: WriterTag):
        self.collector: RoundCollector[Any] = RoundCollector(
            round_index=0, freshness=nonce)
        self.quorum = quorum
        self.confirmation_threshold = confirmation_threshold
        self.lease_tag = lease_tag
        self.holds = 0
        self.refuted = False

    def offer(self, object_index: int, echoed_nonce: int, ack: Any) -> bool:
        """Record one probe ack; returns True if fresh and new."""
        if not self.collector.offer(object_index, echoed_nonce, ack):
            return False
        if ack.fenced or ack.tag > self.lease_tag:
            self.refuted = True
        if ack.holds:
            self.holds += 1
        return True

    def decided(self) -> bool:
        """The probe round has an outcome (valid or refuted)."""
        return self.refuted or self.collector.has_quorum(self.quorum)

    def valid(self) -> bool:
        """Quorum collected, nothing refuted, b+1 confirmations."""
        return (not self.refuted
                and self.collector.has_quorum(self.quorum)
                and self.holds >= self.confirmation_threshold)
