"""Protocol automaton interfaces shared by the simulator and runtimes."""

from .base import ClientOperation, ObjectAutomaton, Outgoing
from .rounds import RoundCollector

__all__ = ["ClientOperation", "ObjectAutomaton", "Outgoing", "RoundCollector"]
