"""Transport-agnostic protocol automata.

Every protocol in this library is written against two small interfaces, so
the same code runs unchanged on the deterministic simulator
(:mod:`repro.sim`) and on the asyncio runtime (:mod:`repro.runtime`):

* :class:`ObjectAutomaton` -- a base storage object.  It is a *reactive*
  state machine: the model (Section 2.1) only lets non-malicious objects
  send messages in the very step in which they receive one, so the whole
  interface is ``on_message -> replies``.

* :class:`ClientOperation` -- one invocation of READ or WRITE.  It emits an
  initial batch of messages (:meth:`start`), consumes replies
  (:meth:`on_message`), may emit further batches (subsequent rounds), and
  eventually sets :attr:`result`.  Round accounting is explicit: protocols
  call :meth:`begin_round` so the harness can verify worst-case round
  complexity *structurally* instead of trusting counters sprinkled in
  protocol code.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Tuple

from ..errors import ProtocolError
from ..messages import Batch, EpochFenceAck, Message, WriteFenced
from ..types import DEFAULT_REGISTER, ProcessId, fresh_operation_id, obj

#: Outgoing messages: ``(receiver, payload)`` pairs.
Outgoing = List[Tuple[ProcessId, Any]]

#: Broadcast messages collected by the vector round engine: every message
#: appended to a sink is sent, once, to *all* base objects (wrapped with
#: its burst siblings into a single :class:`~repro.messages.Batch` per
#: object).  All client rounds of the protocols in this library are full
#: broadcasts, which is what makes the shared sink sound.
Sink = List[Message]


class ObjectAutomaton(ABC):
    """A base storage object ``s_i``.

    Subclasses keep all protocol state in instance attributes and implement
    :meth:`on_message`.  State snapshot/restore is generic (deep copy of
    ``__dict__``) and exists so the lower-bound adversary can capture a
    state ``σ`` from one partial run and force a malicious object to forge
    it in another -- precisely the move in the Proposition 1 proof.
    """

    def __init__(self, object_index: int):
        self.object_index = object_index

    @abstractmethod
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        """Process one message, return replies (usually to ``sender``)."""

    # -- batched delivery (vector rounds) -----------------------------------
    def handle_batch(self, sender: ProcessId, parts: Tuple[Any, ...],
                     sink: Sink) -> Outgoing:
        """Process a batch of same-sender messages in one call.

        Replies addressed back to ``sender`` are appended to ``sink`` --
        the transport wraps the whole sink into one reply frame -- and
        anything else (raw probes, replies routed elsewhere) is returned
        as ordinary ``(receiver, payload)`` pairs.  The default simply
        loops :meth:`on_message`, so every automaton (including
        adversarial ones that override only ``on_message``) keeps its
        exact semantics; hot automata override this with a tight loop
        that decodes once and dispatches per-register slots directly.
        """
        leftovers: Outgoing = []
        append = sink.append
        for part in parts:
            for receiver, payload in self.on_message(sender, part) or []:
                if receiver == sender and isinstance(payload, Message) \
                        and not isinstance(payload, Batch):
                    append(payload)
                else:
                    leftovers.append((receiver, payload))
        return leftovers

    # -- state capture (lower-bound machinery) ------------------------------
    def snapshot_state(self) -> Any:
        return copy.deepcopy(self.__dict__)

    def restore_state(self, state: Any) -> None:
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(state))

    def describe_state(self) -> str:
        """Human-readable state summary for traces and diagrams."""
        return repr({k: v for k, v in sorted(self.__dict__.items())})


class MultiRegisterObject(ObjectAutomaton):
    """An object automaton multiplexing many registers over one process.

    Protocol state lives in per-register *slots* (``self.slots[register_id]``),
    created lazily on the first message that addresses a register.  Handlers
    look their slot up via :meth:`_slot`; everything else about the automaton
    -- one inbox, one identity, one channel per client -- is shared, which is
    what lets a single replica set serve arbitrarily many registers.

    Every multi-register object also understands *epoch fences*
    (:class:`~repro.messages.EpochFence`), the reconfiguration
    primitive: ``fences[register_id]`` is the minimum tag epoch a write
    round must carry to be applied.  Fenced write rounds are refused with
    a :class:`~repro.messages.WriteFenced` report instead of being
    silently applied, so a stale writer terminates (with an error) rather
    than corrupting a register that has been handed to another replica
    set.  Concrete automata consult :meth:`_fence_rejects` on their write
    paths and dispatch :class:`~repro.messages.EpochFence` to
    :meth:`_on_epoch_fence`.
    """

    def __init__(self, object_index: int):
        super().__init__(object_index)
        self.slots: dict = {}
        #: register_id -> minimum tag epoch accepted by write rounds.
        self.fences: dict = {}
        #: registers retired here outright: every write round refused.
        self.hard_fences: set = set()

    @abstractmethod
    def _new_slot(self) -> Any:
        """A fresh register slot in its initial state."""

    def _slot(self, register_id: str) -> Any:
        slot = self.slots.get(register_id)
        if slot is None:
            slot = self.slots[register_id] = self._new_slot()
        return slot

    def registers(self) -> List[str]:
        """Ids of every register this object has (lazily) materialized."""
        return sorted(self.slots)

    # -- epoch fencing (reconfiguration) --------------------------------
    def _on_epoch_fence(self, sender: ProcessId, message: Any) -> Outgoing:
        """Ratchet the register's fence upward and acknowledge it.

        Fence messages never weaken a fence (epochs only rise, hard
        stays hard); the one exception is an explicit ``lift`` -- the
        control plane handing a previously moved-away register back to
        this replica set -- which clears both fences.  Clients are
        trusted in the model, and tag arbitration still buries any
        stale write below the replayed tag.
        """
        register_id = message.register_id
        if getattr(message, "lift", False):
            self.fences.pop(register_id, None)
            self.hard_fences.discard(register_id)
            return [(sender, EpochFenceAck(
                nonce=message.nonce,
                object_index=self.object_index,
                epoch=message.epoch,
                register_id=register_id))]
        current = self.fences.get(register_id, 0)
        if message.epoch > current:
            self.fences[register_id] = message.epoch
        if getattr(message, "hard", False):
            self.hard_fences.add(register_id)
        return [(sender, EpochFenceAck(
            nonce=message.nonce,
            object_index=self.object_index,
            epoch=self.fences[register_id],
            register_id=register_id))]

    def _fence_rejects(self, register_id: str, epoch: int) -> bool:
        """Whether a write round installing ``epoch`` must be refused."""
        if register_id in self.hard_fences:
            return True  # retired: no epoch passes, however high
        fence = self.fences.get(register_id)
        return fence is not None and epoch < fence

    def _fence_nack_msg(self, register_id: str, epoch: int,
                        wid: int = 0, nonce: int = 0) -> WriteFenced:
        """The :class:`~repro.messages.WriteFenced` report for a refusal."""
        return WriteFenced(
            object_index=self.object_index,
            epoch=epoch,
            fence_epoch=self.fences.get(register_id, 0),
            wid=wid,
            nonce=nonce,
            register_id=register_id)

    def _fence_nack(self, sender: ProcessId, register_id: str, epoch: int,
                    wid: int = 0, nonce: int = 0) -> Outgoing:
        """``_fence_nack_msg`` addressed back to the refused sender."""
        return [(sender, self._fence_nack_msg(register_id, epoch,
                                              wid, nonce))]


def split_broadcast(outgoing: Outgoing, sink: Sink,
                    leftovers: Outgoing) -> None:
    """Split an operation's outgoing into broadcasts vs. directed sends.

    Protocol rounds are built once and paired with every object --
    ``[(obj(0), m), (obj(1), m), ...]`` with the *same* message object --
    so a full broadcast is recognized by payload identity plus the
    in-order object receivers, and collapses to one sink entry.
    Anything else stays a directed ``(receiver, payload)`` pair.
    """
    n = len(outgoing)
    if n > 1:
        payload = outgoing[0][1]
        if (isinstance(payload, Message)
                and all(pair[1] is payload for pair in outgoing)
                and all(pair[0] is obj(i)
                        for i, pair in enumerate(outgoing))):
            sink.append(payload)
            return
    leftovers.extend(outgoing)


def resolve_batch_handler(
        automaton: ObjectAutomaton
) -> Callable[[ProcessId, Tuple[Any, ...], Sink], Outgoing]:
    """The batch entry point that is *provably consistent* with the
    automaton's ``on_message``.

    A specialized :meth:`ObjectAutomaton.handle_batch` bypasses
    ``on_message`` for its hot message types, so a subclass that
    overrides ``on_message`` *below* the class that declared the fast
    path (a Byzantine variant, say) must not inherit it silently.  The
    rule: use the specialized handler only if ``on_message`` is declared
    at or above it in the MRO, or the overriding class opts back in with
    ``_on_message_batch_compatible = True`` (for overrides that only add
    new message types, like the atomic object's write-back).
    """
    cls = type(automaton)
    mro = cls.__mro__
    hb_owner = next(c for c in mro if "handle_batch" in c.__dict__)
    if hb_owner is ObjectAutomaton:
        return automaton.handle_batch  # generic loop: always consistent
    om_owner = next(c for c in mro if "on_message" in c.__dict__)
    if (mro.index(om_owner) >= mro.index(hb_owner)
            or om_owner.__dict__.get("_on_message_batch_compatible", False)):
        return automaton.handle_batch
    # on_message was overridden after the fast path was declared: fall
    # back to the generic loop so the override keeps full authority.
    return lambda sender, parts, sink: ObjectAutomaton.handle_batch(
        automaton, sender, parts, sink)


class ClientOperation(ABC):
    """One READ or WRITE invocation, as a resumable state machine."""

    #: Subclasses set this: "READ" or "WRITE" (used by history recording).
    kind: str = "OP"

    def __init__(self, client_id: ProcessId,
                 register_id: str = DEFAULT_REGISTER):
        self.client_id = client_id
        #: the register this operation addresses; operations stamp it on
        #: every message they send and ignore replies tagged otherwise.
        self.register_id = register_id
        self.operation_id = fresh_operation_id()
        self.done = False
        self._result: Any = None
        self.rounds_used = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        #: the (epoch, writer_id) tag this operation installed (WRITE) or
        #: observed (READ); protocols set it before completing so history
        #: recorders can feed the multi-writer checkers.
        self.tag = None

    # -- protocol surface ----------------------------------------------------
    @abstractmethod
    def start(self) -> Outgoing:
        """Invocation step: produce the first round's messages."""

    @abstractmethod
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        """Consume a reply; possibly emit the next round's messages."""

    # -- vector rounds -------------------------------------------------------
    # The multi-key round engine drives many same-client operations with
    # one frame per (replica, step): inbound acks are *absorbed* (cheap
    # recording, no decisions) part by part, then each touched operation
    # *advances* once per burst -- round conditions are evaluated once
    # over all the evidence that arrived together instead of once per
    # ack.  The default implementation adapts any operation by buffering
    # and replaying through :meth:`on_message`, so every protocol rides
    # the batched frames; hot operations override all three with native
    # array-tracked state.

    def start_vector(self, sink: Sink, leftovers: Outgoing) -> None:
        """Invocation step for the vector engine (broadcasts to sink)."""
        split_broadcast(self.start() or [], sink, leftovers)

    def absorb(self, sender: ProcessId, message: Any) -> None:
        """Record one inbound part; decisions are deferred to advance()."""
        buffer = getattr(self, "_vector_buffer", None)
        if buffer is None:
            buffer = self._vector_buffer = []
        buffer.append((sender, message))

    def advance(self, sink: Sink, leftovers: Outgoing) -> None:
        """Evaluate round conditions once over everything absorbed."""
        buffer = getattr(self, "_vector_buffer", None)
        if not buffer:
            return
        self._vector_buffer = []
        for sender, message in buffer:
            if self.done:
                break
            split_broadcast(self.on_message(sender, message) or [],
                            sink, leftovers)

    # -- round & completion accounting ----------------------------------------
    def begin_round(self) -> None:
        """Protocols call this when they broadcast a new round."""
        self.rounds_used += 1

    def complete(self, result: Any) -> Outgoing:
        """Mark the operation finished; convenience returns no messages."""
        if self.done:
            raise ProtocolError(
                f"operation {self.operation_id} completed twice")
        self.done = True
        self._result = result
        return []

    @property
    def result(self) -> Any:
        if not self.done:
            raise ProtocolError(
                f"operation {self.operation_id} has not completed")
        return self._result

    def describe(self) -> str:
        return f"{self.kind}#{self.operation_id} by {self.client_id!r}"
