"""Experiment harness: workloads, metrics, tables and the E1-E10 registry."""

from .experiments import REGISTRY, ExperimentResult, run_all
from .metrics import OperationMetrics, Summary, max_rounds
from .tables import render_kv, render_table
from .workloads import (WorkloadSpec, run_concurrent, run_read_heavy,
                        run_sequential)

__all__ = [
    "REGISTRY",
    "ExperimentResult",
    "run_all",
    "OperationMetrics",
    "Summary",
    "max_rounds",
    "render_table",
    "render_kv",
    "WorkloadSpec",
    "run_sequential",
    "run_concurrent",
    "run_read_heavy",
]
