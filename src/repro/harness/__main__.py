"""CLI: ``python -m repro.harness [E1 E2 ...]`` runs the experiments.

With no arguments every experiment runs in order; the exit code is the
number of experiments whose measurement contradicted the paper's claim.
"""

from __future__ import annotations

import sys
import time

from .experiments import run_all


def main(argv=None) -> int:
    ids = list(argv if argv is not None else sys.argv[1:]) or None
    failures = 0
    started = time.perf_counter()
    for result in run_all(ids):
        print(result.render())
        print()
        if not result.ok:
            failures += 1
    elapsed = time.perf_counter() - started
    print(f"ran {'all' if ids is None else len(ids)} experiment(s) in "
          f"{elapsed:.1f}s; {failures} mismatch(es)")
    return failures


if __name__ == "__main__":
    raise SystemExit(main())
