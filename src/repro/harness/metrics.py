"""Operation-level metrics aggregation."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..spec.histories import History, OperationRecord, READ, WRITE


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float
    minimum: float

    @classmethod
    def of(cls, sample: Sequence[float]) -> "Summary":
        if not sample:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        ordered = sorted(sample)

        def pct(q: float) -> float:
            idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
            return ordered[idx]

        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=pct(0.50),
            p95=pct(0.95),
            maximum=ordered[-1],
            minimum=ordered[0],
        )


@dataclass
class OperationMetrics:
    """Rounds/latency metrics split by operation kind."""

    read_rounds: Summary
    write_rounds: Summary
    read_latency: Summary
    write_latency: Summary
    incomplete: int

    @classmethod
    def from_history(cls, history: History) -> "OperationMetrics":
        reads = [r for r in history.operations() if r.kind == READ]
        writes = [r for r in history.operations() if r.kind == WRITE]

        def rounds(records: List[OperationRecord]) -> List[float]:
            return [float(r.rounds_used) for r in records if r.complete]

        def latency(records: List[OperationRecord]) -> List[float]:
            out = []
            for r in records:
                if r.complete and r.completed_at is not None:
                    out.append(r.completed_at - r.invoked_at)
            return out

        incomplete = sum(1 for r in history.operations() if not r.complete)
        return cls(
            read_rounds=Summary.of(rounds(reads)),
            write_rounds=Summary.of(rounds(writes)),
            read_latency=Summary.of(latency(reads)),
            write_latency=Summary.of(latency(writes)),
            incomplete=incomplete,
        )


def max_rounds(history: History, kind: str) -> int:
    values = [r.rounds_used for r in history.operations()
              if r.kind == kind and r.complete]
    return max(values) if values else 0
