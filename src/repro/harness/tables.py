"""Plain-text table rendering for experiment output.

Every experiment prints its results as fixed-width ASCII tables so the
benchmark logs read like the paper's exposition: a claim column next to a
measured column.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def _stringify(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    return str(cell)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned table with a header rule."""
    str_rows: List[List[str]] = [[_stringify(c) for c in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[idx])
                         for idx, cell in enumerate(row)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_kv(pairs: Iterable[Sequence[Any]], title: Optional[str] = None
              ) -> str:
    """Key/value block (used for experiment headers)."""
    lines = [title] if title else []
    pairs = list(pairs)
    width = max((len(str(k)) for k, _ in pairs), default=0)
    for key, value in pairs:
        lines.append(f"  {str(key).ljust(width)} : {_stringify(value)}")
    return "\n".join(lines)
