"""E1 -- Figure 1 / Proposition 1: no fast READ with ``S <= 2t + 2b``.

For a sweep of thresholds the mechanized five-run adversary attacks three
plausible fast-read protocols; each attack must end in a safety violation
(in run4 or run5).  The paper's own 2-round protocols are attacked too and
must *survive by blocking* -- evidence the construction specifically
kills 1-round reads.  Finally, the threshold-rule fast reader is run at
``S = 2t + 2b + 1``, one object above the bound, where the construction
no longer applies and randomized safety fuzzing finds no violation: the
bound is tight in both directions.
"""

from __future__ import annotations

from typing import List

from ...adversary import adversarial_suite
from ...config import SystemConfig
from ...core.lower_bound import (ALL_RULES, FastReadProtocol, figure1,
                                 run_lower_bound)
from ...core.regular import RegularStorageProtocol
from ...core.safe import SafeStorageProtocol
from ...sim import RandomScheduler
from ...spec import check_safety
from ...system import StorageSystem
from ..tables import render_table
from .base import ExperimentResult, register

SWEEP = [(1, 1), (2, 1), (2, 2), (3, 2)]


def _fuzz_above_threshold(t: int, b: int, seeds: int = 5) -> int:
    """Safety violations of the threshold fast reader at S = 2t+2b+1."""
    violations = 0
    config = SystemConfig.with_objects(t=t, b=b,
                                       num_objects=2 * t + 2 * b + 1,
                                       num_readers=1)
    for seed in range(seeds):
        system = StorageSystem(FastReadProtocol("threshold"), config,
                               scheduler=RandomScheduler(seed))
        for plan in adversarial_suite(config):
            plan_system = StorageSystem(FastReadProtocol("threshold"),
                                        config,
                                        scheduler=RandomScheduler(seed))
            plan.apply(plan_system)
            plan_system.write("a")
            plan_system.read(0)
            plan_system.write("b")
            plan_system.read(0)
            if not check_safety(plan_system.history).ok:
                violations += 1
        del system
    return violations


@register("E1")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    all_violated = True
    all_survived = True

    for t, b in SWEEP:
        for rule in ALL_RULES:
            report = run_lower_bound(
                lambda r=rule: FastReadProtocol(r), t=t, b=b)
            rows.append([
                f"t={t},b={b}", f"S={report.config.num_objects}",
                f"fast-read[{rule}]",
                "VIOLATED" if report.violated else "survived",
                report.violation_run or report.blocked_run or "-",
            ])
            all_violated &= report.violated
        for factory, label in ((SafeStorageProtocol, "gv-safe (2-round)"),
                               (RegularStorageProtocol,
                                "gv-regular (2-round)")):
            report = run_lower_bound(factory, t=t, b=b)
            rows.append([
                f"t={t},b={b}", f"S={report.config.num_objects}", label,
                "VIOLATED" if report.violated else "survived",
                report.violation_run or report.blocked_run or "-",
            ])
            all_survived &= not report.violated

    # Tightness: one object above the bound, the fast threshold reader is
    # safe under the adversarial sweep.
    fuzz_violations = sum(_fuzz_above_threshold(t, b) for t, b in SWEEP[:2])

    ok = all_violated and all_survived and fuzz_violations == 0
    table = render_table(
        ["thresholds", "objects", "protocol", "verdict", "decisive run"],
        rows,
        title="Proposition 1: the five-run construction vs every protocol",
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Lower bound (Proposition 1, Figure 1)",
        paper_claim=("no fast-READ safe storage exists with S <= 2t+2b "
                     "objects; the construction of Figure 1 exhibits a "
                     "read returning a value never written (run5) or "
                     "missing a completed write (run4)"),
        measured=(f"every 1-round victim violated safety "
                  f"({'yes' if all_violated else 'NO'}); 2-round protocols "
                  f"survived by blocking ({'yes' if all_survived else 'NO'});"
                  f" at S = 2t+2b+1 the threshold fast reader showed "
                  f"{fuzz_violations} violations under adversarial fuzz"),
        ok=ok,
        table=table,
        details=["", figure1(t=1, b=1)],
        data={"rows": rows, "fuzz_violations": fuzz_violations},
    )
