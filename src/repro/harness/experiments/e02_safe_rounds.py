"""E2 -- Proposition 2: the safe storage does 2-round READs and WRITEs.

Sweeps thresholds, schedulers and fault plans; records the *maximum*
rounds any operation used.  The claim is worst-case, so the measurement
is a max over adversarial conditions, not an average.
"""

from __future__ import annotations

from typing import List

from ...adversary import adversarial_suite
from ...config import SystemConfig
from ...core.safe import SafeStorageProtocol
from ...sim import FifoScheduler, LifoScheduler, RandomScheduler
from ...spec import check_safety
from ...spec.histories import READ, WRITE
from ...system import StorageSystem
from ..metrics import max_rounds
from ..tables import render_table
from ..workloads import WorkloadSpec, run_concurrent, run_sequential
from .base import ExperimentResult, register

SWEEP = [(1, 1), (2, 1), (2, 2), (3, 2), (3, 3)]


@register("E2")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    worst_read = 0
    worst_write = 0
    all_safe = True

    for t, b in SWEEP:
        config = SystemConfig.optimal(t=t, b=b, num_readers=2)
        max_r = 0
        max_w = 0
        for scheduler_factory in (lambda: FifoScheduler(),
                                  lambda: LifoScheduler(),
                                  lambda: RandomScheduler(11)):
            for plan in adversarial_suite(config):
                system = StorageSystem(SafeStorageProtocol(), config,
                                       scheduler=scheduler_factory())
                plan.apply(system)
                run_sequential(system, num_writes=3, reads_per_write=1)
                run_concurrent(system, WorkloadSpec(num_writes=3,
                                                    reads_per_reader=3,
                                                    seed=5))
                history = system.history
                max_r = max(max_r, max_rounds(history, READ))
                max_w = max(max_w, max_rounds(history, WRITE))
                all_safe &= check_safety(history).ok
        rows.append([f"t={t},b={b}", f"S={config.num_objects}",
                     max_w, max_r])
        worst_read = max(worst_read, max_r)
        worst_write = max(worst_write, max_w)

    ok = worst_read <= 2 and worst_write <= 2 and all_safe
    table = render_table(
        ["thresholds", "objects (2t+b+1)", "max WRITE rounds",
         "max READ rounds"],
        rows,
        title="Worst-case rounds over schedulers x fault plans x workloads",
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Safe storage round complexity (Proposition 2)",
        paper_claim=("optimally resilient safe storage where every READ "
                     "and WRITE completes in at most 2 rounds"),
        measured=(f"max WRITE rounds = {worst_write}, max READ rounds = "
                  f"{worst_read}, safety clean = {all_safe}"),
        ok=ok,
        table=table,
        data={"worst_read": worst_read, "worst_write": worst_write},
    )
