"""E10 -- the optimal-resilience boundary (``S = 2t + b + 1``, [17]).

Three measurements per threshold pair:

1. **guard**: the library refuses to instantiate the paper's protocols
   below ``2t + b + 1`` objects (:class:`~repro.errors.ResilienceError`);
2. **why**: a deliberately unguarded variant at ``S = 2t + b`` is broken
   by a scripted attack -- a two-faced Byzantine block acknowledges a
   write that ``t`` objects then take to the grave, leaving no correct
   evidence for readers: a completed WRITE becomes invisible, violating
   safety;
3. **tightness**: at ``S = 2t + b + 1`` (and above) the same attack is
   absorbed -- the write quorum now guarantees a correct, surviving
   witness.
"""

from __future__ import annotations

from typing import List

from ...adversary.byzantine import TwoFaced
from ...config import SystemConfig
from ...core.safe import SafeStorageProtocol
from ...errors import ResilienceError, SchedulerExhaustedError
from ...spec import check_safety
from ...system import StorageSystem
from ...types import BOTTOM, WRITER, obj
from ..tables import render_table
from .base import ExperimentResult, register

SWEEP = [(1, 1), (2, 1), (2, 2)]


class UnguardedSafeProtocol(SafeStorageProtocol):
    """The paper's safe protocol with the resilience guard removed.

    Exists purely to demonstrate the failure mode; never use it.
    """

    name = "gv-safe-UNGUARDED"

    def min_objects(self, t: int, b: int) -> int:
        return t + 1


def _stale_write_attack(t: int, b: int, num_objects: int) -> bool:
    """Run the buried-write attack; returns True iff safety was violated.

    Object layout: ``[0, b)`` two-faced Byzantine, ``[b, b+t)`` will crash
    right after acknowledging the write, the rest are honest but are held
    off the write quorum by asynchrony.
    """
    config = SystemConfig.with_objects(t=t, b=b, num_objects=num_objects,
                                       num_readers=1)
    system = StorageSystem(UnguardedSafeProtocol(), config)
    byz = list(range(b))
    crashers = list(range(b, b + t))
    honest = list(range(b + t, num_objects))

    for i in byz:
        inner = system.kernel.object_automaton(obj(i))
        system.kernel.make_byzantine(obj(i), TwoFaced(inner),
                                     note="two-faced (acks writes, "
                                          "serves stale reads)")
    # Asynchrony: the writer's messages to the honest tail stay in
    # transit for the whole experiment.
    held = {obj(i) for i in honest}
    system.kernel.network.hold(
        "w->honest", lambda env: env.sender == WRITER
        and env.receiver in held)

    write = system.invoke_write("buried")
    try:
        system.kernel.run_until(lambda: write.done, max_steps=100_000)
    except SchedulerExhaustedError:
        # At (or above) optimal resilience the Byzantine + doomed objects
        # alone cannot form a write quorum: the attack cannot even be
        # staged.  Release the hold, let the write complete with honest
        # witnesses, and proceed -- safety will hold.
        system.kernel.network.release("w->honest")
        system.kernel.run_until(lambda: write.done, max_steps=100_000)
    # The only non-Byzantine witnesses of the write crash now.
    for i in crashers:
        system.kernel.crash(obj(i))

    system.read(0)
    return not check_safety(system.history).ok


@register("E10")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    all_as_expected = True

    for t, b in SWEEP:
        optimal = 2 * t + b + 1
        # 1. the guard refuses S = 2t + b
        refused = False
        try:
            config = SystemConfig.with_objects(t=t, b=b,
                                               num_objects=optimal - 1)
            StorageSystem(SafeStorageProtocol(), config)
        except ResilienceError:
            refused = True
        rows.append([f"t={t},b={b}", optimal - 1, "guarded",
                     "refused (ResilienceError)" if refused else
                     "ACCEPTED (bug!)"])
        all_as_expected &= refused

        # 2. below the bound the attack lands
        violated_below = _stale_write_attack(t, b, optimal - 1)
        rows.append([f"t={t},b={b}", optimal - 1, "unguarded + attack",
                     "SAFETY VIOLATED" if violated_below else "survived"])
        all_as_expected &= violated_below

        # 3. at and above the bound the same attack is absorbed
        for S in (optimal, optimal + 2):
            violated = _stale_write_attack(t, b, S)
            rows.append([f"t={t},b={b}", S, "unguarded + attack",
                         "SAFETY VIOLATED" if violated else "survived"])
            all_as_expected &= not violated

    table = render_table(
        ["thresholds", "objects S", "mode", "outcome"],
        rows,
        title="The buried-write attack across the resilience boundary")
    return ExperimentResult(
        experiment_id="E10",
        title="Optimal resilience boundary (S = 2t+b+1, [17])",
        paper_claim=("2t+b+1 base objects are necessary and sufficient "
                     "for robust unauthenticated storage"),
        measured=("below the bound: completed writes can be buried "
                  "(stale reads); at the bound and above: the attack is "
                  f"absorbed; everything as predicted = {all_as_expected}"),
        ok=all_as_expected,
        table=table,
    )
