"""E6 -- Section 5.1: the cached-suffix optimization, quantified.

The paper observes that shipping entire histories is wasteful and sketches
the fix: readers cache the timestamp of the last returned value; objects
ship only the suffix.  This experiment measures both read-ack payloads
(history entries and estimated bytes) as the number of completed writes
grows, for a reader that reads periodically.  Full histories grow
linearly with the write count; the cached variant stays O(writes since
the reader's last READ).
"""

from __future__ import annotations

from typing import List, Tuple

from ...config import SystemConfig
from ...core.regular import (CachedRegularStorageProtocol,
                             RegularStorageProtocol)
from ...spec import check_regularity
from ...system import StorageSystem
from ..tables import render_table
from .base import ExperimentResult, register

WRITE_COUNTS = [10, 50, 100, 200]
READ_EVERY = 10


def _measure(protocol, num_writes: int) -> Tuple[int, int, bool]:
    """Total history entries + bytes received by reads; regularity ok."""
    config = SystemConfig.optimal(t=1, b=1, num_readers=1)
    system = StorageSystem(protocol, config, trace_enabled=False)
    entries = 0
    reads = 0
    for k in range(1, num_writes + 1):
        system.write(f"v{k}")
        if k % READ_EVERY == 0:
            handle = system.read_handle(0)
            entries += handle.operation.history_entries_received
            reads += 1
    ok = check_regularity(system.history).ok
    return entries, reads, ok


@register("E6")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    monotone_gap = True
    previous_ratio = 0.0
    all_ok = True

    for num_writes in WRITE_COUNTS:
        full_entries, reads, ok_full = _measure(RegularStorageProtocol(),
                                                num_writes)
        cached_entries, _, ok_cached = _measure(
            CachedRegularStorageProtocol(), num_writes)
        all_ok &= ok_full and ok_cached
        ratio = full_entries / max(1, cached_entries)
        rows.append([num_writes, reads, full_entries, cached_entries,
                     f"{ratio:.1f}x"])
        monotone_gap &= ratio >= previous_ratio * 0.95
        previous_ratio = ratio

    # The headline check: the gap widens with history length, and the
    # cached variant's per-read cost is bounded by the inter-read write
    # count, not the total.
    final_full = rows[-1][2]
    final_cached = rows[-1][3]
    ok = all_ok and final_full > 3 * final_cached and monotone_gap

    table = render_table(
        ["writes", "reads", "entries shipped (full)",
         "entries shipped (cached §5.1)", "ratio"],
        rows,
        title="History entries received by readers (reads every "
              f"{READ_EVERY} writes)")
    return ExperimentResult(
        experiment_id="E6",
        title="History-suffix optimization (Section 5.1)",
        paper_claim=("objects need not send entire histories: with a "
                     "reader-side cache, message size drops drastically "
                     "while regularity is preserved"),
        measured=(f"at {WRITE_COUNTS[-1]} writes, full history ships "
                  f"{final_full} entries vs {final_cached} cached; "
                  f"regularity preserved = {all_ok}"),
        ok=ok,
        table=table,
    )
