"""E5 -- Section 5: regular storage correctness and round complexity.

Both regular flavours (full-history and §5.1 cached) must satisfy the
three regularity clauses under concurrency and faults while keeping the
2-round worst case.  Regularity is strictly stronger than safety, so the
checker here subsumes E3's property for these protocols.
"""

from __future__ import annotations

from typing import List

from ...adversary import adversarial_suite, random_plan
from ...config import SystemConfig
from ...core.regular import (CachedRegularStorageProtocol,
                             RegularStorageProtocol)
from ...sim import LifoScheduler, RandomScheduler
from ...spec import check_regularity
from ...spec.histories import READ, WRITE
from ...system import StorageSystem
from ..metrics import max_rounds
from ..tables import render_table
from ..workloads import WorkloadSpec, run_concurrent, run_sequential
from .base import ExperimentResult, register


@register("E5")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    total_violations = 0
    worst_read = 0
    worst_write = 0

    for protocol_factory in (RegularStorageProtocol,
                             CachedRegularStorageProtocol):
        config = SystemConfig.optimal(t=2, b=1, num_readers=2)
        for plan in adversarial_suite(config):
            system = StorageSystem(protocol_factory(), config,
                                   scheduler=LifoScheduler())
            plan.apply(system)
            run_sequential(system, num_writes=3, reads_per_write=1)
            run_concurrent(system, WorkloadSpec(num_writes=4,
                                                reads_per_reader=4,
                                                seed=23))
            result = check_regularity(system.history)
            read_rounds = max_rounds(system.history, READ)
            write_rounds = max_rounds(system.history, WRITE)
            rows.append([protocol_factory.name, plan.describe(),
                         result.checked_reads, len(result.violations),
                         write_rounds, read_rounds])
            total_violations += len(result.violations)
            worst_read = max(worst_read, read_rounds)
            worst_write = max(worst_write, write_rounds)
        # seeded fuzz
        for seed in range(6):
            system = StorageSystem(protocol_factory(), config,
                                   scheduler=RandomScheduler(seed))
            random_plan(config, seed).apply(system)
            run_concurrent(system, WorkloadSpec(num_writes=5,
                                                reads_per_reader=5,
                                                seed=seed))
            result = check_regularity(system.history)
            total_violations += len(result.violations)
            worst_read = max(worst_read, max_rounds(system.history, READ))
            worst_write = max(worst_write, max_rounds(system.history, WRITE))

    ok = total_violations == 0 and worst_read <= 2 and worst_write <= 2
    table = render_table(
        ["protocol", "fault plan", "reads checked", "violations",
         "max W rounds", "max R rounds"],
        rows, title="Regularity + rounds for both Section 5 protocols")
    return ExperimentResult(
        experiment_id="E5",
        title="Regular storage (Theorems 3-4, Section 5)",
        paper_claim=("regular semantics at optimal resilience with the "
                     "same optimal 2-round READ/WRITE complexity"),
        measured=(f"0 regularity violations expected, got "
                  f"{total_violations}; max rounds W={worst_write} "
                  f"R={worst_read}"),
        ok=ok,
        table=table,
    )
