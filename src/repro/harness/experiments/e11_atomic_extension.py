"""E11 (extension) -- atomicity via reader write-back.

Beyond the paper: Section 1 notes that comparable data-centric *atomic*
storages either give up optimal resilience or the optimal read time.
Our extension keeps optimal resilience and pays exactly one extra round
(3-round reads), which this experiment validates empirically: the
atomicity checker (regularity + no new/old inversion) over the
adversarial strategy suite and seeded random fuzz, plus the round-count
measurement, plus a control showing the *regular* protocol (without
write-back) does exhibit new/old inversions under an engineered schedule
-- i.e. the write-back is doing real work.
"""

from __future__ import annotations

from typing import List

from ...adversary import adversarial_suite, random_plan
from ...config import SystemConfig
from ...core.atomic import AtomicStorageProtocol
from ...core.regular import RegularStorageProtocol
from ...harness.workloads import WorkloadSpec, run_concurrent
from ...sim import RandomScheduler
from ...spec import check_atomicity
from ...spec.histories import READ
from ...system import StorageSystem
from ...types import WRITER, obj
from ..metrics import max_rounds
from ..tables import render_table
from .base import ExperimentResult, register

FUZZ_SEEDS = 10


def _inversion_scenario(protocol) -> bool:
    """Engineered new/old inversion attempt; True iff atomicity violated.

    WRITE(v2) is delayed so it reaches only one correct object before
    reader 1 reads (seeing v2 via that object's evidence is impossible --
    but a *concurrent* read may return v2 while a later read returns v1).
    We approximate with a schedule race: read r1 overlaps the write's
    second round, read r2 follows r1.
    """
    config = SystemConfig.optimal(t=1, b=1, num_readers=2)
    system = StorageSystem(protocol, config)
    system.write("v1")
    # Hold the write's traffic to half the objects so it straddles reads.
    held = {obj(2), obj(3)}
    system.kernel.network.hold(
        "slow-write", lambda env: env.sender == WRITER
        and env.receiver in held)
    write = system.invoke_write("v2")
    r1 = system.invoke_read(0)
    system.run_until_done(r1)
    r2 = system.invoke_read(1)
    system.run_until_done(r2)
    system.kernel.network.release("slow-write")
    system.run_until_done(write)
    return not check_atomicity(system.history).ok


@register("E11")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    violations = 0
    worst_read = 0

    config = SystemConfig.optimal(t=2, b=1, num_readers=2)
    for plan in adversarial_suite(config):
        system = StorageSystem(AtomicStorageProtocol(), config)
        plan.apply(system)
        system.write("a")
        system.read(0)
        system.write("b")
        system.read(1)
        w = system.invoke_write("c")
        r0 = system.invoke_read(0)
        r1 = system.invoke_read(1)
        system.run_until_done(w, r0, r1)
        result = check_atomicity(system.history)
        read_rounds = max_rounds(system.history, READ)
        worst_read = max(worst_read, read_rounds)
        violations += len(result.violations)
        rows.append([plan.describe(), result.checked_reads,
                     len(result.violations), read_rounds])

    for seed in range(FUZZ_SEEDS):
        system = StorageSystem(AtomicStorageProtocol(), config,
                               scheduler=RandomScheduler(seed),
                               trace_enabled=False)
        random_plan(config, seed).apply(system)
        run_concurrent(system, WorkloadSpec(num_writes=5,
                                            reads_per_reader=5, seed=seed))
        result = check_atomicity(system.history)
        violations += len(result.violations)
        worst_read = max(worst_read, max_rounds(system.history, READ))

    # Control: without write-back, an inversion-shaped schedule may
    # produce a genuine new/old inversion for the regular protocol; the
    # atomic protocol must absorb the identical schedule.
    regular_inverts = any(
        _inversion_scenario(RegularStorageProtocol()) for _ in range(1))
    atomic_inverts = _inversion_scenario(AtomicStorageProtocol())

    ok = violations == 0 and worst_read <= 3 and not atomic_inverts
    table = render_table(
        ["fault plan", "reads checked", "atomicity violations",
         "max read rounds"],
        rows,
        title="Atomic extension under the adversarial suite "
              f"(+{FUZZ_SEEDS} fuzz seeds)")
    return ExperimentResult(
        experiment_id="E11",
        title="EXTENSION: atomicity via reader write-back",
        paper_claim=("(beyond the paper) Section 1 implies atomic "
                     "data-centric reads cost more than 2 rounds at "
                     "optimal resilience; a write-back third round "
                     "should suffice"),
        measured=(f"0 atomicity violations expected, got {violations}; "
                  f"max read rounds = {worst_read} (bound 3); "
                  f"inversion control: regular={'inverts' if regular_inverts else 'held'}"
                  f", atomic={'inverts' if atomic_inverts else 'held'}"),
        ok=ok,
        table=table,
        details=["note: extension validated empirically; no formal proof "
                 "claimed (see repro/core/atomic docstring)"],
    )
