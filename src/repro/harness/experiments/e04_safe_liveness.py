"""E4 -- Theorem 2 / Lemmas 1-3: wait-freedom of the safe storage.

Every invoked operation must complete although ``t`` objects crash, ``b``
of them lie (including the tsr-inflation attack aimed squarely at the
round-1 conflict condition of Lemma 2), and the scheduler delivers in the
most confusing legal orders.  The experiment also surfaces the Lemma 3
f/f' race: under the forger attack, the candidate is resolved at the
latest when all correct objects' second-round replies are in.
"""

from __future__ import annotations

from typing import List

from ...adversary import adversarial_suite
from ...config import SystemConfig
from ...core.safe import SafeStorageProtocol
from ...errors import SimulationError
from ...sim import FifoScheduler, LifoScheduler, RandomScheduler
from ...spec import check_wait_freedom
from ...system import StorageSystem
from ..tables import render_table
from ..workloads import WorkloadSpec, run_concurrent
from .base import ExperimentResult, register

SWEEP = [(1, 1), (2, 1), (2, 2)]


@register("E4")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    all_complete = True

    for t, b in SWEEP:
        config = SystemConfig.optimal(t=t, b=b, num_readers=2)
        for plan in adversarial_suite(config):
            for scheduler_factory, label in (
                    (lambda: FifoScheduler(), "fifo"),
                    (lambda: LifoScheduler(), "lifo"),
                    (lambda: RandomScheduler(99), "random")):
                system = StorageSystem(SafeStorageProtocol(), config,
                                       scheduler=scheduler_factory())
                plan.apply(system)
                stalled = False
                try:
                    run_concurrent(system,
                                   WorkloadSpec(num_writes=4,
                                                reads_per_reader=4,
                                                seed=17))
                except SimulationError:
                    stalled = True
                result = check_wait_freedom(system.history)
                complete = result.ok and not stalled
                all_complete &= complete
                rows.append([f"t={t},b={b}", plan.describe(), label,
                             len(system.history), complete])

    ok = all_complete
    table = render_table(
        ["thresholds", "fault plan", "scheduler", "operations",
         "all completed"],
        rows, title="Wait-freedom under maximal faults and hostile order")
    return ExperimentResult(
        experiment_id="E4",
        title="Safe storage wait-freedom (Theorem 2, Lemmas 1-3)",
        paper_claim=("both READ and WRITE are wait-free: neither round "
                     "blocks forever despite t faulty (b Byzantine) "
                     "objects"),
        measured=(f"{sum(r[3] for r in rows)} operations across "
                  f"{len(rows)} adversarial runs; all completed = "
                  f"{all_complete}"),
        ok=ok,
        table=table,
    )
