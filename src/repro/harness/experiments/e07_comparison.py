"""E7 -- the Section 1 comparison: where the paper sits among its peers.

One row per protocol family: resilience requirement, *measured* worst-case
rounds (fault-free and under the adversarial suite), semantics,
authentication, and whether readers write.  This is the paper's prose
comparison turned into a measured table:

* ABD [3]            -- b = 0 only, 1-round everything;
* passive reader [1] -- optimal resilience, reads degrade with b;
* authenticated [15] -- optimal resilience, 1-round, needs signatures;
* gv-safe / gv-regular (this paper) -- optimal resilience, 2 rounds flat,
  unauthenticated.
"""

from __future__ import annotations

from typing import List, Tuple

from ...adversary import adversarial_suite
from ...baselines import (AbdRegularProtocol, AuthenticatedProtocol,
                          PassiveReaderProtocol)
from ...config import SystemConfig
from ...core.regular import RegularStorageProtocol
from ...core.safe import SafeStorageProtocol
from ...sim import RandomScheduler
from ...spec import check_safety
from ...spec.histories import READ, WRITE
from ...system import StorageSystem
from ..metrics import max_rounds
from ..tables import render_table
from .base import ExperimentResult, register

T, B = 2, 1


def _measure(protocol_factory, config: SystemConfig) -> Tuple[int, int, int]:
    """(fault-free read rounds, adversarial max read rounds, write rounds)."""
    system = StorageSystem(protocol_factory(), config)
    system.write("a")
    system.read(0)
    system.write("b")
    system.read(0)
    ff_read = max_rounds(system.history, READ)
    write_rounds = max_rounds(system.history, WRITE)

    adv_read = ff_read
    for plan in adversarial_suite(config):
        system = StorageSystem(protocol_factory(), config,
                               scheduler=RandomScheduler(3))
        plan.apply(system)
        system.write("a")
        system.read(0)
        system.write("b")
        system.read(0)
        assert check_safety(system.history).ok
        adv_read = max(adv_read, max_rounds(system.history, READ))
        write_rounds = max(write_rounds, max_rounds(system.history, WRITE))
    return ff_read, adv_read, write_rounds


@register("E7")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    entries = [
        ("abd-regular [3]", AbdRegularProtocol,
         SystemConfig.with_objects(t=T, b=0, num_objects=2 * T + 1),
         "2t+1 (b=0!)", "regular", False, False),
        ("passive-reader [1]", PassiveReaderProtocol,
         SystemConfig.optimal(t=T, b=B), "2t+b+1", "safe", False, False),
        ("authenticated [15]", AuthenticatedProtocol,
         SystemConfig.optimal(t=T, b=B), "2t+b+1", "regular", True, False),
        ("gv-safe (paper)", SafeStorageProtocol,
         SystemConfig.optimal(t=T, b=B), "2t+b+1", "safe", False, True),
        ("gv-regular (paper)", RegularStorageProtocol,
         SystemConfig.optimal(t=T, b=B), "2t+b+1", "regular", False, True),
    ]
    measured = {}
    for name, factory, config, resilience, semantics, auth, rw in entries:
        ff, adv, wr = _measure(factory, config)
        measured[name] = (ff, adv, wr)
        rows.append([name, resilience, semantics,
                     "yes" if auth else "no",
                     "yes" if rw else "no",
                     wr, ff, adv])

    # The claims that make the paper's point:
    shape_ok = (
        measured["gv-safe (paper)"][1] == 2            # 2-round worst case
        and measured["gv-regular (paper)"][1] == 2
        and measured["authenticated [15]"][1] == 1     # auth kills the bound
        and measured["abd-regular [3]"][1] == 1        # b=0 kills the bound
        and measured["passive-reader [1]"][1] >= B + 1  # passivity costs b+1
    )

    table = render_table(
        ["protocol", "resilience S", "semantics", "auth", "readers write",
         "W rounds", "R rounds (fault-free)", "R rounds (adversarial)"],
        rows,
        title=f"Measured at t={T}, b={B} (baselines at their own "
              "requirements)")
    return ExperimentResult(
        experiment_id="E7",
        title="Comparison with prior approaches (Section 1)",
        paper_claim=("unauthenticated optimally-resilient reads cost 2 "
                     "rounds; passive readers pay b+1; authentication or "
                     "b=0 buy 1-round reads"),
        measured=("gv protocols: 2-round reads under every attack; "
                  f"passive reader hit {measured['passive-reader [1]'][1]} "
                  f"rounds (b+1={B + 1}); authenticated and crash-only "
                  "stayed at 1"),
        ok=shape_ok,
        table=table,
        data={"measured": measured},
    )
