"""Experiment registry: one module per paper artifact (see DESIGN.md §4)."""

from .base import REGISTRY, ExperimentResult, register, run_all

__all__ = ["REGISTRY", "ExperimentResult", "register", "run_all"]
