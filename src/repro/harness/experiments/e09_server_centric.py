"""E9 -- Section 6: the lower bound migrates to the server-centric model.

Base objects become first-class servers that push unsolicited updates to
readers.  Per Section 6, a *fast* read still means: one message out,
servers answer without waiting for anything else, return on ``S - t``
replies -- and because asynchrony may keep every push in transit, the
five-run construction applies verbatim.  The driver holds pushes in
transit (that is the adversary's legal move) and attacks the push-enabled
fast-read victims; all must still violate safety.  As a sanity
counterpoint, the same victims with pushes *delivered* still answer
fault-free sequential workloads correctly -- pushes are an optimization,
not a defence.
"""

from __future__ import annotations

from typing import List

from ...config import SystemConfig
from ...core.lower_bound import ALL_RULES, LowerBoundDriver
from ...sim.server_centric import PushUpdate, ServerCentricFastProtocol
from ...spec import check_safety
from ...system import StorageSystem
from ..tables import render_table
from .base import ExperimentResult, register

SWEEP = [(1, 1), (2, 1), (2, 2)]


@register("E9")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    all_violated = True

    for t, b in SWEEP:
        config = SystemConfig.at_impossibility_threshold(t, b)
        for rule in ALL_RULES:
            driver = LowerBoundDriver(
                lambda r=rule: ServerCentricFastProtocol(r), config,
                extra_hold=lambda p: isinstance(p, PushUpdate),
                record_filter=lambda p: not isinstance(p, PushUpdate))
            report = driver.execute()
            rows.append([f"t={t},b={b}", f"S={config.num_objects}",
                         report.protocol_name,
                         "VIOLATED" if report.violated else "survived",
                         report.violation_run or report.blocked_run or "-"])
            all_violated &= report.violated

    # Sanity: with pushes flowing, the same protocols behave on benign runs.
    benign_ok = True
    for rule in ALL_RULES:
        config = SystemConfig.at_impossibility_threshold(1, 1)
        system = StorageSystem(ServerCentricFastProtocol(rule), config)
        system.write("x")
        system.read(0)
        system.write("y")
        system.read(0)
        benign_ok &= check_safety(system.history).ok

    ok = all_violated and benign_ok
    table = render_table(
        ["thresholds", "objects", "protocol", "verdict", "decisive run"],
        rows,
        title="Five-run construction with pushes held in transit")
    return ExperimentResult(
        experiment_id="E9",
        title="Server-centric model (Section 6)",
        paper_claim=("even when servers may push unsolicited messages, no "
                     "safe storage with S <= 2t+2b servers has all reads "
                     "fast"),
        measured=(f"all push-enabled fast readers violated safety "
                  f"({'yes' if all_violated else 'NO'}); benign runs with "
                  f"pushes delivered stayed safe ({'yes' if benign_ok else 'NO'})"),
        ok=ok,
        table=table,
    )
