"""E8 -- read latency under metric delay models (the practical payoff).

The paper's motivation: reads dominate real workloads, so read round-trips
dominate user-visible latency.  With the delay-model simulator the round
counts of E7 translate into latency distributions:

* at ``b = 0`` the crash-only baseline reads in ~1 RTT;
* the paper's protocols read in ~2 RTT regardless of ``b``;
* the passive-reader baseline matches ~1 RTT fault-free but degrades
  toward ``(b+1)`` RTT under Byzantine forgery -- the crossover the
  paper's constant worst case is about.

Latency units are virtual (one-way delay drawn from the model); ratios,
not absolute values, are the result.
"""

from __future__ import annotations

from typing import List

from ...adversary import forger, max_byzantine
from ...baselines import PassiveReaderProtocol
from ...config import SystemConfig
from ...core.safe import SafeStorageProtocol
from ...sim import EarliestDeliveryScheduler, ExponentialDelay, UniformDelay
from ...system import StorageSystem
from ..metrics import OperationMetrics
from ..tables import render_table
from .base import ExperimentResult, register

NUM_READS = 30


def _read_latency(protocol_factory, config: SystemConfig, delay_model,
                  plan=None) -> float:
    system = StorageSystem(protocol_factory(), config,
                           scheduler=EarliestDeliveryScheduler(),
                           delay_model=delay_model)
    if plan is not None:
        plan.apply(system)
    system.write("v1")
    for _ in range(NUM_READS):
        system.read(0)
    metrics = OperationMetrics.from_history(system.history)
    return metrics.read_latency.mean


@register("E8")
def run() -> ExperimentResult:
    rows: List[List[object]] = []
    shape_ok = True

    for b in (1, 2, 3):
        t = b
        config = SystemConfig.optimal(t=t, b=b)
        for model_name, model_factory in (
                ("uniform(0.5,1.5)", lambda: UniformDelay(0.5, 1.5, seed=7)),
                ("exp(base=0.2,mean=0.5)",
                 lambda: ExponentialDelay(0.2, 0.5, seed=7))):
            gv = _read_latency(SafeStorageProtocol, config, model_factory())
            passive_ff = _read_latency(PassiveReaderProtocol, config,
                                       model_factory())
            passive_adv = _read_latency(
                PassiveReaderProtocol, config, model_factory(),
                plan=max_byzantine(config, forger()))
            rows.append([f"t=b={b}", model_name,
                         f"{gv:.2f}", f"{passive_ff:.2f}",
                         f"{passive_adv:.2f}",
                         f"{passive_adv / gv:.2f}x"])
            # Shape: fault-free passivity beats the 2-round protocol, but
            # under attack the ordering flips as b grows.
            shape_ok &= passive_ff < gv
            if b >= 2:
                shape_ok &= passive_adv > gv

    table = render_table(
        ["thresholds", "delay model", "gv-safe mean",
         "passive fault-free", "passive under forgery",
         "passive/gv (attacked)"],
        rows,
        title=f"Mean READ latency over {NUM_READS} reads (virtual time)")
    return ExperimentResult(
        experiment_id="E8",
        title="Read latency: constant 2 rounds vs b-dependent rounds",
        paper_claim=("the worst-case read cost of prior optimally "
                     "resilient designs grows with b (b+1 rounds); the "
                     "paper's storage pins it at 2 regardless of b"),
        measured=("fault-free: passive 1-round reads win; under Byzantine "
                  "forgery the passive reader crosses over and loses for "
                  f"b >= 2 (shape holds: {shape_ok})"),
        ok=shape_ok,
        table=table,
    )
