"""E3 -- Theorem 1: safety of the safe storage under adversarial fire.

Randomized schedule/fault fuzzing plus the targeted forgery strategies
from :mod:`repro.adversary`.  The count that matters is zero violations
across every run; the experiment also reports how many reads were
actually constrained (non-concurrent with writes), so "zero violations"
is not vacuous.
"""

from __future__ import annotations

from typing import List

from ...adversary import adversarial_suite, random_plan
from ...config import SystemConfig
from ...core.safe import SafeStorageProtocol
from ...sim import LifoScheduler, RandomScheduler
from ...spec import check_safety
from ...system import StorageSystem
from ..tables import render_table
from ..workloads import WorkloadSpec, run_concurrent, run_sequential
from .base import ExperimentResult, register

FUZZ_SEEDS = 12


@register("E3")
def run() -> ExperimentResult:
    config = SystemConfig.optimal(t=2, b=1, num_readers=2)
    rows: List[List[object]] = []
    total_checked = 0
    total_violations = 0

    # Targeted strategies.
    for plan in adversarial_suite(config):
        system = StorageSystem(SafeStorageProtocol(), config,
                               scheduler=LifoScheduler())
        plan.apply(system)
        run_sequential(system, num_writes=4, reads_per_write=2)
        result = check_safety(system.history)
        rows.append([plan.describe(), "lifo", result.checked_reads,
                     len(result.violations)])
        total_checked += result.checked_reads
        total_violations += len(result.violations)

    # Randomized fuzz: random fault plan x random schedule x concurrency.
    for seed in range(FUZZ_SEEDS):
        system = StorageSystem(SafeStorageProtocol(), config,
                               scheduler=RandomScheduler(seed))
        plan = random_plan(config, seed)
        plan.apply(system)
        run_concurrent(system, WorkloadSpec(num_writes=6,
                                            reads_per_reader=6,
                                            seed=seed))
        result = check_safety(system.history)
        rows.append([plan.describe(), f"random({seed})",
                     result.checked_reads, len(result.violations)])
        total_checked += result.checked_reads
        total_violations += len(result.violations)

    ok = total_violations == 0 and total_checked > 0
    table = render_table(
        ["fault plan", "scheduler", "constrained reads", "violations"],
        rows, title="Safety checker results per run")
    return ExperimentResult(
        experiment_id="E3",
        title="Safe storage safety (Theorem 1)",
        paper_claim=("every READ not concurrent with a WRITE returns the "
                     "last written value, despite b Byzantine and t-b "
                     "crashed objects"),
        measured=(f"{total_checked} constrained reads checked across "
                  f"{len(rows)} adversarial runs; {total_violations} "
                  "violations"),
        ok=ok,
        table=table,
        data={"checked": total_checked, "violations": total_violations},
    )
