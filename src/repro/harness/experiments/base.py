"""Experiment framework: claims, measurements, verdicts.

Each experiment module exposes ``run() -> ExperimentResult``.  A result
pairs the paper's claim with what the code measured and renders both, so
``EXPERIMENTS.md`` and the benchmark logs stay in one format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class ExperimentResult:
    """Outcome of one experiment (one paper artifact)."""

    experiment_id: str
    title: str
    paper_claim: str
    measured: str
    ok: bool
    table: str = ""
    details: List[str] = field(default_factory=list)
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        verdict = "REPRODUCED" if self.ok else "MISMATCH"
        lines = [
            f"== {self.experiment_id}: {self.title} [{verdict}] ==",
            f"paper:    {self.paper_claim}",
            f"measured: {self.measured}",
        ]
        if self.table:
            lines.append("")
            lines.append(self.table)
        for detail in self.details:
            lines.append(detail)
        return "\n".join(lines)


#: Registry filled by the experiment modules at import time.
REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator: add a ``run``-style callable to the registry."""

    def wrap(fn: Callable[[], ExperimentResult]):
        REGISTRY[experiment_id] = fn
        return fn

    return wrap


def run_all(ids: Optional[List[str]] = None) -> List[ExperimentResult]:
    # Import all experiment modules for their registration side effects.
    from . import (e01_lower_bound, e02_safe_rounds, e03_safe_safety,  # noqa
                   e04_safe_liveness, e05_regular, e06_history_opt,
                   e07_comparison, e08_latency, e09_server_centric,
                   e10_resilience, e11_atomic_extension)
    def numeric_key(experiment_id: str):
        digits = "".join(ch for ch in experiment_id if ch.isdigit())
        return (int(digits) if digits else 0, experiment_id)

    selected = ids or sorted(REGISTRY, key=numeric_key)
    return [REGISTRY[experiment_id]() for experiment_id in selected]
