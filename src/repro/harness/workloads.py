"""Workload generators: driving storage systems the way clients would.

Two shapes cover the paper's scenarios:

* :func:`run_sequential` -- writes and reads with no concurrency: the
  regime where *safety* fully constrains every read;
* :func:`run_concurrent` -- a seeded scheduler interleaves one writer and
  R readers, each client issuing its next operation as soon as the
  previous one completes; reads overlap writes, which is where regular
  vs safe semantics differ and where the protocols' second read round
  earns its keep.

Both return the system's :class:`~repro.spec.histories.History`, ready for
the checkers and the metrics pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from ..spec.histories import History
from ..system import StorageSystem


@dataclass
class WorkloadSpec:
    """Parameters of a concurrent workload."""

    num_writes: int = 10
    reads_per_reader: int = 10
    seed: int = 0
    #: average kernel steps executed between client scheduling decisions
    step_granularity: int = 3
    value_prefix: str = "v"

    def value(self, k: int) -> str:
        return f"{self.value_prefix}{k}"


def run_sequential(system: StorageSystem, num_writes: int = 5,
                   reads_per_write: int = 2,
                   value_prefix: str = "v") -> History:
    """Alternate complete writes with complete reads from every reader."""
    for k in range(1, num_writes + 1):
        system.write(f"{value_prefix}{k}")
        for _ in range(reads_per_write):
            for j in range(system.config.num_readers):
                system.read(j)
    return system.history


def run_concurrent(system: StorageSystem,
                   spec: Optional[WorkloadSpec] = None,
                   max_steps: int = 2_000_000,
                   max_iterations: Optional[int] = None) -> History:
    """Interleave the writer and all readers under a seeded schedule.

    Both kernel *steps* and loop *iterations* are bounded: an iteration
    in which the RNG invokes nothing while the network is quiescent takes
    zero steps, so a step bound alone would let such runs spin forever.
    """
    spec = spec or WorkloadSpec()
    rng = random.Random(spec.seed)
    writes_left = spec.num_writes
    reads_left = [spec.reads_per_reader] * system.config.num_readers
    write_handle = None
    read_handles: List[Optional[Any]] = [None] * system.config.num_readers
    write_count = 0
    total_steps = 0
    iterations = 0
    if max_iterations is None:
        # Generous default: even if the RNG skips every client with its
        # 20% probability, the expected iterations per operation are small;
        # 1000 per operation flags a genuinely wedged run, not bad luck.
        total_ops = spec.num_writes + \
            spec.reads_per_reader * system.config.num_readers
        max_iterations = 1000 * max(1, total_ops)

    def work_remaining() -> bool:
        if writes_left or any(reads_left):
            return True
        if write_handle is not None and not write_handle.done:
            return True
        return any(h is not None and not h.done for h in read_handles)

    while work_remaining():
        if total_steps > max_steps:
            raise SimulationError(
                f"concurrent workload exceeded {max_steps} steps")
        iterations += 1
        if iterations > max_iterations:
            raise SimulationError(
                f"concurrent workload exceeded {max_iterations} iterations "
                f"({total_steps} steps taken); the schedule is starving "
                "pending operations")
        # Invoke next operations for idle clients (probabilistically, so
        # different seeds produce different overlap patterns).
        writer_idle = write_handle is None or write_handle.done
        if writes_left and writer_idle and rng.random() < 0.8:
            write_count += 1
            write_handle = system.invoke_write(spec.value(write_count))
            writes_left -= 1
        for j in range(system.config.num_readers):
            idle = read_handles[j] is None or read_handles[j].done
            if reads_left[j] and idle and rng.random() < 0.8:
                read_handles[j] = system.invoke_read(j)
                reads_left[j] -= 1
        # Let the network make progress.
        for _ in range(max(1, spec.step_granularity)):
            if not system.kernel.step():
                break
            total_steps += 1
    return system.history


def run_read_heavy(system: StorageSystem, num_reads: int = 50,
                   writes_every: int = 10) -> History:
    """The paper's motivating regime: reads dominate (Section 1)."""
    system.write("v1")
    written = 1
    for n in range(num_reads):
        if writes_every and n and n % writes_every == 0:
            written += 1
            system.write(f"v{written}")
        system.read(n % system.config.num_readers)
    return system.history
