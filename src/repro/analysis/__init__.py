"""``reprolint``: protocol-aware static analysis for this codebase.

The test suite exercises protocol *behaviour*; this package mechanically
checks protocol *structure* -- the invariants that no single test owns
and that example-based testing misses by construction (Gomes et al.,
"Verifying Strong Eventual Consistency in Distributed Systems" make the
general case for mechanically checking protocol-implementation parity):

* :mod:`.rules_async` -- the asyncio analogue of a race detector
  (read-check-act on shared attributes straddling an ``await``) and a
  blocking-call-in-async lint (``os.fsync``, ``time.sleep``, file
  ``flush``, synchronous subprocess/socket work on an event loop);
* :mod:`.rules_registry` -- message/codec/automata exhaustiveness:
  every :class:`~repro.messages.Message` subclass is slotted, the JSON
  and binary wire vocabularies agree, kind bytes are unique and stable,
  and batch fast paths are only reached through
  :func:`~repro.automata.base.resolve_batch_handler`;
* :mod:`.rules_determinism` -- SimKernel-reachable modules must stay
  deterministic: no ambient wall clocks, no process-global RNG, no
  unordered-set iteration flowing into message payloads;
* :mod:`.rules_chaos` -- every ``ByzantineWrapper`` subclass must be
  reachable from the chaos strategy registry, so the seeded chaos
  sweep stays exhaustive as strategies grow.

Run it as ``python -m repro.analysis [paths...]`` or via the
``reprolint`` console script; suppress a deliberate violation with
``# reprolint: ok[rule-id] -- reason``.
"""

from .core import (Finding, ProjectRule, Rule, SourceFile, all_rules,
                   iter_python_files, register_rule, run_analysis)

# Importing the rule modules registers every rule with the registry.
from . import rules_async  # noqa: E402,F401  (import-for-effect)
from . import rules_chaos  # noqa: E402,F401
from . import rules_determinism  # noqa: E402,F401
from . import rules_registry  # noqa: E402,F401

__all__ = [
    "Finding",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "all_rules",
    "iter_python_files",
    "register_rule",
    "run_analysis",
]
