"""Determinism rules for SimKernel-reachable modules.

Seeded schedules, WAL replay and the recorded ``BENCH_service.json``
histories are only reproducible if protocol code never consults ambient
state.  Three rules, all scoped to the module set the simulation kernel
can reach (``repro/core``, ``repro/sim``, ``repro/automata``,
``repro/baselines``, ``repro/adversary``, ``repro/spec``,
``repro/crypto_sim``, ``repro/harness``, the leaf protocol modules, and
``benchmarks/``):

``det-unseeded-random``
    Module-level ``random.*`` calls use the process-global RNG;
    ``random.Random()`` with no seed arms it from the OS.  Protocol code
    must thread an explicitly seeded ``random.Random(seed)``.

``det-wall-clock``
    ``time.time()`` / ``datetime.now()`` read the wall clock; two runs
    of one seeded schedule see different values.  Measurement clocks
    (``perf_counter``, ``monotonic``) are allowed -- they time the run,
    they do not steer it.

``det-set-iter``
    Iterating a ``set``/``frozenset`` yields hash-order, which varies
    across processes (PYTHONHASHSEED) -- anything derived from that
    order (message payloads, schedules) diverges.  Wrap in ``sorted()``.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from .core import Finding, SourceFile, register_rule

__all__ = ["UnseededRandomRule", "WallClockRule", "SetIterationRule"]

_SCOPE_DIR_MARKERS = (
    "repro/core/",
    "repro/sim/",
    "repro/automata/",
    "repro/baselines/",
    "repro/adversary/",
    "repro/chaos/",
    "repro/spec/",
    "repro/crypto_sim/",
    "repro/harness/",
    "benchmarks/",
)
_SCOPE_FILE_SUFFIXES = (
    "repro/messages.py",
    "repro/types.py",
    "repro/quorums.py",
)


def in_determinism_scope(path: str) -> bool:
    posix = str(PurePosixPath(*PurePosixPath(path.replace("\\", "/")).parts))
    return any(marker in posix for marker in _SCOPE_DIR_MARKERS) or any(
        posix.endswith(suffix) for suffix in _SCOPE_FILE_SUFFIXES
    )


_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "seed",
    "getrandbits",
}


def _attr_pair(call: ast.Call) -> tuple[str, str] | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            return (base.id, func.attr)
        if isinstance(base, ast.Attribute):  # datetime.datetime.now()
            return (base.attr, func.attr)
    return None


@register_rule
class UnseededRandomRule:
    rule_id = "det-unseeded-random"
    description = "process-global or unseeded RNG in deterministic scope"

    def check(self, source: SourceFile) -> list[Finding]:
        if not in_determinism_scope(source.path):
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            pair = _attr_pair(node)
            if pair is None:
                continue
            base, attr = pair
            if base == "random" and attr in _GLOBAL_RANDOM_FNS:
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=source.path,
                        line=node.lineno,
                        message=f"random.{attr}() uses the process-global RNG; "
                        "thread a seeded random.Random(seed) instead",
                    )
                )
            elif base == "random" and attr == "Random" and not node.args and not node.keywords:
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=source.path,
                        line=node.lineno,
                        message="random.Random() without a seed is armed from the OS; "
                        "pass an explicit seed",
                    )
                )
        return findings


@register_rule
class WallClockRule:
    rule_id = "det-wall-clock"
    description = "ambient wall-clock read in deterministic scope"

    def check(self, source: SourceFile) -> list[Finding]:
        if not in_determinism_scope(source.path):
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            pair = _attr_pair(node)
            if pair in _WALL_CLOCK_CALLS:
                base, attr = pair  # type: ignore[misc]
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=source.path,
                        line=node.lineno,
                        message=f"{base}.{attr}() reads the wall clock; use "
                        "time.perf_counter()/monotonic() for measurement or the "
                        "SimKernel clock for protocol time",
                    )
                )
        return findings


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@register_rule
class SetIterationRule:
    rule_id = "det-set-iter"
    description = "iteration over an unordered set in deterministic scope"

    def check(self, source: SourceFile) -> list[Finding]:
        if not in_determinism_scope(source.path):
            return []
        findings: list[Finding] = []
        for fn in ast.walk(source.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                findings.extend(self._check_scope(source, fn))
        return findings

    def _check_scope(self, source: SourceFile, scope: ast.AST) -> list[Finding]:
        # Names bound to set-valued expressions inside this one scope.
        set_names: set[str] = set()
        body = scope.body if hasattr(scope, "body") else []
        for node in body:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not scope:
                    break
                if isinstance(sub, ast.Assign) and _is_set_expr(sub.value):
                    for tgt in sub.targets:
                        if isinstance(tgt, ast.Name):
                            set_names.add(tgt.id)

        findings: list[Finding] = []
        for node in body:
            for sub in ast.walk(node):
                iters: list[ast.AST] = []
                if isinstance(sub, (ast.For, ast.AsyncFor)):
                    iters.append(sub.iter)
                elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in sub.generators)
                for it in iters:
                    if _is_set_expr(it) or (isinstance(it, ast.Name) and it.id in set_names):
                        findings.append(
                            Finding(
                                rule_id=self.rule_id,
                                path=source.path,
                                line=it.lineno,
                                message="iterating an unordered set; order varies with "
                                "PYTHONHASHSEED -- wrap in sorted() before anything "
                                "order-sensitive consumes it",
                            )
                        )
        return findings
