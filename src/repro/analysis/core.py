"""Framework for ``reprolint``: rule registry, suppressions, reporters.

Two rule shapes exist:

* :class:`Rule` -- runs per source file against its AST (most rules);
* :class:`ProjectRule` -- runs once over the whole file set (cross-file
  invariants such as codec/registry exhaustiveness).

A finding on line *N* is silenced by a suppression comment **on that
line**::

    self._fh.flush()  # reprolint: ok[blocking-async] -- durability barrier, see PR 6

The reason string after ``--`` is mandatory: a suppression without one
is itself reported (rule id ``bare-suppression``).  This keeps every
deliberate violation documented at the point of violation.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "SourceFile",
    "register_rule",
    "all_rules",
    "iter_python_files",
    "run_analysis",
    "render_text",
    "render_json",
]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*ok\[([A-Za-z0-9_,\s-]+)\]((?:\s*--\s*)(?P<reason>.*))?"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


@dataclass(slots=True)
class Suppression:
    rule_ids: frozenset[str]
    reason: str
    line: int

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids or "*" in self.rule_ids


@dataclass(slots=True)
class SourceFile:
    """A parsed source file plus its suppression table."""

    path: str
    text: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str | Path, text: str | None = None) -> "SourceFile":
        p = Path(path)
        if text is None:
            text = p.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(p))
        src = cls(path=str(p), text=text, tree=tree)
        for lineno, raw in enumerate(text.splitlines(), start=1):
            m = _SUPPRESS_RE.search(raw)
            if m is None:
                continue
            ids = frozenset(part.strip() for part in m.group(1).split(",") if part.strip())
            reason = (m.group("reason") or "").strip()
            src.suppressions[lineno] = Suppression(rule_ids=ids, reason=reason, line=lineno)
        return src

    def suppressed(self, rule_id: str, line: int) -> bool:
        sup = self.suppressions.get(line)
        return sup is not None and sup.covers(rule_id)


class Rule(Protocol):
    """Per-file rule: inspect one parsed source file."""

    rule_id: str
    description: str

    def check(self, source: SourceFile) -> list[Finding]: ...


class ProjectRule(Protocol):
    """Whole-project rule: inspect the complete file set at once."""

    rule_id: str
    description: str

    def check_project(self, sources: list[SourceFile]) -> list[Finding]: ...


_RULES: dict[str, Rule | ProjectRule] = {}


def register_rule(rule_cls: type) -> type:
    """Class decorator registering a rule instance under its ``rule_id``."""
    instance = rule_cls()
    rule_id = instance.rule_id
    if rule_id in _RULES:
        raise ValueError(f"duplicate reprolint rule id: {rule_id!r}")
    _RULES[rule_id] = instance
    return rule_cls


def all_rules() -> dict[str, Rule | ProjectRule]:
    return dict(_RULES)


_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist", ".mypy_cache"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub


def _check_bare_suppressions(source: SourceFile) -> list[Finding]:
    out = []
    for sup in source.suppressions.values():
        if not sup.reason:
            out.append(
                Finding(
                    rule_id="bare-suppression",
                    path=source.path,
                    line=sup.line,
                    message=(
                        "suppression without a reason; write "
                        "'# reprolint: ok[rule-id] -- why this is deliberate'"
                    ),
                )
            )
    return out


def run_analysis(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    rules: dict[str, Rule | ProjectRule] | None = None,
) -> list[Finding]:
    """Run every registered rule over ``paths``; return unsuppressed findings.

    ``select`` restricts to a subset of rule ids (bare-suppression checks
    always run).  Files that fail to parse produce a ``syntax-error``
    finding rather than aborting the run.
    """
    active = rules if rules is not None else all_rules()
    if select is not None:
        wanted = set(select)
        active = {rid: r for rid, r in active.items() if rid in wanted}

    sources: list[SourceFile] = []
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            src = SourceFile.parse(path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule_id="syntax-error",
                    path=str(path),
                    line=exc.lineno or 1,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        sources.append(src)
        findings.extend(_check_bare_suppressions(src))

    by_path = {s.path: s for s in sources}
    raw: list[Finding] = []
    for rule in active.values():
        if hasattr(rule, "check_project"):
            raw.extend(rule.check_project(sources))
        else:
            for src in sources:
                raw.extend(rule.check(src))

    for f in raw:
        src = by_path.get(f.path)
        if src is not None and src.suppressed(f.rule_id, f.line):
            continue
        findings.append(f)

    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings


def render_text(findings: list[Finding]) -> str:
    if not findings:
        return "reprolint: clean"
    lines = [f.render() for f in findings]
    lines.append(f"reprolint: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    payload = {
        "findings": [
            {"rule": f.rule_id, "path": f.path, "line": f.line, "message": f.message}
            for f in findings
        ],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


RuleFn = Callable[[SourceFile], list[Finding]]
