"""Chaos-harness exhaustiveness: every wrapper is a named strategy.

``chaos-strategy-registry`` (dynamic, whole project)
    Every concrete :class:`~repro.adversary.byzantine.ByzantineWrapper`
    subclass in the tree must be reachable from the chaos strategy
    registry (:data:`repro.chaos.strategies.STRATEGIES`, via each
    entry's ``wrappers`` tuple).  The registry is what the schedule DSL,
    the explorer's random walks, and the README strategy table all
    enumerate -- an unregistered wrapper is a behaviour the chaos sweep
    silently never exercises.  Register it with
    :func:`repro.chaos.strategies.register_strategy` (or list it in an
    existing entry's ``wrappers``); test-only wrappers acknowledge the
    gap with a suppression on their ``class`` line.

Like the other dynamic rules, findings anchor at the offending
``class`` statement and the rule silently skips when the analyzed file
set does not contain the live package sources (fixture runs in tests).
"""

from __future__ import annotations

from typing import Callable, Iterable

from .core import Finding, SourceFile, register_rule
from .rules_registry import _live_subclasses, _ProjectAnchors

__all__ = ["ChaosStrategyRegistryRule", "strategy_registry_findings"]


def strategy_registry_findings(
    rule_id: str,
    wrappers: Iterable[type],
    registered_names: Iterable[str],
    anchor: Callable[[type], tuple[str, int] | None],
) -> list[Finding]:
    """Pure comparison logic, separated from live-package loading so
    tests can feed synthetic wrapper sets."""
    findings: list[Finding] = []
    known = set(registered_names)
    for cls in sorted(wrappers, key=lambda c: c.__name__):
        if cls.__name__ in known:
            continue
        at = anchor(cls)
        if at is None:
            continue  # defined outside the analyzed set (e.g. fixtures)
        findings.append(Finding(
            rule_id=rule_id,
            path=at[0],
            line=at[1],
            message=f"ByzantineWrapper subclass '{cls.__name__}' is not "
            "reachable from the chaos strategy registry; register it via "
            "repro.chaos.strategies.register_strategy (or add it to an "
            "entry's wrappers) so schedule generation can exercise it",
        ))
    return findings


@register_rule
class ChaosStrategyRegistryRule:
    rule_id = "chaos-strategy-registry"
    description = "ByzantineWrapper subclass missing from the strategy registry"

    def check_project(self, sources: list[SourceFile]) -> list[Finding]:
        try:
            from ..adversary.byzantine import ByzantineWrapper
            from ..chaos.strategies import registered_wrapper_names
        except Exception:
            return []  # live package unavailable in this interpreter
        anchors = _ProjectAnchors(sources)
        return strategy_registry_findings(
            self.rule_id,
            _live_subclasses(ByzantineWrapper),
            registered_wrapper_names(),
            anchors.anchor,
        )
