"""Command-line front-end for ``reprolint``.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import core

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Protocol-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files or directories to analyse (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(core.all_rules().items()):
            print(f"{rule_id:24s} {rule.description}")
        return 0

    if args.select:
        unknown = set(args.select) - set(core.all_rules())
        if unknown:
            print(f"reprolint: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    try:
        findings = core.run_analysis(args.paths, select=args.select)
    except OSError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(core.render_json(findings))
    else:
        print(core.render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
