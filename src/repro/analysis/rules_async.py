"""Async-safety rules: blocking calls on the loop, await-point races.

``blocking-async``
    Flags synchronous, potentially long-latency calls made directly in
    an ``async def`` body: ``os.fsync``/``os.sync``/``os.fdatasync``,
    ``time.sleep``, ``subprocess.*``, synchronous socket construction,
    ``shutil.rmtree``/``copytree``, file ``.flush()``/``.fsync()``, and
    ``.start()``/``.join()`` on multiprocessing handles.  Exempt: work
    handed to ``loop.run_in_executor`` (callables passed as arguments
    are not call sites), directly awaited calls (``await proc.start()``
    is an async method), calls built as arguments to scheduling
    primitives (``asyncio.gather(proc.start() ...)`` constructs
    coroutines), and nested sync ``def``s (the usual executor thunks).

``await-race``
    The asyncio analogue of a race detector.  Inside one async method of
    a class, a ``self.attr`` read in an ``if``/``while`` guard, followed
    by an ``await`` (suspension point -- any other task may run), then a
    write to the *same* ``self.attr`` is a read-check-act sequence whose
    check can be stale by the time the act lands.  The sequence is
    considered protected (not flagged) when guard, await and write all
    sit inside one ``async with <...lock...>`` block, since the lock is
    held across the suspension.  Writes inside ``except`` handlers are
    exempt: rolling a flag back on failure is not a check-act sequence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .core import Finding, SourceFile, register_rule

__all__ = ["BlockingAsyncRule", "AwaitRaceRule"]


# (module, function) pairs that block the event loop when called directly.
_BLOCKING_MODULE_CALLS = {
    ("os", "fsync"),
    ("os", "sync"),
    ("os", "fdatasync"),
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "socket"),
    ("socket", "create_connection"),
    ("shutil", "rmtree"),
    ("shutil", "copytree"),
}

# Zero/low-arg methods that mean "synchronous I/O barrier" on file-likes.
_BLOCKING_METHODS = {"flush", "fsync"}

# .start()/.join() on something whose name suggests an OS process handle.
_PROCESS_METHODS = {"start", "join", "terminate", "kill"}
_PROCESS_HINTS = ("process", "proc", "child", "worker")


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name for an attribute/name chain ('self._fh.flush')."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    return ".".join(reversed(parts))


def _async_function_bodies(tree: ast.Module):
    """Yield every async function def with nested (sync or async) defs pruned.

    Nested sync defs are executor thunks; nested async defs are analysed
    as their own async contexts when yielded separately.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _iter_async_statements(fn: ast.AsyncFunctionDef):
    """Walk ``fn``'s body without descending into nested function defs."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # executor thunks / separately-analysed async contexts
        for child in ast.iter_child_nodes(node):
            stack.append(child)


@register_rule
class BlockingAsyncRule:
    rule_id = "blocking-async"
    description = "synchronous blocking call executed directly on the event loop"

    _SCHEDULERS = frozenset(
        {"gather", "create_task", "ensure_future", "shield", "wait_for",
         "wait", "run_in_executor", "to_thread"}
    )

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for fn in _async_function_bodies(source.tree):
            exempt: set[int] = set()
            for node in _iter_async_statements(fn):
                if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                    # `await x.start()` is an async call, not a block.
                    exempt.add(id(node.value))
                if isinstance(node, ast.Call):
                    callee = node.func
                    name = callee.attr if isinstance(callee, ast.Attribute) else (
                        callee.id if isinstance(callee, ast.Name) else None)
                    if name in self._SCHEDULERS:
                        # Calls built as arguments to gather()/create_task()
                        # etc. construct coroutines; they run elsewhere.
                        for arg in [*node.args, *node.keywords]:
                            for sub in ast.walk(arg):
                                exempt.add(id(sub))
            for node in _iter_async_statements(fn):
                if not isinstance(node, ast.Call) or id(node) in exempt:
                    continue
                msg = self._classify(node)
                if msg is not None:
                    findings.append(
                        Finding(
                            rule_id=self.rule_id,
                            path=source.path,
                            line=node.lineno,
                            message=f"{msg} in 'async def {fn.name}'; "
                            "move it to loop.run_in_executor or an async equivalent",
                        )
                    )
        return findings

    def _classify(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            head, _, tail = dotted.partition(".")
            if (head, tail) in _BLOCKING_MODULE_CALLS:
                return f"blocking call {dotted}()"
            if func.attr in _BLOCKING_METHODS and not isinstance(func.value, ast.Name):
                # self._fh.flush() / self.snapshot_fh.fsync(); bare names
                # (e.g. a local asyncio object) are too ambiguous to flag.
                return f"blocking file barrier {dotted}()"
            if func.attr in _BLOCKING_METHODS and isinstance(func.value, ast.Name):
                receiver = func.value.id.lower()
                if any(h in receiver for h in ("fh", "file", "fp", "log")):
                    return f"blocking file barrier {dotted}()"
            if func.attr in _PROCESS_METHODS:
                receiver = _dotted(func.value).lower()
                if any(h in receiver for h in _PROCESS_HINTS):
                    return f"blocking process-lifecycle call {dotted}()"
        return None


@dataclass(slots=True)
class _GuardRead:
    attr: str
    line: int


@register_rule
class AwaitRaceRule:
    rule_id = "await-race"
    description = "read-check-act on a shared attribute straddling an await"

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for cls in ast.walk(source.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for item in cls.body:
                if isinstance(item, ast.AsyncFunctionDef):
                    findings.extend(self._check_method(source, cls, item))
        return findings

    def _check_method(
        self, source: SourceFile, cls: ast.ClassDef, fn: ast.AsyncFunctionDef
    ) -> list[Finding]:
        guard_reads: list[_GuardRead] = []
        awaits: list[int] = []
        writes: list[_GuardRead] = []
        lock_spans: list[tuple[int, int]] = []
        handler_spans: list[tuple[int, int]] = []

        for node in _iter_async_statements(fn):
            if isinstance(node, ast.ExceptHandler):
                end = getattr(node, "end_lineno", node.lineno) or node.lineno
                handler_spans.append((node.lineno, end))
            if isinstance(node, (ast.If, ast.While)):
                for attr in self._self_attrs(node.test):
                    guard_reads.append(_GuardRead(attr=attr, line=node.lineno))
            elif isinstance(node, ast.Await):
                awaits.append(node.lineno)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        writes.append(_GuardRead(attr=tgt.attr, line=node.lineno))
            elif isinstance(node, ast.AsyncWith):
                for with_item in node.items:
                    name = _dotted(with_item.context_expr).lower()
                    if "lock" in name or "mutex" in name or "sem" in name:
                        end = getattr(node, "end_lineno", node.lineno) or node.lineno
                        lock_spans.append((node.lineno, end))

        if not awaits:
            return []

        findings: list[Finding] = []
        seen: set[tuple[str, int]] = set()
        for read in guard_reads:
            for write in writes:
                if write.attr != read.attr or write.line <= read.line:
                    continue
                if any(lo <= write.line <= hi for lo, hi in handler_spans):
                    continue  # rollback-on-failure writes are not check-act

                crossing = [a for a in awaits if read.line <= a <= write.line]
                if not crossing:
                    continue
                if any(
                    lo <= read.line and write.line <= hi and any(lo <= a <= hi for a in crossing)
                    for lo, hi in lock_spans
                ):
                    continue  # guard, await and write all under one held lock
                key = (write.attr, write.line)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=source.path,
                        line=write.line,
                        message=(
                            f"'self.{write.attr}' checked on line {read.line}, "
                            f"awaited on line {crossing[0]}, then written here in "
                            f"'{cls.name}.{fn.name}': the check can be stale after the "
                            "suspension; hold an asyncio.Lock across the sequence or "
                            "re-validate after the await"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _self_attrs(expr: ast.AST) -> list[str]:
        out = []
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                out.append(node.attr)
        return out
