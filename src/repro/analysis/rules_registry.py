"""Registry exhaustiveness: messages, wire codecs, batch dispatch.

Four rules keep the hand-maintained message/codec/automata registries
honest:

``registry-slots`` (syntactic, per file)
    Every ``class X(Message)`` must be slotted -- either
    ``@dataclass(..., slots=True)`` or an explicit ``__slots__``.
    Messages are allocated millions of times per run; an accidental
    ``__dict__`` per instance is a silent 3x memory regression and lets
    typo'd attributes pass unnoticed.

``registry-vocab`` (dynamic, whole project)
    Imports the live package and checks that the JSON vocabulary
    (``_ENCODERS``/``_DECODERS``), the binary vocabulary
    (``_BIN_KINDS``), and the set of concrete ``Message`` subclasses all
    agree: every subclass encodes both ways, every kind byte is unique,
    and nothing is registered for a type that is not a ``Message``.
    Classes that only travel *inside* another message's payload (for
    example ``HistoryEntry`` inside ``HistoryReadAck``) opt out with a
    class attribute ``wire_inline = True``.

``batch-parity`` (dynamic, whole project)
    For every concrete ``ObjectAutomaton``,
    :func:`repro.automata.base.resolve_batch_handler` must not silently
    discard a specialized ``handle_batch``: a subclass that overrides
    ``on_message`` below the fast path either opts back in with
    ``_on_message_batch_compatible = True`` or acknowledges the generic
    fallback with a suppression on its ``class`` line.

``batch-dispatch`` (syntactic, per file)
    Direct ``x.handle_batch(...)`` calls outside ``automata/base.py``
    bypass the consistency guard; dispatch must go through
    ``resolve_batch_handler``.

The dynamic rules anchor findings at the ``class`` statement of the
offending type, so line suppressions work exactly as for AST rules.
They silently skip when the analyzed file set does not contain the
live package sources (fixture runs in tests).
"""

from __future__ import annotations

import ast
import gc
import inspect
import sys
from pathlib import Path
from typing import Any, Callable, Iterable

from .core import Finding, SourceFile, register_rule

__all__ = [
    "RegistrySlotsRule",
    "RegistryVocabRule",
    "BatchParityRule",
    "BatchDispatchRule",
    "vocab_findings",
    "batch_parity_findings",
]


def _dataclass_has_slots(deco: ast.expr) -> bool | None:
    """True/False if ``deco`` is a dataclass decorator with/without
    ``slots=True``; None if it is not a dataclass decorator."""
    name: str | None = None
    call = deco if isinstance(deco, ast.Call) else None
    target = deco.func if call is not None else deco
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    if name != "dataclass":
        return None
    if call is None:
        return False
    for kw in call.keywords:
        if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _has_explicit_slots(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__" for t in node.targets):
                return True
        if isinstance(node, ast.AnnAssign):
            t = node.target
            if isinstance(t, ast.Name) and t.id == "__slots__":
                return True
    return False


def _base_names(cls: ast.ClassDef) -> set[str]:
    out = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            out.add(base.id)
        elif isinstance(base, ast.Attribute):
            out.add(base.attr)
    return out


@register_rule
class RegistrySlotsRule:
    rule_id = "registry-slots"
    description = "Message subclass without __slots__"

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if "Message" not in _base_names(node):
                continue
            slot_states = [_dataclass_has_slots(d) for d in node.decorator_list]
            dataclass_slots = [s for s in slot_states if s is not None]
            slotted = (dataclass_slots and all(dataclass_slots)) or _has_explicit_slots(node)
            if not slotted:
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=source.path,
                        line=node.lineno,
                        message=f"message class '{node.name}' is not slotted; "
                        "use @dataclass(frozen=True, slots=True) or declare __slots__",
                    )
                )
        return findings


@register_rule
class BatchDispatchRule:
    rule_id = "batch-dispatch"
    description = "direct handle_batch call bypassing resolve_batch_handler"

    def check(self, source: SourceFile) -> list[Finding]:
        if source.path.replace("\\", "/").endswith("automata/base.py"):
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "handle_batch"
            ):
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=source.path,
                        line=node.lineno,
                        message="call resolve_batch_handler(automaton) instead of "
                        "automaton.handle_batch directly: a subclass overriding "
                        "on_message below the fast path would be silently bypassed",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# Dynamic rules: run against the live package.


def _is_canonical(cls: type) -> bool:
    """dataclass(slots=True) replaces the class object, but the pre-slots
    original stays reachable forever through the ``__class__`` cells of
    its own methods.  The canonical class is the one its defining module
    still points to."""
    mod = sys.modules.get(cls.__module__)
    if mod is None:
        return False
    obj: Any = mod
    for part in cls.__qualname__.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is cls


def _live_subclasses(root: type) -> set[type]:
    gc.collect()  # drop unreferenced pre-slots duplicates cheaply
    out: set[type] = set()
    stack = list(root.__subclasses__())
    seen: set[type] = set()
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        if _is_canonical(cls):
            out.add(cls)
        stack.extend(cls.__subclasses__())
    return out


def _locate(cls: type) -> tuple[Path, int] | None:
    try:
        path = inspect.getsourcefile(cls)
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return None
    if path is None:
        return None
    return Path(path).resolve(), line


class _ProjectAnchors:
    """Maps live classes back onto the analyzed file set."""

    def __init__(self, sources: list[SourceFile]):
        self._by_abs = {Path(s.path).resolve(): s.path for s in sources}

    def anchor(self, cls: type) -> tuple[str, int] | None:
        loc = _locate(cls)
        if loc is None:
            return None
        abs_path, line = loc
        rel = self._by_abs.get(abs_path)
        if rel is None:
            return None  # defined outside the analyzed set (e.g. fixtures)
        return rel, line


def vocab_findings(
    rule_id: str,
    universe: Iterable[type],
    json_encoder_types: Iterable[type],
    json_decoder_names: Iterable[str],
    bin_kinds: dict[type, int],
    anchor: Callable[[type], tuple[str, int] | None],
) -> list[Finding]:
    """Pure comparison logic, separated from live-package loading so
    tests can feed synthetic bad universes."""
    findings: list[Finding] = []

    def emit(cls: type, message: str) -> None:
        at = anchor(cls)
        if at is not None:
            findings.append(Finding(rule_id=rule_id, path=at[0], line=at[1], message=message))

    enc_types = set(json_encoder_types)
    dec_names = set(json_decoder_names)
    wire_types = {
        cls
        for cls in universe
        if not cls.__dict__.get("wire_inline", False) and not inspect.isabstract(cls)
    }

    for cls in sorted(wire_types, key=lambda c: c.__name__):
        missing = []
        if cls not in enc_types:
            missing.append("JSON encoder (register_codec)")
        if cls.__name__ not in dec_names:
            missing.append("JSON decoder (register_codec)")
        if cls not in bin_kinds:
            missing.append("binary codec (register_binary_codec)")
        if missing:
            emit(
                cls,
                f"message class '{cls.__name__}' is missing: {', '.join(missing)}; "
                "every wire message must round-trip through both vocabularies "
                "(mark payload-only classes with wire_inline = True)",
            )

    by_kind: dict[int, list[type]] = {}
    for cls, kind in bin_kinds.items():
        by_kind.setdefault(kind, []).append(cls)
    for kind, classes in sorted(by_kind.items()):
        if len(classes) > 1:
            names = ", ".join(sorted(c.__name__ for c in classes))
            for cls in classes:
                emit(cls, f"binary kind byte {kind} is bound to multiple types: {names}")

    universe_set = set(universe)
    for cls in sorted(enc_types | set(bin_kinds), key=lambda c: c.__name__):
        if cls not in universe_set:
            emit(
                cls,
                f"'{cls.__name__}' is registered in a wire vocabulary but is not "
                "a Message subclass",
            )
    return findings


def batch_parity_findings(
    rule_id: str,
    automata: Iterable[type],
    base_cls: type,
    anchor: Callable[[type], tuple[str, int] | None],
) -> list[Finding]:
    findings: list[Finding] = []
    for cls in sorted(set(automata), key=lambda c: c.__name__):
        if inspect.isabstract(cls):
            continue
        mro = cls.__mro__
        hb_owner = next((c for c in mro if "handle_batch" in c.__dict__), None)
        om_owner = next((c for c in mro if "on_message" in c.__dict__), None)
        if hb_owner is None or om_owner is None or hb_owner is base_cls:
            continue  # generic loop: always consistent with on_message
        if mro.index(om_owner) >= mro.index(hb_owner):
            continue  # fast path declared at/below the on_message override
        if om_owner.__dict__.get("_on_message_batch_compatible", False):
            continue  # explicit opt-in
        at = anchor(om_owner) or anchor(cls)
        if at is None:
            continue
        findings.append(
            Finding(
                rule_id=rule_id,
                path=at[0],
                line=at[1],
                message=(
                    f"'{om_owner.__name__}.on_message' overrides below the "
                    f"specialized '{hb_owner.__name__}.handle_batch', so "
                    "resolve_batch_handler silently falls back to the generic "
                    "loop; set _on_message_batch_compatible = True if the "
                    "override is batch-safe, or suppress here if the fallback "
                    "is the point"
                ),
            )
        )
    return findings


def _load_live_package() -> tuple[Any, Any, Any] | None:
    """Import repro + every submodule; return (messages, codec, base) or
    None when the live package is unavailable."""
    try:
        import importlib
        import pkgutil

        import repro

        for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if ".analysis" in mod.name or mod.name.endswith("__main__"):
                continue
            try:
                importlib.import_module(mod.name)
            except Exception:
                continue  # a module failing to import is not this rule's finding
        from repro import messages
        from repro.automata import base
        from repro.runtime import codec

        return messages, codec, base
    except Exception:
        return None


@register_rule
class RegistryVocabRule:
    rule_id = "registry-vocab"
    description = "JSON/binary codec vocabulary parity with Message subclasses"

    def check_project(self, sources: list[SourceFile]) -> list[Finding]:
        loaded = _load_live_package()
        if loaded is None:
            return []
        messages, codec, _ = loaded
        anchors = _ProjectAnchors(sources)
        return vocab_findings(
            self.rule_id,
            _live_subclasses(messages.Message),
            codec._ENCODERS.keys(),
            codec._DECODERS.keys(),
            dict(codec._BIN_KINDS),
            anchors.anchor,
        )


@register_rule
class BatchParityRule:
    rule_id = "batch-parity"
    description = "on_message override must not silently drop a batch fast path"

    def check_project(self, sources: list[SourceFile]) -> list[Finding]:
        loaded = _load_live_package()
        if loaded is None:
            return []
        _, _, base = loaded
        anchors = _ProjectAnchors(sources)
        return batch_parity_findings(
            self.rule_id,
            _live_subclasses(base.ObjectAutomaton),
            base.ObjectAutomaton,
            anchors.anchor,
        )
