"""Localhost TCP transport: the same automata over real sockets.

Deployment shape: each base object runs a :class:`TcpObjectServer`
(newline-delimited JSON frames, see :mod:`repro.runtime.codec`); a client
opens one connection per object and drives its operation automata through
:class:`TcpStorageClient`.  Objects answer on the connection the request
arrived on -- the data-centric model's "objects only reply to clients"
rule falls out of the transport naturally.

This is the integration-test tier: slower than the in-memory network but
exercising serialization, framing and genuine OS-level interleaving.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from ..automata.base import ClientOperation, ObjectAutomaton, Outgoing
from ..errors import TransportError
from ..messages import register_of, unbatch
from ..types import ProcessId
from .codec import decode_message, encode_message
from .hosts import coalesce_outgoing


def _encode_pid(pid: ProcessId) -> Dict[str, Any]:
    return {"role": pid.role, "index": pid.index}


def _decode_pid(data: Dict[str, Any]) -> ProcessId:
    return ProcessId(role=data["role"], index=data["index"])


def _frame(sender: ProcessId, payload: Any) -> bytes:
    body = json.dumps({"sender": _encode_pid(sender),
                       "msg": encode_message(payload)},
                      separators=(",", ":"))
    return body.encode("utf-8") + b"\n"


def _parse(line: bytes) -> Tuple[ProcessId, Any]:
    try:
        body = json.loads(line.decode("utf-8"))
        return _decode_pid(body["sender"]), decode_message(body["msg"])
    except (KeyError, ValueError) as exc:
        raise TransportError(f"malformed frame: {exc}") from exc


class TcpObjectServer:
    """Serves one object automaton on a localhost TCP port."""

    def __init__(self, automaton: ObjectAutomaton,
                 host: str = "127.0.0.1", port: int = 0):
        self.automaton = automaton
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        from ..types import obj
        my_pid = obj(self.automaton.object_index)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                sender, message = _parse(line)
                replies: Outgoing = []
                for part in unbatch(message):
                    replies.extend(
                        self.automaton.on_message(sender, part) or [])
                for receiver, payload in coalesce_outgoing(replies):
                    # Objects reply only to the requesting client; replies
                    # addressed elsewhere cannot be routed on this socket.
                    if receiver == sender:
                        writer.write(_frame(my_pid, payload))
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            writer.close()


class TcpStorageClient:
    """Drives client operations against a set of TCP object endpoints."""

    def __init__(self, pid: ProcessId,
                 endpoints: List[Tuple[str, int]]):
        if not pid.is_client:
            raise TransportError(f"{pid!r} is not a client")
        self.pid = pid
        self.endpoints = endpoints
        self._connections: List[
            Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._inbox: "asyncio.Queue[Tuple[ProcessId, Any]]" = asyncio.Queue()
        self._pumps: List[asyncio.Task] = []

    async def connect(self) -> None:
        for host, port in self.endpoints:
            reader, writer = await asyncio.open_connection(host, port)
            self._connections.append((reader, writer))
            self._pumps.append(asyncio.get_running_loop().create_task(
                self._pump(reader)))

    async def close(self) -> None:
        for task in self._pumps:
            task.cancel()
        await asyncio.gather(*self._pumps, return_exceptions=True)
        self._pumps.clear()
        for _, writer in self._connections:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
        self._connections.clear()

    async def _pump(self, reader: asyncio.StreamReader) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            self._inbox.put_nowait(_parse(line))

    async def _send(self, receiver: ProcessId, payload: Any) -> None:
        if not receiver.is_object:
            raise TransportError("TCP clients only talk to objects")
        if receiver.index >= len(self._connections):
            return  # endpoint not configured: behaves like a slow object
        _, writer = self._connections[receiver.index]
        writer.write(_frame(self.pid, payload))
        await writer.drain()

    async def run(self, operation: ClientOperation,
                  timeout: Optional[float] = 30.0) -> Any:
        for receiver, payload in operation.start() or []:
            await self._send(receiver, payload)

        async def pump() -> Any:
            while not operation.done:
                sender, message = await self._inbox.get()
                for part in unbatch(message):
                    for receiver, payload in (
                            operation.on_message(sender, part) or []):
                        await self._send(receiver, payload)
            return operation.result

        if operation.done:
            return operation.result
        if timeout is None:
            return await pump()
        return await asyncio.wait_for(pump(), timeout)

    async def run_many(self, operations: List[ClientOperation],
                       timeout: Optional[float] = 30.0) -> List[Any]:
        """Run same-client operations concurrently, one per register.

        First-round messages are coalesced per object into single batch
        frames; inbound frames are routed to the operation of the register
        they address, so R registers share this client's connections.
        """
        by_register: Dict[str, ClientOperation] = {}
        for operation in operations:
            if operation.register_id in by_register:
                raise TransportError(
                    f"two operations address register "
                    f"{operation.register_id!r}")
            by_register[operation.register_id] = operation
        first_round: Outgoing = []
        for operation in operations:
            first_round.extend(operation.start() or [])
        for receiver, payload in coalesce_outgoing(first_round):
            await self._send(receiver, payload)

        async def pump() -> List[Any]:
            while not all(op.done for op in by_register.values()):
                sender, message = await self._inbox.get()
                for part in unbatch(message):
                    operation = by_register.get(register_of(part))
                    if operation is None or operation.done:
                        continue
                    outgoing = operation.on_message(sender, part) or []
                    for receiver, payload in coalesce_outgoing(outgoing):
                        await self._send(receiver, payload)
            return [op.result for op in operations]

        if all(op.done for op in operations):
            return [op.result for op in operations]
        if timeout is None:
            return await pump()
        return await asyncio.wait_for(pump(), timeout)
