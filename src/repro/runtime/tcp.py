"""Localhost TCP transport: the same automata over real sockets.

Deployment shape: each base object runs a :class:`TcpObjectServer`; a
client opens one connection per object and drives its operation automata
through :class:`TcpStorageClient`.  Objects answer on the connection the
request arrived on -- the data-centric model's "objects only reply to
clients" rule falls out of the transport naturally.

Two frame formats coexist on every connection (see
:mod:`repro.runtime.codec`):

* **binary** (default, ``SystemConfig.wire_format = "binary"``) --
  ``0xB1``, a little-endian ``u32`` body length, a compact sender id,
  then the struct-packed message body;
* **json** (legacy) -- the original newline-delimited JSON frames.

Inbound frames are sniffed by their first byte (JSON frames always open
with ``{``), so old and new peers interoperate; ``wire_format`` only
selects what a process *emits*.  Batched requests are dispatched through
the automata's ``handle_batch`` fast path and all replies to the
requester coalesce into a single response frame.

This is the integration-test tier: slower than the in-memory network but
exercising serialization, framing and genuine OS-level interleaving.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import struct
from typing import Any, Dict, List, Optional, Tuple

from ..automata.base import (ClientOperation, ObjectAutomaton, Outgoing,
                             Sink, resolve_batch_handler)
from ..errors import ReplicaUnavailableError, TransportError
from ..messages import Batch, Message, register_of, unbatch
from ..types import (ProcessId, ROLE_OBJECT, ROLE_READER, ROLE_WRITER,
                     obj)
from .codec import (BINARY_MAGIC, decode_message, decode_message_binary,
                    encode_message, encode_message_binary)
from .hosts import as_frame, coalesce_outgoing

_S_LEN = struct.Struct("<I")
_ROLE_TO_CODE = {ROLE_WRITER: 0, ROLE_READER: 1, ROLE_OBJECT: 2}
_CODE_TO_ROLE = {code: role for role, code in _ROLE_TO_CODE.items()}


def _encode_pid(pid: ProcessId) -> Dict[str, Any]:
    return {"role": pid.role, "index": pid.index}


def _decode_pid(data: Dict[str, Any]) -> ProcessId:
    return ProcessId(role=data["role"], index=data["index"])


def _frame_json(sender: ProcessId, payload: Any) -> bytes:
    body = json.dumps({"sender": _encode_pid(sender),
                       "msg": encode_message(payload)},
                      separators=(",", ":"))
    return body.encode("utf-8") + b"\n"


def _frame_binary(sender: ProcessId, payload: Any) -> bytes:
    # [0xB1][u32 len][role u8][u32 index][message-frame]
    body = encode_message_binary(payload)
    head = bytearray()
    head.append(BINARY_MAGIC)
    head += _S_LEN.pack(len(body) + 5)
    head.append(_ROLE_TO_CODE[sender.role])
    head += _S_LEN.pack(sender.index)
    return bytes(head) + body


def _frame(sender: ProcessId, payload: Any,
           wire_format: str = "binary") -> bytes:
    if wire_format == "json":
        return _frame_json(sender, payload)
    return _frame_binary(sender, payload)


def _parse_json_line(line: bytes) -> Tuple[ProcessId, Any]:
    try:
        body = json.loads(line.decode("utf-8"))
        return _decode_pid(body["sender"]), decode_message(body["msg"])
    except (KeyError, ValueError) as exc:
        raise TransportError(f"malformed frame: {exc}") from exc


def _parse_binary_body(body: bytes) -> Tuple[ProcessId, Any]:
    try:
        role = _CODE_TO_ROLE.get(body[0])
        if role is None:
            raise TransportError(f"unknown sender role code {body[0]}")
        (index,) = _S_LEN.unpack_from(body, 1)
        sender = ProcessId(role=role, index=index)
    except (IndexError, struct.error) as exc:
        raise TransportError(f"malformed frame header: {exc}") from exc
    return sender, decode_message_binary(memoryview(body)[5:])


async def read_frame(reader: asyncio.StreamReader
                     ) -> Optional[Tuple[ProcessId, Any]]:
    """Read one frame of either format; ``None`` on clean EOF.

    The first byte decides: ``{`` opens a legacy newline-delimited JSON
    frame, :data:`~repro.runtime.codec.BINARY_MAGIC` a length-prefixed
    binary one.
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        return None
    if first == b"{":
        line = await reader.readline()
        return _parse_json_line(first + line)
    if first[0] == BINARY_MAGIC:
        try:
            (length,) = _S_LEN.unpack(await reader.readexactly(4))
            if length > 1 << 28:
                raise TransportError("binary frame implausibly large")
            return _parse_binary_body(await reader.readexactly(length))
        except asyncio.IncompleteReadError as exc:
            raise TransportError("truncated binary frame") from exc
    raise TransportError(
        f"unknown frame format (first byte {first[0]:#x})")


class TcpObjectServer:
    """Serves one object automaton on a localhost TCP port.

    ``wire_format`` selects the format of the *replies* ("binary",
    "json", or ``None`` to inherit the automaton config's setting);
    requests of either format are always accepted.  ``frame_hook``
    (if given) observes every inbound ``(sender, message)`` part
    *before* the automaton processes it -- the multiproc replica
    runtime hangs its write-ahead log here, so a message's effects
    cannot be acknowledged without its frame having been offered to
    the log first.  The hook may be a coroutine function (e.g.
    :meth:`~repro.runtime.wal.ReplicaDurability.log_async`, which
    fsyncs in an executor); its awaitable is awaited before the
    message is handled.
    """

    def __init__(self, automaton: ObjectAutomaton,
                 host: str = "127.0.0.1", port: int = 0,
                 wire_format: Optional[str] = None,
                 frame_hook=None):
        self.automaton = automaton
        self.host = host
        self.port = port
        if wire_format is None:
            wire_format = getattr(
                getattr(automaton, "config", None), "wire_format", "binary")
        self.wire_format = wire_format
        self.frame_hook = frame_hook
        self._handle_batch = resolve_batch_handler(automaton)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        # Claim the server before suspending so concurrent stops cannot
        # both drive the close sequence against a stale reference.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        my_pid = obj(self.automaton.object_index)
        wire_format = self.wire_format
        try:
            while True:
                parsed = await read_frame(reader)
                if parsed is None:
                    break
                sender, message = parsed
                parts = unbatch(message)
                if self.frame_hook is not None:
                    for part in parts:
                        hooked = self.frame_hook(sender, part)
                        if inspect.isawaitable(hooked):
                            await hooked
                # One request frame -> at most one response frame: the
                # batch fast path appends every reply to the requester
                # into one sink, coalesced into a single Batch frame.
                sink: Sink = []
                leftovers = self._handle_batch(sender, parts, sink) or []
                for receiver, payload in coalesce_outgoing(leftovers):
                    # Objects reply only to the requesting client;
                    # replies addressed elsewhere cannot be routed on
                    # this socket.
                    if receiver != sender:
                        continue
                    if isinstance(payload, Message) \
                            and not isinstance(payload, Batch):
                        sink.append(payload)
                    else:
                        # An already-batched (or exotic) reply cannot
                        # ride inside the sink frame; ship it as its
                        # own frame, as the pre-batching server did.
                        writer.write(_frame(my_pid, payload,
                                            wire_format))
                if sink:
                    writer.write(_frame(my_pid, as_frame(sink),
                                        wire_format))
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            writer.close()


class TcpStorageClient:
    """Drives client operations against a set of TCP object endpoints."""

    def __init__(self, pid: ProcessId,
                 endpoints: List[Tuple[str, int]],
                 wire_format: str = "binary"):
        if not pid.is_client:
            raise TransportError(f"{pid!r} is not a client")
        self.pid = pid
        self.endpoints = endpoints
        self.wire_format = wire_format
        self._connections: List[
            Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._inbox: "asyncio.Queue[Tuple[ProcessId, Any]]" = asyncio.Queue()
        self._pumps: List[asyncio.Task] = []
        #: per-endpoint reconnect serialization (created on demand).
        self._reconnect_locks: Dict[int, asyncio.Lock] = {}

    async def connect(self) -> None:
        for host, port in self.endpoints:
            reader, writer = await asyncio.open_connection(host, port)
            self._connections.append((reader, writer))
            self._pumps.append(asyncio.get_running_loop().create_task(
                self._pump(reader)))

    async def close(self) -> None:
        for task in self._pumps:
            task.cancel()
        await asyncio.gather(*self._pumps, return_exceptions=True)
        self._pumps.clear()
        for _, writer in self._connections:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
        self._connections.clear()

    async def _pump(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                parsed = await read_frame(reader)
                if parsed is None:
                    return
                self._inbox.put_nowait(parsed)
        except (ConnectionResetError, TransportError, OSError):
            return  # dead peer: the next send reconnects

    async def _reconnect(self, index: int,
                         broken: asyncio.StreamWriter
                         ) -> asyncio.StreamWriter:
        """Re-open one endpoint's connection after a broken pipe.

        Serialized per endpoint: without the lock, two writers hitting
        the same broken pipe would both open a socket -- one of the two
        is then orphaned (never closed, its pump task alive) and the
        replica sees a phantom duplicate connection.  The identity
        double-check makes the late arrival adopt the winner's socket
        instead of tearing it down again.
        """
        lock = self._reconnect_locks.setdefault(index, asyncio.Lock())
        async with lock:
            _, current = self._connections[index]
            if current is not broken:
                return current  # a concurrent writer already reconnected
            broken.close()
            host, port = self.endpoints[index]
            reader, writer = await asyncio.open_connection(host, port)
            self._connections[index] = (reader, writer)
            self._pumps.append(asyncio.get_running_loop().create_task(
                self._pump(reader)))
            return writer

    async def _write_frame(self, index: int, frame: bytes) -> None:
        """Write to one endpoint, reconnecting once on a broken pipe.

        A peer that died surfaces as a raw ``ConnectionResetError`` /
        ``BrokenPipeError``; after one failed reconnect attempt it is
        re-raised as the *typed*
        :class:`~repro.errors.ReplicaUnavailableError`, which retry
        policies absorb -- the window in which a killed replica process
        is being restarted by its supervisor looks like any other
        transient failure to callers.
        """
        _, writer = self._connections[index]
        try:
            writer.write(frame)
            await writer.drain()
            return
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        try:
            writer = await self._reconnect(index, writer)
            writer.write(frame)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise ReplicaUnavailableError(
                f"object endpoint {index} "
                f"({self.endpoints[index][0]}:{self.endpoints[index][1]}) "
                f"is unreachable: {exc}") from exc

    async def _send(self, receiver: ProcessId, payload: Any) -> None:
        if not receiver.is_object:
            raise TransportError("TCP clients only talk to objects")
        if receiver.index >= len(self._connections):
            return  # endpoint not configured: behaves like a slow object
        await self._write_frame(
            receiver.index, _frame(self.pid, payload, self.wire_format))

    async def _broadcast(self, sink: Sink) -> None:
        """One frame carrying the whole sink to every endpoint.

        A single unreachable endpoint is *skipped* rather than failing
        the broadcast: to the protocol it is a slow object, and every
        round is quorum-based -- failing the whole operation over one
        dead replica would throw away exactly the fault tolerance the
        replication pays for.
        """
        if not sink:
            return
        frame = _frame(self.pid, as_frame(sink), self.wire_format)
        for index in range(len(self._connections)):
            try:
                await self._write_frame(index, frame)
            except ReplicaUnavailableError:
                continue

    async def run(self, operation: ClientOperation,
                  timeout: Optional[float] = 30.0) -> Any:
        for receiver, payload in operation.start() or []:
            await self._send(receiver, payload)

        async def pump() -> Any:
            while not operation.done:
                sender, message = await self._inbox.get()
                for part in unbatch(message):
                    for receiver, payload in (
                            operation.on_message(sender, part) or []):
                        await self._send(receiver, payload)
            return operation.result

        if operation.done:
            return operation.result
        if timeout is None:
            return await pump()
        return await asyncio.wait_for(pump(), timeout)

    async def run_many(self, operations: List[ClientOperation],
                       timeout: Optional[float] = 30.0) -> List[Any]:
        """Run same-client operations as vector rounds, one per register.

        Each round leaves as one frame per endpoint carrying every
        member's payload for that step; inbound frames are absorbed part
        by part and each touched operation advances once per frame.
        """
        by_register: Dict[str, ClientOperation] = {}
        for operation in operations:
            if operation.register_id in by_register:
                raise TransportError(
                    f"two operations address register "
                    f"{operation.register_id!r}")
            by_register[operation.register_id] = operation
        sink: Sink = []
        leftovers: Outgoing = []
        for operation in operations:
            operation.start_vector(sink, leftovers)
        await self._broadcast(sink)
        for receiver, payload in coalesce_outgoing(leftovers):
            await self._send(receiver, payload)

        async def pump() -> List[Any]:
            while not all(op.done for op in by_register.values()):
                sender, message = await self._inbox.get()
                dirty: List[ClientOperation] = []
                for part in unbatch(message):
                    operation = by_register.get(register_of(part))
                    if operation is None or operation.done:
                        continue
                    operation.absorb(sender, part)
                    if operation not in dirty:
                        dirty.append(operation)
                sink: Sink = []
                leftovers: Outgoing = []
                for operation in dirty:
                    if not operation.done:
                        operation.advance(sink, leftovers)
                await self._broadcast(sink)
                for receiver, payload in coalesce_outgoing(leftovers):
                    await self._send(receiver, payload)
            return [op.result for op in operations]

        if all(op.done for op in operations):
            return [op.result for op in operations]
        if timeout is None:
            return await pump()
        return await asyncio.wait_for(pump(), timeout)
