"""Asyncio runtime: the same protocol automata under real concurrency.

Two tiers:

* :class:`AsyncStorage` on the in-memory :class:`AsyncNetwork` (fast,
  optional seeded jitter);
* :class:`TcpObjectServer` / :class:`TcpStorageClient` over localhost TCP
  with the JSON wire codec (integration tier).

:mod:`repro.runtime.wal` adds per-replica durability (write-ahead log +
snapshots of raw binary wire frames) for the multiproc deployment.
"""

from .codec import (decode_message, decode_value, encode_message,
                    encode_value, register_codec)
from .hosts import ClientHost, MuxClientHost, ObjectHost, coalesce_outgoing
from .memnet import AsyncEnvelope, AsyncNetwork
from .storage import AsyncStorage
from .tcp import TcpObjectServer, TcpStorageClient
from .wal import (FrameCompactor, ReplicaDurability, SnapshotStore,
                  WriteAheadLog)

__all__ = [
    "FrameCompactor",
    "ReplicaDurability",
    "SnapshotStore",
    "WriteAheadLog",
    "AsyncStorage",
    "AsyncNetwork",
    "AsyncEnvelope",
    "ObjectHost",
    "ClientHost",
    "MuxClientHost",
    "coalesce_outgoing",
    "TcpObjectServer",
    "TcpStorageClient",
    "encode_message",
    "decode_message",
    "encode_value",
    "decode_value",
    "register_codec",
]
