"""Per-replica durability: write-ahead log + compacting snapshots.

The paper's model is crash-*stop*: a crashed base object never comes
back, and :meth:`~repro.service.reconfig.ReconfigCoordinator.
heal_replica` replaces it with a blank one.  The multiproc deployment
(:mod:`repro.service.procs`) upgrades replicas to crash-*recovery*: every
state-mutating message a replica receives is appended to a write-ahead
log before its effects can be acknowledged durably, and the log is
periodically compacted into a snapshot file.  A restarted replica
replays snapshot + WAL and rejoins with the state of a slow-but-correct
replica -- then the ordinary ``heal_replica`` path re-installs current
values on top, exactly as for an in-proc replacement.

Record layout (both the WAL and snapshot files)::

    [u32 payload length][u32 crc32(payload)][payload]

where the payload is one **binary wire frame** -- the same
``[0xB1][u32 len][sender][message]`` bytes the TCP tier ships
(:func:`repro.runtime.tcp._frame_binary`).  Storing raw frames means the
log needs no schema of its own: recovery feeds the frames back through
the automaton's ``handle_batch`` with a discarded reply sink, and any
message the codec can carry, the log can carry.

Durability is *torn-tail safe*: a crash mid-append leaves a final record
with a short or corrupt payload; :meth:`WriteAheadLog.replay` verifies
each record's CRC, truncates the file back to the last intact record,
and returns only the verified prefix.  Snapshot files are written to a
temp name and atomically renamed, so a crash mid-snapshot leaves the
previous snapshot in place.

Only *durable* messages are logged (:func:`is_durable`): ``Pw`` and
``W`` rounds mutate register slots, ``EpochFence`` mutates fence state.
Queries (``TagQuery``, ``ReadRequest``) are read-only and replayable
from nothing.
"""

from __future__ import annotations

import asyncio
import os
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TransportError
from ..messages import EpochFence, Message, Pw, W
from ..types import ProcessId, WriterTag

_S_RECORD = struct.Struct("<II")  # payload length, crc32(payload)

#: Message types whose receipt mutates object state and must therefore
#: survive a restart.  Everything else is a query or an ack.
DURABLE_TYPES = (Pw, W, EpochFence)

#: ``"batch"`` fsync cadence: records between forced syncs.
FSYNC_BATCH_INTERVAL = 64


def is_durable(message: Any) -> bool:
    """Whether a message mutates object state (must be logged)."""
    return isinstance(message, DURABLE_TYPES)


def pack_frame(sender: ProcessId, message: Message) -> bytes:
    """One WAL/snapshot payload: the message as a binary wire frame."""
    from .tcp import _frame_binary  # late: tcp imports hosts, not wal
    return _frame_binary(sender, message)


def unpack_frame(frame: bytes) -> Tuple[ProcessId, Any]:
    """Decode a stored frame back to ``(sender, message)``."""
    from .tcp import _parse_binary_body
    if len(frame) < 5:
        raise TransportError("stored frame shorter than its header")
    (length,) = struct.unpack_from("<I", frame, 1)
    return _parse_binary_body(frame[5:5 + length])


def _pack_record(payload: bytes) -> bytes:
    return _S_RECORD.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(blob: bytes) -> Tuple[List[bytes], int]:
    """Parse length-delimited records; returns ``(payloads, good_end)``.

    ``good_end`` is the offset just past the last record whose length
    and CRC both verify -- everything beyond it is a torn tail.
    """
    payloads: List[bytes] = []
    offset = 0
    size = len(blob)
    while offset + _S_RECORD.size <= size:
        length, crc = _S_RECORD.unpack_from(blob, offset)
        start = offset + _S_RECORD.size
        end = start + length
        if end > size:
            break  # short payload: torn mid-append
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt record: everything after is suspect
        payloads.append(payload)
        offset = end
    return payloads, offset


class WriteAheadLog:
    """An append-only log of binary wire frames with CRC framing.

    Every append is ``flush()``\\ ed into the kernel page cache before it
    returns: a record acknowledged to the caller survives ``kill -9`` of
    the logging process under *every* policy -- userspace buffers die
    with the process, the page cache does not.  ``fsync`` then selects
    how much a whole-machine failure (power loss, kernel panic) may
    cost: ``"always"`` syncs every append, ``"batch"`` every
    :data:`FSYNC_BATCH_INTERVAL` appends (and on :meth:`sync`/
    :meth:`close`), ``"never"`` leaves syncing to the OS.  All three
    keep the format torn-tail safe.
    """

    def __init__(self, path: str, fsync: str = "batch"):
        if fsync not in ("always", "batch", "never"):
            raise TransportError(f"unknown WAL fsync policy {fsync!r}")
        self.path = path
        self.fsync = fsync
        self._appends_since_sync = 0
        self._fh = open(path, "ab")

    # -- writing ------------------------------------------------------------
    def append(self, payload: bytes) -> None:
        self._fh.write(_pack_record(payload))
        self._fh.flush()  # past userspace: a SIGKILL now loses nothing
        if self.fsync == "always":
            os.fsync(self._fh.fileno())
        elif self.fsync == "batch":
            self._appends_since_sync += 1
            if self._appends_since_sync >= FSYNC_BATCH_INTERVAL:
                self.sync()

    async def append_async(self, payload: bytes) -> None:
        """:meth:`append` with any policy ``fsync`` off the event loop.

        The write + flush happen inline (so record order matches call
        order and the record already survives a process kill); a
        policy-mandated ``os.fsync`` runs in the default executor and is
        awaited, so a blocking disk sync never stalls an asyncio serving
        loop while durable-before-ack is preserved -- the caller cannot
        reply until the await returns.
        """
        self._fh.write(_pack_record(payload))
        self._fh.flush()  # reprolint: ok[blocking-async] -- page-cache barrier, microseconds; must precede the ack so record order matches call order and a SIGKILL after return loses nothing
        if self.fsync == "always":
            await asyncio.get_running_loop().run_in_executor(
                None, os.fsync, self._fh.fileno())
        elif self.fsync == "batch":
            self._appends_since_sync += 1
            if self._appends_since_sync >= FSYNC_BATCH_INTERVAL:
                self._appends_since_sync = 0
                await asyncio.get_running_loop().run_in_executor(
                    None, os.fsync, self._fh.fileno())

    def sync(self) -> None:
        self._fh.flush()
        if self.fsync != "never":
            os.fsync(self._fh.fileno())
        self._appends_since_sync = 0

    def reset(self) -> None:
        """Discard every record (the snapshot now covers them)."""
        self._fh.truncate(0)
        self._fh.seek(0)
        self.sync()

    def close(self) -> None:
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    # -- recovery -----------------------------------------------------------
    def replay(self) -> List[bytes]:
        """Verified record payloads, oldest first; truncates a torn tail.

        Safe to call on the open log (recovery happens before serving);
        the write handle is repositioned past the verified prefix so
        later appends continue exactly where the intact log ends.
        """
        self._fh.flush()
        with open(self.path, "rb") as fh:
            blob = fh.read()
        payloads, good_end = scan_records(blob)
        if good_end < len(blob):
            self._fh.truncate(good_end)
        self._fh.seek(0, os.SEEK_END)
        return payloads


class SnapshotStore:
    """Atomic snapshot files next to a replica's WAL.

    One current snapshot per replica (``snapshot.bin``), written via a
    temp file + ``os.replace`` so readers only ever observe a complete
    snapshot or the previous one.  The record framing is the WAL's, so
    a damaged snapshot degrades the same way: the verified prefix loads,
    the torn tail is dropped.
    """

    FILENAME = "snapshot.bin"

    def __init__(self, directory: str):
        self.directory = directory
        self.path = os.path.join(directory, self.FILENAME)

    def save(self, payloads: List[bytes]) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            for payload in payloads:
                fh.write(_pack_record(payload))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def load(self) -> List[bytes]:
        try:
            with open(self.path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return []
        payloads, _ = scan_records(blob)
        return payloads


class _RegisterDigest:
    """The compacted durable state of one register slot.

    Keeps the maximum-tag ``Pw`` and ``W`` frame seen (the write rounds
    every lower-tagged round is superseded by) and the fence ratchet
    (mirroring :meth:`~repro.automata.base.MultiRegisterObject.
    _on_epoch_fence`: epochs only ratchet up, ``hard`` is sticky, and a
    ``lift`` clears both).  Replaying these two-or-three frames leaves a
    fresh automaton holding the same top tag, top value and fence state
    as one that processed the whole log -- lower history entries are
    dropped, which is the state of a correct-but-slow replica and
    exactly what ``heal_replica`` is specified to top up.
    """

    __slots__ = ("pw", "w", "fence")

    def __init__(self):
        self.pw: Optional[Tuple[WriterTag, ProcessId, Message]] = None
        self.w: Optional[Tuple[WriterTag, ProcessId, Message]] = None
        self.fence: Optional[Tuple[ProcessId, EpochFence]] = None

    def observe(self, sender: ProcessId, message: Message) -> None:
        if isinstance(message, Pw):
            if self.pw is None or message.tag >= self.pw[0]:
                self.pw = (message.tag, sender, message)
        elif isinstance(message, W):
            if self.w is None or message.tag >= self.w[0]:
                self.w = (message.tag, sender, message)
        elif isinstance(message, EpochFence):
            if message.lift:
                self.fence = None
                return
            current = self.fence[1] if self.fence is not None else None
            epoch = max(message.epoch,
                        current.epoch if current is not None else 0)
            hard = message.hard or (current is not None and current.hard)
            merged = EpochFence(nonce=message.nonce, epoch=epoch,
                                register_id=message.register_id,
                                hard=hard)
            self.fence = (sender, merged)

    def frames(self) -> List[bytes]:
        """Replay frames, write rounds before the fence.

        The fence comes last so replaying the write rounds is never
        refused by the very fence that postdates them.
        """
        out: List[bytes] = []
        if self.pw is not None:
            out.append(pack_frame(self.pw[1], self.pw[2]))
        if self.w is not None:
            out.append(pack_frame(self.w[1], self.w[2]))
        if self.fence is not None:
            out.append(pack_frame(self.fence[0], self.fence[1]))
        return out


class FrameCompactor:
    """Folds the durable message stream into a bounded snapshot.

    Observing every durable message (recovered *and* newly logged), it
    maintains per-register digests whose total size is ``O(registers)``
    regardless of write volume -- the log can be truncated after every
    snapshot without losing recoverability.
    """

    def __init__(self):
        self._registers: Dict[str, _RegisterDigest] = {}

    def observe(self, sender: ProcessId, message: Message) -> None:
        register_id = getattr(message, "register_id", None)
        if register_id is None:
            return
        digest = self._registers.get(register_id)
        if digest is None:
            digest = self._registers[register_id] = _RegisterDigest()
        digest.observe(sender, message)

    def snapshot_frames(self) -> List[bytes]:
        frames: List[bytes] = []
        for register_id in sorted(self._registers):
            frames.extend(self._registers[register_id].frames())
        return frames

    def __len__(self) -> int:
        return len(self._registers)


class ReplicaDurability:
    """One replica's durable state: WAL + snapshots + compactor.

    The facade the multiproc replica runtime drives:

    * :meth:`recover` -- load snapshot + WAL, return the frames to feed
      through the automaton (and prime the compactor with them);
    * :meth:`log` -- called per inbound message; durable ones are
      appended to the WAL and folded into the compactor;
    * :meth:`take_snapshot` -- persist the compactor's digest
      atomically, then truncate the WAL;
    * :meth:`close` -- final sync.
    """

    def __init__(self, directory: str, fsync: str = "batch"):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.snapshots = SnapshotStore(directory)
        self.wal = WriteAheadLog(os.path.join(directory, "wal.bin"),
                                 fsync=fsync)
        self.compactor = FrameCompactor()
        #: durable records appended since the last snapshot; drives the
        #: serving loop's snapshot cadence.
        self.records_since_snapshot = 0

    def recover(self) -> List[Tuple[ProcessId, Any]]:
        recovered: List[Tuple[ProcessId, Any]] = []
        wal_payloads = self.wal.replay()
        self.records_since_snapshot = len(wal_payloads)
        for payload in self.snapshots.load() + wal_payloads:
            try:
                sender, message = unpack_frame(payload)
            except TransportError:
                continue  # an undecodable frame cannot be replayed
            self.compactor.observe(sender, message)
            recovered.append((sender, message))
        return recovered

    def log(self, sender: ProcessId, message: Any) -> None:
        if not is_durable(message):
            return
        self.compactor.observe(sender, message)
        self.wal.append(pack_frame(sender, message))
        self.records_since_snapshot += 1

    async def log_async(self, sender: ProcessId, message: Any) -> None:
        """:meth:`log` for asyncio serving loops: fsyncs run in the
        default executor (awaited, so durable-before-ack holds) instead
        of blocking every connection hosted by the loop."""
        if not is_durable(message):
            return
        self.compactor.observe(sender, message)
        self.records_since_snapshot += 1
        await self.wal.append_async(pack_frame(sender, message))

    def take_snapshot(self) -> int:
        """Persist the digest and truncate the WAL; returns frame count."""
        frames = self.compactor.snapshot_frames()
        self.snapshots.save(frames)
        self.wal.reset()
        self.records_since_snapshot = 0
        return len(frames)

    def close(self) -> None:
        self.wal.close()


__all__ = [
    "DURABLE_TYPES",
    "FrameCompactor",
    "ReplicaDurability",
    "SnapshotStore",
    "WriteAheadLog",
    "is_durable",
    "pack_frame",
    "scan_records",
    "unpack_frame",
]
