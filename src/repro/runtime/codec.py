"""Wire codecs: JSON (legacy) and binary encodings of every message.

The deterministic simulator passes Python objects by reference; the TCP
transport needs real serialization.  Two codecs are total over the
message vocabulary of :mod:`repro.messages`, the baseline messages, and
payload values that are JSON scalars, ``bytes`` or ``⊥``:

* the **JSON codec** (:func:`encode_message` / :func:`decode_message`) --
  the original line-oriented format, kept decodable forever for
  compatibility with recorded frames and old peers;
* the **binary codec** (:func:`encode_message_binary` /
  :func:`decode_message_binary`) -- length-delimited, ``struct``-packed
  type tags, varint integers and a per-frame shared string table for
  register ids, selected by ``SystemConfig.wire_format`` and used by the
  TCP tier by default.

A binary frame always starts with :data:`BINARY_MAGIC` (which can never
open a JSON document), so :func:`decode_message_auto` and the TCP framers
detect the format per frame -- mixed-format peers interoperate on one
connection.

Encoding is structural and versioned by type tags, so a decoded message
is ``==`` to the original (all message types are frozen dataclasses).
"""

from __future__ import annotations

import base64
import functools
import json
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import TransportError
from ..messages import (Batch, EpochFence, EpochFenceAck, HistoryEntry,
                        HistoryReadAck, LeaseProbe, LeaseProbeAck,
                        Pw, PwAck, ReadAck, ReadRequest,
                        TagQuery, TagQueryAck, W, WriteAck, WriteFenced)
from ..types import (BOTTOM, DEFAULT_REGISTER, INITIAL_TSVAL,
                     TimestampValue, TsrArray, WriterTag, WriteTuple,
                     _Bottom, as_tag, intern_write_tuple)


# ---------------------------------------------------------------------------
# value-level codecs
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    if isinstance(value, _Bottom):
        return {"__t": "bottom"}
    if isinstance(value, TimestampValue):
        body = {"__t": "tsval", "ts": value.ts,
                "v": encode_value(value.value)}
        if value.wid:
            # Writer 0 omits the tag so legacy frames stay byte-identical.
            body["wid"] = value.wid
        return body
    if isinstance(value, TsrArray):
        return {"__t": "tsr", "rows": [list(row) for row in value]}
    if isinstance(value, WriteTuple):
        return {"__t": "wtuple", "tsval": encode_value(value.tsval),
                "tsr": encode_value(value.tsrarray)}
    if isinstance(value, HistoryEntry):
        return {"__t": "hentry",
                "pw": None if value.pw is None else encode_value(value.pw),
                "w": None if value.w is None else encode_value(value.w)}
    if isinstance(value, bytes):
        return {"__t": "bytes",
                "b64": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TransportError(
        f"value of type {type(value).__name__} is not wire-encodable")


def decode_value(data: Any) -> Any:
    if not isinstance(data, dict) or "__t" not in data:
        return data
    tag = data["__t"]
    if tag == "bottom":
        return BOTTOM
    if tag == "tsval":
        return TimestampValue(data["ts"], decode_value(data["v"]),
                              wid=data.get("wid", 0))
    if tag == "tsr":
        return TsrArray.from_lists(data["rows"])
    if tag == "wtuple":
        return WriteTuple(decode_value(data["tsval"]),
                          decode_value(data["tsr"]))
    if tag == "hentry":
        return HistoryEntry(
            pw=None if data["pw"] is None else decode_value(data["pw"]),
            w=None if data["w"] is None else decode_value(data["w"]))
    if tag == "bytes":
        return base64.b64decode(data["b64"])
    raise TransportError(f"unknown value tag {tag!r}")


# ---------------------------------------------------------------------------
# message-level codecs
# ---------------------------------------------------------------------------

def _register(d: Dict[str, Any]) -> str:
    """Decode the register tag; absent on pre-multiplexing frames."""
    return d.get("r", DEFAULT_REGISTER)


def _wid(d: Dict[str, Any]) -> int:
    """Decode the writer id; absent on pre-MWMR frames (writer 0)."""
    return d.get("wid", 0)


def _maybe_wid(body: Dict[str, Any], wid: int) -> Dict[str, Any]:
    """Attach a writer id only when nonzero (legacy frames stay stable)."""
    if wid:
        body["wid"] = wid
    return body


def _encode_tag_key(tag: WriterTag) -> str:
    """History keys: ``"epoch"`` for writer 0 (legacy), ``"epoch:wid"``."""
    if tag.writer_id:
        return f"{tag.epoch}:{tag.writer_id}"
    return str(tag.epoch)


def _decode_tag_key(key: str) -> WriterTag:
    epoch, _, wid = key.partition(":")
    return WriterTag(int(epoch), int(wid) if wid else 0)


def _encode_from_ts(from_ts: Any) -> Any:
    """``from_ts``: None, bare epoch (writer 0, legacy) or [epoch, wid]."""
    if from_ts is None:
        return None
    tag = as_tag(from_ts)
    if tag.writer_id == 0:
        return tag.epoch
    return [tag.epoch, tag.writer_id]


def _decode_from_ts(data: Any) -> Any:
    if data is None:
        return None
    return as_tag(data if isinstance(data, int) else tuple(data))


_ENCODERS: Dict[type, Callable[[Any], Dict[str, Any]]] = {
    Pw: lambda m: _maybe_wid(
        {"ts": m.ts, "pw": encode_value(m.pw),
         "w": encode_value(m.w), "r": m.register_id}, m.wid),
    W: lambda m: _maybe_wid(
        {"ts": m.ts, "pw": encode_value(m.pw),
         "w": encode_value(m.w), "r": m.register_id}, m.wid),
    PwAck: lambda m: _maybe_wid(
        {"ts": m.ts, "i": m.object_index,
         "tsr": list(m.tsr), "r": m.register_id}, m.wid),
    WriteAck: lambda m: _maybe_wid(
        {"ts": m.ts, "i": m.object_index, "r": m.register_id}, m.wid),
    TagQuery: lambda m: {"nonce": m.nonce, "r": m.register_id},
    TagQueryAck: lambda m: _maybe_wid(
        {"nonce": m.nonce, "i": m.object_index, "epoch": m.epoch,
         "r": m.register_id}, m.wid),
    EpochFence: lambda m: (
        {"nonce": m.nonce, "epoch": m.epoch, "r": m.register_id,
         **({"hard": True} if m.hard else {}),
         **({"lift": True} if m.lift else {})}),
    EpochFenceAck: lambda m: {"nonce": m.nonce, "i": m.object_index,
                              "epoch": m.epoch, "r": m.register_id},
    WriteFenced: lambda m: _maybe_wid(
        {"i": m.object_index, "epoch": m.epoch, "fence": m.fence_epoch,
         "nonce": m.nonce, "r": m.register_id}, m.wid),
    ReadRequest: lambda m: {"k": m.round_index, "tsr": m.tsr,
                            "j": m.reader_index,
                            "from_ts": _encode_from_ts(m.from_ts),
                            "r": m.register_id},
    ReadAck: lambda m: {"k": m.round_index, "tsr": m.tsr,
                        "i": m.object_index, "pw": encode_value(m.pw),
                        "w": encode_value(m.w), "r": m.register_id},
    HistoryReadAck: lambda m: {
        "k": m.round_index, "tsr": m.tsr, "i": m.object_index,
        "r": m.register_id,
        "h": {_encode_tag_key(tag): encode_value(entry)
              for tag, entry in m.history.items()}},
    LeaseProbe: lambda m: _maybe_wid(
        {"nonce": m.nonce, "epoch": m.epoch, "j": m.reader_index,
         "r": m.register_id}, m.wid),
    LeaseProbeAck: lambda m: _maybe_wid(
        {"nonce": m.nonce, "i": m.object_index, "epoch": m.epoch,
         "holds": m.holds, "fenced": m.fenced, "r": m.register_id},
        m.wid),
}

_DECODERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "Pw": lambda d: Pw(ts=d["ts"], pw=decode_value(d["pw"]),
                       w=decode_value(d["w"]), register_id=_register(d),
                       wid=_wid(d)),
    "W": lambda d: W(ts=d["ts"], pw=decode_value(d["pw"]),
                     w=decode_value(d["w"]), register_id=_register(d),
                     wid=_wid(d)),
    "PwAck": lambda d: PwAck(ts=d["ts"], object_index=d["i"],
                             tsr=tuple(d["tsr"]),
                             register_id=_register(d), wid=_wid(d)),
    "WriteAck": lambda d: WriteAck(ts=d["ts"], object_index=d["i"],
                                   register_id=_register(d), wid=_wid(d)),
    "TagQuery": lambda d: TagQuery(nonce=d["nonce"],
                                   register_id=_register(d)),
    "TagQueryAck": lambda d: TagQueryAck(nonce=d["nonce"],
                                         object_index=d["i"],
                                         epoch=d["epoch"], wid=_wid(d),
                                         register_id=_register(d)),
    "EpochFence": lambda d: EpochFence(nonce=d["nonce"], epoch=d["epoch"],
                                       register_id=_register(d),
                                       hard=d.get("hard", False),
                                       lift=d.get("lift", False)),
    "EpochFenceAck": lambda d: EpochFenceAck(nonce=d["nonce"],
                                             object_index=d["i"],
                                             epoch=d["epoch"],
                                             register_id=_register(d)),
    "WriteFenced": lambda d: WriteFenced(object_index=d["i"],
                                         epoch=d["epoch"],
                                         fence_epoch=d["fence"],
                                         wid=_wid(d), nonce=d["nonce"],
                                         register_id=_register(d)),
    "ReadRequest": lambda d: ReadRequest(round_index=d["k"], tsr=d["tsr"],
                                         reader_index=d["j"],
                                         from_ts=_decode_from_ts(
                                             d["from_ts"]),
                                         register_id=_register(d)),
    "ReadAck": lambda d: ReadAck(round_index=d["k"], tsr=d["tsr"],
                                 object_index=d["i"],
                                 pw=decode_value(d["pw"]),
                                 w=decode_value(d["w"]),
                                 register_id=_register(d)),
    "HistoryReadAck": lambda d: HistoryReadAck(
        round_index=d["k"], tsr=d["tsr"], object_index=d["i"],
        register_id=_register(d),
        history={_decode_tag_key(tag): decode_value(entry)
                 for tag, entry in d["h"].items()}),
    "LeaseProbe": lambda d: LeaseProbe(nonce=d["nonce"], epoch=d["epoch"],
                                       reader_index=d["j"], wid=_wid(d),
                                       register_id=_register(d)),
    "LeaseProbeAck": lambda d: LeaseProbeAck(
        nonce=d["nonce"], object_index=d["i"], epoch=d["epoch"],
        wid=_wid(d), holds=d.get("holds", False),
        fenced=d.get("fenced", False), register_id=_register(d)),
}


def register_codec(message_type: type,
                   encoder: Callable[[Any], Dict[str, Any]],
                   decoder: Callable[[Dict[str, Any]], Any]) -> None:
    """Extension point for baseline / user-defined message types."""
    _ENCODERS[message_type] = encoder
    _DECODERS[message_type.__name__] = decoder


def _encode_body(message: Any) -> Dict[str, Any]:
    encoder = _ENCODERS.get(type(message))
    if encoder is None:
        raise TransportError(
            f"no codec registered for {type(message).__name__}")
    body = encoder(message)
    body["__kind"] = type(message).__name__
    return body


def _decode_body(body: Dict[str, Any]) -> Any:
    kind = body.pop("__kind", None)
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise TransportError(f"no codec registered for kind {kind!r}")
    return decoder(body)


def encode_message(message: Any) -> str:
    return json.dumps(_encode_body(message), separators=(",", ":"),
                      sort_keys=True)


def decode_message(wire: str) -> Any:
    try:
        body = json.loads(wire)
    except json.JSONDecodeError as exc:
        raise TransportError(f"malformed wire message: {exc}") from exc
    return _decode_body(body)


# A batch's parts are embedded as plain tagged dicts in the one frame --
# not as nested JSON strings, which would re-escape every part -- so
# batching composes with every registered vocabulary at no size penalty.
_ENCODERS[Batch] = lambda m: {
    "parts": [_encode_body(part) for part in m.messages]}
_DECODERS["Batch"] = lambda d: Batch(
    messages=tuple(_decode_body(part) for part in d["parts"]))


# ---------------------------------------------------------------------------
# codecs for the baseline and extension message vocabularies
# ---------------------------------------------------------------------------


def _register_extras() -> None:
    """Register baseline/extension messages so the TCP tier covers every
    protocol in the library, not just the paper's core."""
    from ..baselines.abd.protocol import (AbdQuery, AbdQueryAck, AbdStore,
                                          AbdStoreAck)
    from ..baselines.authenticated.protocol import (AuthQuery, AuthQueryAck,
                                                    AuthStore, AuthStoreAck)
    from ..core.atomic.protocol import WriteBack, WriteBackAck
    from ..crypto_sim import SignedValue

    def encode_abd_store(m):
        body = {"tsval": encode_value(m.tsval), "nonce": m.nonce,
                "r": m.register_id}
        if m.write_back:  # legacy writer frames stay byte-identical
            body["wb"] = True
        return body

    register_codec(
        AbdStore,
        encode_abd_store,
        lambda d: AbdStore(tsval=decode_value(d["tsval"]),
                           nonce=d["nonce"], register_id=_register(d),
                           write_back=d.get("wb", False)))
    register_codec(
        AbdStoreAck,
        lambda m: {"nonce": m.nonce, "ts": m.ts, "r": m.register_id},
        lambda d: AbdStoreAck(nonce=d["nonce"], ts=d["ts"],
                              register_id=_register(d)))
    register_codec(
        AbdQuery,
        lambda m: {"nonce": m.nonce, "r": m.register_id},
        lambda d: AbdQuery(nonce=d["nonce"], register_id=_register(d)))
    register_codec(
        AbdQueryAck,
        lambda m: {"nonce": m.nonce, "tsval": encode_value(m.tsval),
                   "r": m.register_id},
        lambda d: AbdQueryAck(nonce=d["nonce"],
                              tsval=decode_value(d["tsval"]),
                              register_id=_register(d)))

    def encode_signed(signed):
        if signed is None:
            return None
        return {"payload": encode_value(signed.payload),
                "key_id": signed.key_id,
                "tag": encode_value(signed.tag)}

    def decode_signed(data):
        if data is None:
            return None
        return SignedValue(payload=decode_value(data["payload"]),
                           key_id=data["key_id"],
                           tag=decode_value(data["tag"]))

    register_codec(
        AuthStore,
        lambda m: {"signed": encode_signed(m.signed), "nonce": m.nonce,
                   "r": m.register_id},
        lambda d: AuthStore(signed=decode_signed(d["signed"]),
                            nonce=d["nonce"], register_id=_register(d)))
    register_codec(
        AuthStoreAck,
        lambda m: {"nonce": m.nonce, "r": m.register_id},
        lambda d: AuthStoreAck(nonce=d["nonce"],
                               register_id=_register(d)))
    register_codec(
        AuthQuery,
        lambda m: {"nonce": m.nonce, "r": m.register_id},
        lambda d: AuthQuery(nonce=d["nonce"], register_id=_register(d)))
    register_codec(
        AuthQueryAck,
        lambda m: {"nonce": m.nonce, "signed": encode_signed(m.signed),
                   "r": m.register_id},
        lambda d: AuthQueryAck(nonce=d["nonce"],
                               signed=decode_signed(d["signed"]),
                               register_id=_register(d)))

    register_codec(
        WriteBack,
        lambda m: {"c": encode_value(m.c), "nonce": m.nonce,
                   "j": m.reader_index, "r": m.register_id},
        lambda d: WriteBack(c=decode_value(d["c"]), nonce=d["nonce"],
                            reader_index=d["j"],
                            register_id=_register(d)))
    register_codec(
        WriteBackAck,
        lambda m: {"nonce": m.nonce, "i": m.object_index,
                   "r": m.register_id},
        lambda d: WriteBackAck(nonce=d["nonce"], object_index=d["i"],
                               register_id=_register(d)))

    from ..sim.server_centric import PushUpdate

    register_codec(
        PushUpdate,
        lambda m: {"i": m.object_index, "tsval": encode_value(m.tsval)},
        lambda d: PushUpdate(object_index=d["i"],
                             tsval=decode_value(d["tsval"])))


_register_extras()


# ---------------------------------------------------------------------------
# Binary codec
# ---------------------------------------------------------------------------
#
# Frame layout (everything little-endian):
#
#   message := MAGIC kind:u8 body
#   body    := one precompiled ``struct`` covering every fixed-width
#              field of the message, followed by strings / values /
#              repeated sections
#   string  := u8 < 0xFE            -- string-table reference (index)
#            | 0xFE u16(index)      -- reference beyond 253
#            | 0xFF u16(len) bytes  -- first occurrence, appended to the
#                                      frame's string table
#   cells   := n x i64, -1 encoding the paper's ``nil``
#   value   := tag:u8 payload (generic payloads: scalars, pairs, tuples)
#
# Decode speed is the design driver: all fixed fields of a message are
# read with a single ``Struct.unpack_from`` and array cells with one
# bulk unpack, so the per-field pure-Python overhead that dominates a
# varint-oriented layout disappears.  The shared string table is per
# frame: a Batch's parts share one table, so register ids repeated
# across parts are encoded once.  Counter fields (timestamps, epochs,
# nonces) must fit a signed 64-bit integer -- they are monotone
# counters, so this is not a practical limit; generic *values* fall
# back to a decimal big-int encoding.

#: First byte of every binary frame; can never open a JSON document.
BINARY_MAGIC = 0xB1

_STR_REF16 = 0xFE
_STR_NEW = 0xFF

# value tags (generic payload values)
_VAL_NONE = 0
_VAL_TRUE = 1
_VAL_FALSE = 2
_VAL_BOTTOM = 3
_VAL_INT = 4
_VAL_BIGINT = 5
_VAL_FLOAT = 6
_VAL_STR = 7
_VAL_BYTES = 8
_VAL_TSVAL = 9
_VAL_TSR = 10
_VAL_WTUPLE = 11
_VAL_HENTRY = 12

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_S_F64 = struct.Struct("<d")
_S_I64 = struct.Struct("<q")
_S_U16 = struct.Struct("<H")
_S_TSVAL = struct.Struct("<qI")        # ts, wid
_S_TSR_HDR = struct.Struct("<HH")      # num_objects, num_readers
_S_HENTRY = struct.Struct("<qIB")      # tag epoch, tag wid, flags
_S_TAG = struct.Struct("<qI")          # tag epoch, tag wid


@functools.lru_cache(maxsize=256)
def _cells_struct(count: int) -> struct.Struct:
    """Bulk cell codec: ``count`` 64-bit slots in one (un)pack."""
    return struct.Struct(f"<{count}q")


@functools.lru_cache(maxsize=64)
def _empty_tsr(num_objects: int, num_readers: int) -> TsrArray:
    """The all-nil array, shared per shape (the common wire case)."""
    return TsrArray.empty(num_objects, num_readers)


@functools.lru_cache(maxsize=65536)
def _intern_hentry(pw, w) -> HistoryEntry:
    """Shared history entries per (pw, w) -- interned members make the
    cache key hash cheap, and histories repeat entries across acks."""
    return HistoryEntry(pw=pw, w=w)


@functools.lru_cache(maxsize=65536)
def _intern_tsval(ts: int, wid: int, value) -> TimestampValue:
    """Shared pair instances per decoded contents.

    A frame typically carries the same pair several times (a history
    entry's ``pw`` and its tuple's ``tsval``, the same write echoed by
    several parts); interning makes the copies pointer-equal and their
    lazily cached hashes shared, like on the in-memory transport.
    """
    return TimestampValue(ts, value, wid=wid)


_S_U32 = struct.Struct("<I")


def _w_str(buf: bytearray, s: str, strings: Dict[str, int]) -> None:
    index = strings.get(s)
    if index is None:
        if len(strings) < 0x10000:
            # References are u16-addressed; beyond 65536 distinct
            # strings further first-occurrences simply stay inline.
            # (The decoder's table may grow larger, but only the first
            # 65536 positions -- identical on both sides -- are ever
            # referenced.)
            strings[s] = len(strings)
        raw = s.encode("utf-8")
        buf.append(_STR_NEW)
        buf += _S_U32.pack(len(raw))
        buf += raw
    elif index < _STR_REF16:
        buf.append(index)
    else:
        buf.append(_STR_REF16)
        buf += _S_U16.pack(index)


def _r_str(data, pos: int, strings: List[str]) -> Tuple[str, int]:
    try:
        tag = data[pos]
        if tag < _STR_REF16:
            return strings[tag], pos + 1
        if tag == _STR_REF16:
            index = data[pos + 1] | (data[pos + 2] << 8)
            return strings[index], pos + 3
        (length,) = _S_U32.unpack_from(data, pos + 1)
        end = pos + 5 + length
        raw = data[pos + 5:end]
        if len(raw) != length:
            raise TransportError("truncated binary frame")
        # bytes(raw) is identity for bytes input, a copy for memoryview
        # slices (which have no .decode).
        text = bytes(raw).decode("utf-8")
        strings.append(text)
        return text, end
    except IndexError:
        raise TransportError("truncated binary frame") from None
    except struct.error:
        raise TransportError("truncated binary frame") from None
    except UnicodeDecodeError as exc:
        raise TransportError(f"malformed string: {exc}") from exc


def _w_tsr(buf: bytearray, arr: TsrArray) -> None:
    num_objects = arr.num_objects
    num_readers = arr.num_readers
    buf += _S_TSR_HDR.pack(num_objects, num_readers)
    cells = [-1 if cell is None else cell
             for row in arr for cell in row]
    buf += _cells_struct(len(cells)).pack(*cells)


def _r_tsr(data, pos: int) -> Tuple[TsrArray, int]:
    try:
        num_objects, num_readers = _S_TSR_HDR.unpack_from(data, pos)
    except struct.error:
        raise TransportError("truncated binary frame") from None
    pos += 4
    count = num_objects * num_readers
    if count > 1 << 20:
        raise TransportError("tsr array implausibly large")
    codec = _cells_struct(count)
    try:
        cells = codec.unpack_from(data, pos)
    except struct.error:
        raise TransportError("truncated binary frame") from None
    pos += codec.size
    if not cells or max(cells) < 0:
        # every cell nil: the initial array, shared per shape
        return _empty_tsr(num_objects, num_readers), pos
    rows = tuple(
        tuple(None if cell < 0 else cell
              for cell in cells[base:base + num_readers])
        for base in range(0, count, num_readers))
    return TsrArray(rows), pos


_S_TSVAL_TAG = struct.Struct("<qIB")   # ts, wid, value tag
_S_TSVAL_INT = struct.Struct("<qIBq")  # ts, wid, VAL_INT, value


def _w_tsval(buf: bytearray, tsval: TimestampValue,
             strings: Dict[str, int]) -> None:
    # The value tag rides in the same pack as the pair header; string
    # and int64 payloads (the overwhelming majority) take one pack call.
    value = tsval.value
    kind = value.__class__
    if kind is str:
        buf += _S_TSVAL_TAG.pack(tsval.ts, tsval.wid, _VAL_STR)
        _w_str(buf, value, strings)
    elif kind is int and _INT64_MIN <= value <= _INT64_MAX:
        # (bool never hits this branch: its __class__ is bool, not int)
        buf += _S_TSVAL_INT.pack(tsval.ts, tsval.wid, _VAL_INT, value)
    elif kind is _Bottom:
        buf += _S_TSVAL_TAG.pack(tsval.ts, tsval.wid, _VAL_BOTTOM)
    else:
        buf += _S_TSVAL.pack(tsval.ts, tsval.wid)
        _w_value(buf, value, strings)


def _r_tsval(data, pos: int,
             strings: List[str]) -> Tuple[TimestampValue, int]:
    try:
        ts, wid, tag = _S_TSVAL_TAG.unpack_from(data, pos)
    except struct.error:
        raise TransportError("truncated binary frame") from None
    pos += 13
    if tag == _VAL_STR:
        value, pos = _r_str(data, pos, strings)
        if len(value) > _CACHE_VALUE_LIMIT:
            # Large payloads are not worth pinning in the intern cache.
            try:
                return TimestampValue(ts, value, wid=wid), pos
            except ValueError as exc:
                raise TransportError(f"malformed pair: {exc}") from exc
    elif tag == _VAL_INT:
        try:
            (value,) = _S_I64.unpack_from(data, pos)
        except struct.error:
            raise TransportError("truncated binary frame") from None
        pos += 8
    elif tag == _VAL_BOTTOM:
        if ts == 0 and wid == 0:
            return INITIAL_TSVAL, pos
        value = BOTTOM
    else:
        value, pos = _r_value_body(tag, data, pos, strings)
        try:
            return TimestampValue(ts, value, wid=wid), pos
        except ValueError as exc:
            raise TransportError(f"malformed pair: {exc}") from exc
    try:
        return _intern_tsval(ts, wid, value), pos
    except ValueError as exc:
        raise TransportError(f"malformed pair: {exc}") from exc


#: Value types whose encodings can never touch the string table --
#: nested containers (pairs, tuples, entries) are excluded because they
#: may hold strings at any depth.
_STRING_FREE_SCALARS = frozenset((int, float, bool, bytes, _Bottom,
                                  type(None)))


@functools.lru_cache(maxsize=4096)
def _wtuple_bytes(w: WriteTuple) -> bytes:
    """Encoded body of a write tuple with a string-free scalar value.

    Such encodings never touch the frame's string table, so they are
    context-independent and cacheable -- and the single hottest case,
    the previous-write tuple piggybacked on every PW frame, is interned
    and hits this cache by identity."""
    buf = bytearray()
    _w_tsval(buf, w.tsval, {})
    _w_tsr(buf, w.tsrarray)
    return bytes(buf)


#: Payloads above this size are never pinned by the codec's caches --
#: the hot-path win is for small control values, and caching a large
#: blob would retain a full second copy for the process lifetime.
_CACHE_VALUE_LIMIT = 1024


def _cacheable_value(value: Any) -> bool:
    kind = value.__class__
    if kind not in _STRING_FREE_SCALARS:
        return False
    return kind is not bytes or len(value) <= _CACHE_VALUE_LIMIT


def _w_wtuple(buf: bytearray, w: WriteTuple,
              strings: Dict[str, int]) -> None:
    if _cacheable_value(w.tsval.value):
        buf += _wtuple_bytes(w)
        return
    _w_tsval(buf, w.tsval, strings)
    _w_tsr(buf, w.tsrarray)


def _r_wtuple(data, pos: int,
              strings: List[str]) -> Tuple[WriteTuple, int]:
    tsval, pos = _r_tsval(data, pos, strings)
    arr, pos = _r_tsr(data, pos)
    value = tsval.value
    if value.__class__ in (str, bytes) \
            and len(value) > _CACHE_VALUE_LIMIT:
        return WriteTuple(tsval, arr), pos  # don't pin large payloads
    return intern_write_tuple(tsval, arr), pos


def _w_hentry_body(buf: bytearray, entry: HistoryEntry,
                   strings: Dict[str, int]) -> None:
    """flags byte + payload of one history entry (shared by the
    history-ack encoder and the generic value encoder)."""
    pw = entry.pw
    w = entry.w
    if w is not None and pw is not None and (pw is w.tsval
                                             or pw == w.tsval):
        # Complete entries almost always repeat the tuple's own pair as
        # ``pw`` (the W round installs exactly that); flag 4 ships the
        # tuple once and reconstructs ``pw`` from it.
        buf.append(4)
        _w_wtuple(buf, w, strings)
        return
    buf.append((1 if pw is not None else 0)
               | (2 if w is not None else 0))
    if pw is not None:
        _w_tsval(buf, pw, strings)
    if w is not None:
        _w_wtuple(buf, w, strings)


def _w_hentry(buf: bytearray, tag: WriterTag, entry: HistoryEntry,
              strings: Dict[str, int]) -> None:
    buf += _S_TAG.pack(tag[0], tag[1])
    _w_hentry_body(buf, entry, strings)


def _w_value(buf: bytearray, value: Any, strings: Dict[str, int]) -> None:
    if value is None:
        buf.append(_VAL_NONE)
    elif value is True:
        buf.append(_VAL_TRUE)
    elif value is False:
        buf.append(_VAL_FALSE)
    else:
        kind = value.__class__
        if kind is str:
            buf.append(_VAL_STR)
            _w_str(buf, value, strings)
        elif kind is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                buf.append(_VAL_INT)
                buf += _S_I64.pack(value)
            else:
                raw = str(value).encode("ascii")
                buf.append(_VAL_BIGINT)
                buf += _S_U16.pack(len(raw))
                buf += raw
        elif kind is float:
            buf.append(_VAL_FLOAT)
            buf += _S_F64.pack(value)
        elif isinstance(value, TimestampValue):
            buf.append(_VAL_TSVAL)
            _w_tsval(buf, value, strings)
        elif isinstance(value, WriteTuple):
            buf.append(_VAL_WTUPLE)
            _w_wtuple(buf, value, strings)
        elif kind is TsrArray:
            buf.append(_VAL_TSR)
            _w_tsr(buf, value)
        elif isinstance(value, HistoryEntry):
            buf.append(_VAL_HENTRY)
            _w_hentry_body(buf, value, strings)
        elif kind is _Bottom:
            buf.append(_VAL_BOTTOM)
        elif isinstance(value, (bytes, bytearray)):
            buf.append(_VAL_BYTES)
            buf += _S_U32.pack(len(value))
            buf += value
        elif isinstance(value, int):
            _w_value(buf, int(value), strings)
        elif isinstance(value, str):
            buf.append(_VAL_STR)
            _w_str(buf, str(value), strings)
        else:
            raise TransportError(
                f"value of type {type(value).__name__} is not "
                f"wire-encodable")


def _r_value(data, pos: int, strings: List[str]) -> Tuple[Any, int]:
    try:
        tag = data[pos]
    except IndexError:
        raise TransportError("truncated binary frame") from None
    return _r_value_body(tag, data, pos + 1, strings)


def _r_value_body(tag: int, data, pos: int,
                  strings: List[str]) -> Tuple[Any, int]:
    if tag == _VAL_STR:
        return _r_str(data, pos, strings)
    if tag == _VAL_INT:
        try:
            return _S_I64.unpack_from(data, pos)[0], pos + 8
        except struct.error:
            raise TransportError("truncated binary frame") from None
    if tag == _VAL_NONE:
        return None, pos
    if tag == _VAL_TRUE:
        return True, pos
    if tag == _VAL_FALSE:
        return False, pos
    if tag == _VAL_BOTTOM:
        return BOTTOM, pos
    if tag == _VAL_FLOAT:
        try:
            return _S_F64.unpack_from(data, pos)[0], pos + 8
        except struct.error:
            raise TransportError("truncated binary frame") from None
    if tag == _VAL_TSVAL:
        return _r_tsval(data, pos, strings)
    if tag == _VAL_TSR:
        return _r_tsr(data, pos)
    if tag == _VAL_WTUPLE:
        return _r_wtuple(data, pos, strings)
    if tag == _VAL_HENTRY:
        try:
            flags = data[pos]
        except IndexError:
            raise TransportError("truncated binary frame") from None
        pos += 1
        if flags == 4:
            w, pos = _r_wtuple(data, pos, strings)
            return _intern_hentry(w.tsval, w), pos
        pw = w = None
        if flags & 1:
            pw, pos = _r_tsval(data, pos, strings)
        if flags & 2:
            w, pos = _r_wtuple(data, pos, strings)
        return _intern_hentry(pw, w), pos
    if tag == _VAL_BIGINT:
        try:
            (length,) = _S_U16.unpack_from(data, pos)
        except struct.error:
            raise TransportError("truncated binary frame") from None
        raw = bytes(data[pos + 2:pos + 2 + length])
        if len(raw) != length:
            raise TransportError("truncated binary frame")
        try:
            return int(raw), pos + 2 + length
        except ValueError as exc:
            raise TransportError(f"malformed bigint: {exc}") from exc
    if tag == _VAL_BYTES:
        try:
            (length,) = _S_U32.unpack_from(data, pos)
        except struct.error:
            raise TransportError("truncated binary frame") from None
        raw = bytes(data[pos + 4:pos + 4 + length])
        if len(raw) != length:
            raise TransportError("truncated binary frame")
        return raw, pos + 4 + length
    raise TransportError(f"unknown binary value tag {tag}")


# -- message-level binary codecs --------------------------------------------

# kind bytes (stable wire identifiers; extensions register their own,
# 64 and above)
_BK_PW = 1
_BK_W = 2
_BK_PWACK = 3
_BK_WRITEACK = 4
_BK_TAGQUERY = 5
_BK_TAGQUERYACK = 6
_BK_EPOCHFENCE = 7
_BK_EPOCHFENCEACK = 8
_BK_WRITEFENCED = 9
_BK_READREQUEST = 10
_BK_READACK = 11
_BK_HISTORYREADACK = 12
_BK_BATCH = 13
_BK_LEASEPROBE = 14
_BK_LEASEPROBEACK = 15

_S_PW = struct.Struct("<qI")            # ts, wid
_S_PWACK = struct.Struct("<qII")        # ts, wid, object_index
_S_TAGQACK = struct.Struct("<qIqI")     # nonce, object_index, epoch, wid
_S_FENCE = struct.Struct("<qqB")        # nonce, epoch, flags
_S_FENCEACK = struct.Struct("<qIq")     # nonce, object_index, epoch
_S_WFENCED = struct.Struct("<IqqIq")    # oi, epoch, fence, wid, nonce
_S_READREQ = struct.Struct("<BqIqI")    # k, tsr, j, from_epoch+1, from_wid
_S_READACK = struct.Struct("<BqI")      # k, tsr, object_index
_S_HISTACK = struct.Struct("<BqII")     # k, tsr, object_index, |history|
_S_LEASE = struct.Struct("<qqII")       # nonce, epoch, wid, reader_index
_S_LEASEACK = struct.Struct("<qIqIB")   # nonce, oi, epoch, wid, flags

_BIN_ENCODERS: Dict[type, Callable[[bytearray, Any, Dict[str, int]],
                                   None]] = {}
_BIN_DECODERS: Dict[int, Callable[[Any, int, List[str]],
                                  Tuple[Any, int]]] = {}
_BIN_KINDS: Dict[type, int] = {}


def register_binary_codec(
        message_type: type, kind_byte: int,
        encoder: Callable[[bytearray, Any, Dict[str, int]], None],
        decoder: Callable[[Any, int, List[str]], Tuple[Any, int]]) -> None:
    """Extension point mirroring :func:`register_codec` for the binary
    format.  ``encoder(buf, message, strings)`` appends the message body
    (everything after the kind byte); ``decoder(data, pos, strings)``
    reads it back and returns ``(message, new_pos)``.  Kind bytes below
    64 are reserved for the core vocabulary."""
    bound = _BIN_KINDS.get(message_type)
    if _BIN_DECODERS.get(kind_byte) is not None and bound != kind_byte:
        raise TransportError(
            f"binary kind byte {kind_byte} is already registered")
    _BIN_ENCODERS[message_type] = encoder
    _BIN_DECODERS[kind_byte] = decoder
    _BIN_KINDS[message_type] = kind_byte


def _unpack(codec: struct.Struct, data, pos: int) -> tuple:
    try:
        return codec.unpack_from(data, pos)
    except struct.error:
        raise TransportError("truncated binary frame") from None


def _enc_pw(buf: bytearray, m: Pw, strings: Dict[str, int]) -> None:
    buf += _S_PW.pack(m.ts, m.wid)
    _w_str(buf, m.register_id, strings)
    _w_tsval(buf, m.pw, strings)
    _w_wtuple(buf, m.w, strings)


def _dec_pw(data, pos: int, strings: List[str]) -> Tuple[Pw, int]:
    ts, wid = _unpack(_S_PW, data, pos)
    register_id, pos = _r_str(data, pos + 12, strings)
    pw, pos = _r_tsval(data, pos, strings)
    w, pos = _r_wtuple(data, pos, strings)
    return Pw(ts=ts, pw=pw, w=w, register_id=register_id, wid=wid), pos


def _dec_w(data, pos: int, strings: List[str]) -> Tuple[W, int]:
    ts, wid = _unpack(_S_PW, data, pos)
    register_id, pos = _r_str(data, pos + 12, strings)
    pw, pos = _r_tsval(data, pos, strings)
    w, pos = _r_wtuple(data, pos, strings)
    return W(ts=ts, pw=pw, w=w, register_id=register_id, wid=wid), pos


_S_PWACK_HDR = struct.Struct("<qIIH")   # ts, wid, object_index, |tsr|
_S_PWACK_1 = struct.Struct("<qIIHq")    # single-reader fast path


def _enc_pwack(buf: bytearray, m: PwAck, strings: Dict[str, int]) -> None:
    tsr = m.tsr
    if len(tsr) == 1:
        cell = tsr[0]
        buf += _S_PWACK_1.pack(m.ts, m.wid, m.object_index, 1,
                               -1 if cell is None else cell)
    else:
        buf += _S_PWACK_HDR.pack(m.ts, m.wid, m.object_index, len(tsr))
        cells = [-1 if cell is None else cell for cell in tsr]
        buf += _cells_struct(len(cells)).pack(*cells)
    _w_str(buf, m.register_id, strings)


def _dec_pwack(data, pos: int, strings: List[str]) -> Tuple[PwAck, int]:
    try:
        ts, wid, object_index, count = _S_PWACK_HDR.unpack_from(data, pos)
        pos += 18
        if count == 1:
            (cell,) = _S_I64.unpack_from(data, pos)
            pos += 8
            tsr: tuple = ((None if cell < 0 else cell),)
        else:
            codec = _cells_struct(count)
            cells = codec.unpack_from(data, pos)
            pos += codec.size
            tsr = tuple(None if cell < 0 else cell for cell in cells)
    except struct.error:
        raise TransportError("truncated binary frame") from None
    register_id, pos = _r_str(data, pos, strings)
    return PwAck(ts=ts, object_index=object_index, tsr=tsr,
                 register_id=register_id, wid=wid), pos


def _enc_writeack(buf: bytearray, m: WriteAck,
                  strings: Dict[str, int]) -> None:
    buf += _S_PWACK.pack(m.ts, m.wid, m.object_index)
    _w_str(buf, m.register_id, strings)


def _dec_writeack(data, pos: int,
                  strings: List[str]) -> Tuple[WriteAck, int]:
    ts, wid, object_index = _unpack(_S_PWACK, data, pos)
    register_id, pos = _r_str(data, pos + 16, strings)
    return WriteAck(ts=ts, object_index=object_index,
                    register_id=register_id, wid=wid), pos


def _enc_tagquery(buf: bytearray, m: TagQuery,
                  strings: Dict[str, int]) -> None:
    buf += _S_I64.pack(m.nonce)
    _w_str(buf, m.register_id, strings)


def _dec_tagquery(data, pos: int,
                  strings: List[str]) -> Tuple[TagQuery, int]:
    (nonce,) = _unpack(_S_I64, data, pos)
    register_id, pos = _r_str(data, pos + 8, strings)
    return TagQuery(nonce=nonce, register_id=register_id), pos


def _enc_tagqueryack(buf: bytearray, m: TagQueryAck,
                     strings: Dict[str, int]) -> None:
    buf += _S_TAGQACK.pack(m.nonce, m.object_index, m.epoch, m.wid)
    _w_str(buf, m.register_id, strings)


def _dec_tagqueryack(data, pos: int,
                     strings: List[str]) -> Tuple[TagQueryAck, int]:
    nonce, object_index, epoch, wid = _unpack(_S_TAGQACK, data, pos)
    register_id, pos = _r_str(data, pos + 24, strings)
    return TagQueryAck(nonce=nonce, object_index=object_index,
                       epoch=epoch, wid=wid,
                       register_id=register_id), pos


def _enc_leaseprobe(buf: bytearray, m: LeaseProbe,
                    strings: Dict[str, int]) -> None:
    buf += _S_LEASE.pack(m.nonce, m.epoch, m.wid, m.reader_index)
    _w_str(buf, m.register_id, strings)


def _dec_leaseprobe(data, pos: int,
                    strings: List[str]) -> Tuple[LeaseProbe, int]:
    nonce, epoch, wid, reader_index = _unpack(_S_LEASE, data, pos)
    register_id, pos = _r_str(data, pos + 24, strings)
    return LeaseProbe(nonce=nonce, epoch=epoch, reader_index=reader_index,
                      wid=wid, register_id=register_id), pos


def _enc_leaseprobeack(buf: bytearray, m: LeaseProbeAck,
                       strings: Dict[str, int]) -> None:
    buf += _S_LEASEACK.pack(m.nonce, m.object_index, m.epoch, m.wid,
                            (1 if m.holds else 0)
                            | (2 if m.fenced else 0))
    _w_str(buf, m.register_id, strings)


def _dec_leaseprobeack(data, pos: int,
                       strings: List[str]) -> Tuple[LeaseProbeAck, int]:
    nonce, object_index, epoch, wid, flags = _unpack(_S_LEASEACK, data, pos)
    register_id, pos = _r_str(data, pos + 25, strings)
    return LeaseProbeAck(nonce=nonce, object_index=object_index,
                         epoch=epoch, wid=wid,
                         holds=bool(flags & 1), fenced=bool(flags & 2),
                         register_id=register_id), pos


def _enc_epochfence(buf: bytearray, m: EpochFence,
                    strings: Dict[str, int]) -> None:
    buf += _S_FENCE.pack(m.nonce, m.epoch,
                         (1 if m.hard else 0) | (2 if m.lift else 0))
    _w_str(buf, m.register_id, strings)


def _dec_epochfence(data, pos: int,
                    strings: List[str]) -> Tuple[EpochFence, int]:
    nonce, epoch, flags = _unpack(_S_FENCE, data, pos)
    register_id, pos = _r_str(data, pos + 17, strings)
    return EpochFence(nonce=nonce, epoch=epoch, register_id=register_id,
                      hard=bool(flags & 1), lift=bool(flags & 2)), pos


def _enc_epochfenceack(buf: bytearray, m: EpochFenceAck,
                       strings: Dict[str, int]) -> None:
    buf += _S_FENCEACK.pack(m.nonce, m.object_index, m.epoch)
    _w_str(buf, m.register_id, strings)


def _dec_epochfenceack(data, pos: int,
                       strings: List[str]) -> Tuple[EpochFenceAck, int]:
    nonce, object_index, epoch = _unpack(_S_FENCEACK, data, pos)
    register_id, pos = _r_str(data, pos + 20, strings)
    return EpochFenceAck(nonce=nonce, object_index=object_index,
                         epoch=epoch, register_id=register_id), pos


def _enc_writefenced(buf: bytearray, m: WriteFenced,
                     strings: Dict[str, int]) -> None:
    buf += _S_WFENCED.pack(m.object_index, m.epoch, m.fence_epoch,
                           m.wid, m.nonce)
    _w_str(buf, m.register_id, strings)


def _dec_writefenced(data, pos: int,
                     strings: List[str]) -> Tuple[WriteFenced, int]:
    object_index, epoch, fence_epoch, wid, nonce = \
        _unpack(_S_WFENCED, data, pos)
    register_id, pos = _r_str(data, pos + 32, strings)
    return WriteFenced(object_index=object_index, epoch=epoch,
                       fence_epoch=fence_epoch, wid=wid, nonce=nonce,
                       register_id=register_id), pos


def _enc_readrequest(buf: bytearray, m: ReadRequest,
                     strings: Dict[str, int]) -> None:
    from_ts = m.from_ts
    if from_ts is None:
        # epoch shifted by one so 0 keeps meaning "no suffix request"
        buf += _S_READREQ.pack(m.round_index, m.tsr, m.reader_index, 0, 0)
    else:
        buf += _S_READREQ.pack(m.round_index, m.tsr, m.reader_index,
                               from_ts.epoch + 1, from_ts.writer_id)
    _w_str(buf, m.register_id, strings)


def _dec_readrequest(data, pos: int,
                     strings: List[str]) -> Tuple[ReadRequest, int]:
    round_index, tsr, reader_index, from_epoch_plus_one, from_wid = \
        _unpack(_S_READREQ, data, pos)
    register_id, pos = _r_str(data, pos + 25, strings)
    from_ts = (None if not from_epoch_plus_one
               else WriterTag(from_epoch_plus_one - 1, from_wid))
    return ReadRequest(round_index=round_index, tsr=tsr,
                       reader_index=reader_index, from_ts=from_ts,
                       register_id=register_id), pos


def _enc_readack(buf: bytearray, m: ReadAck,
                 strings: Dict[str, int]) -> None:
    buf += _S_READACK.pack(m.round_index, m.tsr, m.object_index)
    _w_str(buf, m.register_id, strings)
    _w_tsval(buf, m.pw, strings)
    _w_wtuple(buf, m.w, strings)


def _dec_readack(data, pos: int,
                 strings: List[str]) -> Tuple[ReadAck, int]:
    round_index, tsr, object_index = _unpack(_S_READACK, data, pos)
    register_id, pos = _r_str(data, pos + 13, strings)
    pw, pos = _r_tsval(data, pos, strings)
    w, pos = _r_wtuple(data, pos, strings)
    return ReadAck(round_index=round_index, tsr=tsr,
                   object_index=object_index, pw=pw, w=w,
                   register_id=register_id), pos


def _enc_historyreadack(buf: bytearray, m: HistoryReadAck,
                        strings: Dict[str, int]) -> None:
    history = m.history
    buf += _S_HISTACK.pack(m.round_index, m.tsr, m.object_index,
                           len(history))
    _w_str(buf, m.register_id, strings)
    for tag, entry in history.items():
        _w_hentry(buf, tag, entry, strings)


def _dec_historyreadack(data, pos: int,
                        strings: List[str]) -> Tuple[HistoryReadAck, int]:
    round_index, tsr, object_index, count = _unpack(_S_HISTACK, data, pos)
    if count > 1 << 24:
        raise TransportError("history implausibly large")
    register_id, pos = _r_str(data, pos + 17, strings)
    history = {}
    unpack_entry = _S_HENTRY.unpack_from
    try:
        for _ in range(count):
            epoch, wid, flags = unpack_entry(data, pos)
            pos += 13
            if flags == 4:
                w, pos = _r_wtuple(data, pos, strings)
                entry = _intern_hentry(w.tsval, w)
            else:
                pw = w = None
                if flags & 1:
                    pw, pos = _r_tsval(data, pos, strings)
                if flags & 2:
                    w, pos = _r_wtuple(data, pos, strings)
                entry = _intern_hentry(pw, w)
            history[WriterTag(epoch, wid)] = entry
    except struct.error:
        raise TransportError("truncated binary frame") from None
    return HistoryReadAck.from_tagged(
        round_index=round_index, tsr=tsr, object_index=object_index,
        history=history, register_id=register_id), pos


def _enc_batch(buf: bytearray, m: Batch, strings: Dict[str, int]) -> None:
    buf += _S_U32.pack(len(m.messages))
    encoders = _BIN_ENCODERS
    kinds = _BIN_KINDS
    for part in m.messages:
        part_type = type(part)
        encoder = encoders.get(part_type)
        if encoder is None:
            raise TransportError(
                f"no binary codec registered for {part_type.__name__}")
        buf.append(kinds[part_type])
        encoder(buf, part, strings)


def _dec_batch(data, pos: int, strings: List[str]) -> Tuple[Batch, int]:
    (count,) = _unpack(_S_U32, data, pos)
    pos += 4
    if count > 1 << 20:
        raise TransportError("batch implausibly large")
    decoders = _BIN_DECODERS
    parts = []
    append = parts.append
    last_kind = -1
    decoder = None
    for _ in range(count):
        try:
            kind = data[pos]
        except IndexError:
            raise TransportError("truncated binary frame") from None
        if kind != last_kind:
            decoder = decoders.get(kind)
            if decoder is None:
                raise TransportError(
                    f"no binary codec for kind byte {kind}")
            last_kind = kind
        part, pos = decoder(data, pos + 1, strings)
        append(part)
    try:
        return Batch(messages=tuple(parts)), pos
    except ValueError as exc:  # nested batches
        raise TransportError(str(exc)) from exc


for _mtype, _kind, _enc, _dec in (
        (Pw, _BK_PW, _enc_pw, _dec_pw),
        (W, _BK_W, _enc_pw, _dec_w),  # same field layout as Pw
        (PwAck, _BK_PWACK, _enc_pwack, _dec_pwack),
        (WriteAck, _BK_WRITEACK, _enc_writeack, _dec_writeack),
        (TagQuery, _BK_TAGQUERY, _enc_tagquery, _dec_tagquery),
        (TagQueryAck, _BK_TAGQUERYACK, _enc_tagqueryack, _dec_tagqueryack),
        (EpochFence, _BK_EPOCHFENCE, _enc_epochfence, _dec_epochfence),
        (EpochFenceAck, _BK_EPOCHFENCEACK, _enc_epochfenceack,
         _dec_epochfenceack),
        (WriteFenced, _BK_WRITEFENCED, _enc_writefenced, _dec_writefenced),
        (ReadRequest, _BK_READREQUEST, _enc_readrequest, _dec_readrequest),
        (ReadAck, _BK_READACK, _enc_readack, _dec_readack),
        (LeaseProbe, _BK_LEASEPROBE, _enc_leaseprobe, _dec_leaseprobe),
        (LeaseProbeAck, _BK_LEASEPROBEACK, _enc_leaseprobeack,
         _dec_leaseprobeack),
        (HistoryReadAck, _BK_HISTORYREADACK, _enc_historyreadack,
         _dec_historyreadack),
        (Batch, _BK_BATCH, _enc_batch, _dec_batch),
):
    register_binary_codec(_mtype, _kind, _enc, _dec)


def _encode_body_binary(buf: bytearray, message: Any,
                        strings: Dict[str, int]) -> None:
    """kind byte + message body, sharing the frame's string table."""
    message_type = type(message)
    encoder = _BIN_ENCODERS.get(message_type)
    if encoder is None:
        raise TransportError(
            f"no binary codec registered for {message_type.__name__}")
    buf.append(_BIN_KINDS[message_type])
    encoder(buf, message, strings)


def _decode_body_binary(data, pos: int,
                        strings: List[str]) -> Tuple[Any, int]:
    try:
        kind = data[pos]
    except IndexError:
        raise TransportError("truncated binary frame") from None
    decoder = _BIN_DECODERS.get(kind)
    if decoder is None:
        raise TransportError(f"no binary codec for kind byte {kind}")
    return decoder(data, pos + 1, strings)


def encode_message_binary(message: Any) -> bytes:
    """One message (or Batch) as a self-identifying binary frame."""
    buf = bytearray()
    buf.append(BINARY_MAGIC)
    _encode_body_binary(buf, message, {})
    return bytes(buf)


def decode_message_binary(wire: Union[bytes, bytearray,
                                      memoryview]) -> Any:
    try:
        magic = wire[0]
    except IndexError:
        raise TransportError("empty binary frame") from None
    if magic != BINARY_MAGIC:
        raise TransportError(f"bad binary frame magic {magic:#x}")
    message, pos = _decode_body_binary(wire, 1, [])
    if pos != len(wire):
        raise TransportError(
            f"{len(wire) - pos} trailing bytes after binary frame")
    return message


def decode_message_auto(wire: Union[str, bytes, bytearray,
                                    memoryview]) -> Any:
    """Decode either wire format, sniffing by the first byte.

    Legacy JSON frames (which always start with ``{``) keep decoding
    forever; binary frames start with :data:`BINARY_MAGIC`.
    """
    if isinstance(wire, str):
        return decode_message(wire)
    if wire[:1] == b"{":
        return decode_message(bytes(wire).decode("utf-8"))
    return decode_message_binary(wire)


def _register_binary_extras() -> None:
    """Binary codecs for the baseline/extension vocabularies (the same
    coverage as :func:`_register_extras`)."""
    from ..baselines.abd.protocol import (AbdQuery, AbdQueryAck, AbdStore,
                                          AbdStoreAck)
    from ..baselines.authenticated.protocol import (AuthQuery, AuthQueryAck,
                                                    AuthStore, AuthStoreAck)
    from ..core.atomic.protocol import WriteBack, WriteBackAck
    from ..crypto_sim import SignedValue

    def enc_abd_store(buf, m, strings):
        buf.append(1 if m.write_back else 0)
        buf += _S_I64.pack(m.nonce)
        _w_str(buf, m.register_id, strings)
        _w_tsval(buf, m.tsval, strings)

    def dec_abd_store(data, pos, strings):
        write_back = bool(data[pos])
        (nonce,) = _unpack(_S_I64, data, pos + 1)
        register_id, pos = _r_str(data, pos + 9, strings)
        tsval, pos = _r_tsval(data, pos, strings)
        return AbdStore(tsval=tsval, nonce=nonce, register_id=register_id,
                        write_back=write_back), pos

    def enc_abd_store_ack(buf, m, strings):
        buf += _S_FENCEACK.pack(m.nonce, 0, m.ts)
        _w_str(buf, m.register_id, strings)

    def dec_abd_store_ack(data, pos, strings):
        nonce, _, ts = _unpack(_S_FENCEACK, data, pos)
        register_id, pos = _r_str(data, pos + 20, strings)
        return AbdStoreAck(nonce=nonce, ts=ts,
                           register_id=register_id), pos

    def enc_nonce_only(buf, m, strings):
        buf += _S_I64.pack(m.nonce)
        _w_str(buf, m.register_id, strings)

    def dec_abd_query(data, pos, strings):
        (nonce,) = _unpack(_S_I64, data, pos)
        register_id, pos = _r_str(data, pos + 8, strings)
        return AbdQuery(nonce=nonce, register_id=register_id), pos

    def enc_abd_query_ack(buf, m, strings):
        buf += _S_I64.pack(m.nonce)
        _w_str(buf, m.register_id, strings)
        _w_value(buf, m.tsval, strings)

    def dec_abd_query_ack(data, pos, strings):
        (nonce,) = _unpack(_S_I64, data, pos)
        register_id, pos = _r_str(data, pos + 8, strings)
        tsval, pos = _r_value(data, pos, strings)
        return AbdQueryAck(nonce=nonce, tsval=tsval,
                           register_id=register_id), pos

    def enc_signed(buf, signed, strings):
        if signed is None:
            buf.append(0)
            return
        buf.append(1)
        _w_value(buf, signed.payload, strings)
        _w_str(buf, signed.key_id, strings)
        _w_value(buf, signed.tag, strings)

    def dec_signed(data, pos, strings):
        present = data[pos]
        pos += 1
        if not present:
            return None, pos
        payload, pos = _r_value(data, pos, strings)
        key_id, pos = _r_str(data, pos, strings)
        tag, pos = _r_value(data, pos, strings)
        return SignedValue(payload=payload, key_id=key_id, tag=tag), pos

    def enc_auth_store(buf, m, strings):
        buf += _S_I64.pack(m.nonce)
        _w_str(buf, m.register_id, strings)
        enc_signed(buf, m.signed, strings)

    def dec_auth_store(data, pos, strings):
        (nonce,) = _unpack(_S_I64, data, pos)
        register_id, pos = _r_str(data, pos + 8, strings)
        signed, pos = dec_signed(data, pos, strings)
        return AuthStore(signed=signed, nonce=nonce,
                         register_id=register_id), pos

    def dec_auth_store_ack(data, pos, strings):
        (nonce,) = _unpack(_S_I64, data, pos)
        register_id, pos = _r_str(data, pos + 8, strings)
        return AuthStoreAck(nonce=nonce, register_id=register_id), pos

    def dec_auth_query(data, pos, strings):
        (nonce,) = _unpack(_S_I64, data, pos)
        register_id, pos = _r_str(data, pos + 8, strings)
        return AuthQuery(nonce=nonce, register_id=register_id), pos

    def dec_auth_query_ack(data, pos, strings):
        (nonce,) = _unpack(_S_I64, data, pos)
        register_id, pos = _r_str(data, pos + 8, strings)
        signed, pos = dec_signed(data, pos, strings)
        return AuthQueryAck(nonce=nonce, signed=signed,
                            register_id=register_id), pos

    def enc_write_back(buf, m, strings):
        buf += _S_FENCEACK.pack(m.nonce, m.reader_index, 0)
        _w_str(buf, m.register_id, strings)
        _w_wtuple(buf, m.c, strings)

    def dec_write_back(data, pos, strings):
        nonce, reader_index, _ = _unpack(_S_FENCEACK, data, pos)
        register_id, pos = _r_str(data, pos + 20, strings)
        c, pos = _r_wtuple(data, pos, strings)
        return WriteBack(c=c, nonce=nonce, reader_index=reader_index,
                         register_id=register_id), pos

    def enc_write_back_ack(buf, m, strings):
        buf += _S_FENCEACK.pack(m.nonce, m.object_index, 0)
        _w_str(buf, m.register_id, strings)

    def dec_write_back_ack(data, pos, strings):
        nonce, object_index, _ = _unpack(_S_FENCEACK, data, pos)
        register_id, pos = _r_str(data, pos + 20, strings)
        return WriteBackAck(nonce=nonce, object_index=object_index,
                            register_id=register_id), pos

    register_binary_codec(AbdStore, 64, enc_abd_store, dec_abd_store)
    register_binary_codec(AbdStoreAck, 65, enc_abd_store_ack,
                          dec_abd_store_ack)
    register_binary_codec(AbdQuery, 66, enc_nonce_only, dec_abd_query)
    register_binary_codec(AbdQueryAck, 67, enc_abd_query_ack,
                          dec_abd_query_ack)
    register_binary_codec(AuthStore, 68, enc_auth_store, dec_auth_store)
    register_binary_codec(AuthStoreAck, 69, enc_nonce_only,
                          dec_auth_store_ack)
    register_binary_codec(AuthQuery, 70, enc_nonce_only, dec_auth_query)
    register_binary_codec(AuthQueryAck, 71, enc_auth_store,
                          dec_auth_query_ack)
    register_binary_codec(WriteBack, 72, enc_write_back, dec_write_back)
    register_binary_codec(WriteBackAck, 73, enc_write_back_ack,
                          dec_write_back_ack)

    from ..sim.server_centric import PushUpdate

    def enc_push_update(buf, m, strings):
        buf += _S_I64.pack(m.object_index)
        _w_value(buf, m.tsval, strings)

    def dec_push_update(data, pos, strings):
        (object_index,) = _unpack(_S_I64, data, pos)
        tsval, pos = _r_value(data, pos + 8, strings)
        return PushUpdate(object_index=object_index, tsval=tsval), pos

    register_binary_codec(PushUpdate, 74, enc_push_update, dec_push_update)


_register_binary_extras()
