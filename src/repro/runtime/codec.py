"""Wire codec: JSON-safe encoding of every protocol message.

The deterministic simulator passes Python objects by reference; the TCP
transport needs real serialization.  The codec is total over the message
vocabulary of :mod:`repro.messages`, the baseline messages, and payload
values that are JSON scalars or ``⊥``.

Encoding is structural and versioned by type tags, so a decoded message is
``==`` to the original (all message types are frozen dataclasses).
"""

from __future__ import annotations

import base64
import json
from typing import Any, Callable, Dict

from ..errors import TransportError
from ..messages import (Batch, EpochFence, EpochFenceAck, HistoryEntry,
                        HistoryReadAck, Pw, PwAck, ReadAck, ReadRequest,
                        TagQuery, TagQueryAck, W, WriteAck, WriteFenced)
from ..types import (BOTTOM, DEFAULT_REGISTER, TimestampValue, TsrArray,
                     WriterTag, WriteTuple, _Bottom, as_tag)


# ---------------------------------------------------------------------------
# value-level codecs
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    if isinstance(value, _Bottom):
        return {"__t": "bottom"}
    if isinstance(value, TimestampValue):
        body = {"__t": "tsval", "ts": value.ts,
                "v": encode_value(value.value)}
        if value.wid:
            # Writer 0 omits the tag so legacy frames stay byte-identical.
            body["wid"] = value.wid
        return body
    if isinstance(value, TsrArray):
        return {"__t": "tsr", "rows": [list(row) for row in value]}
    if isinstance(value, WriteTuple):
        return {"__t": "wtuple", "tsval": encode_value(value.tsval),
                "tsr": encode_value(value.tsrarray)}
    if isinstance(value, HistoryEntry):
        return {"__t": "hentry",
                "pw": None if value.pw is None else encode_value(value.pw),
                "w": None if value.w is None else encode_value(value.w)}
    if isinstance(value, bytes):
        return {"__t": "bytes",
                "b64": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TransportError(
        f"value of type {type(value).__name__} is not wire-encodable")


def decode_value(data: Any) -> Any:
    if not isinstance(data, dict) or "__t" not in data:
        return data
    tag = data["__t"]
    if tag == "bottom":
        return BOTTOM
    if tag == "tsval":
        return TimestampValue(data["ts"], decode_value(data["v"]),
                              wid=data.get("wid", 0))
    if tag == "tsr":
        return TsrArray.from_lists(data["rows"])
    if tag == "wtuple":
        return WriteTuple(decode_value(data["tsval"]),
                          decode_value(data["tsr"]))
    if tag == "hentry":
        return HistoryEntry(
            pw=None if data["pw"] is None else decode_value(data["pw"]),
            w=None if data["w"] is None else decode_value(data["w"]))
    if tag == "bytes":
        return base64.b64decode(data["b64"])
    raise TransportError(f"unknown value tag {tag!r}")


# ---------------------------------------------------------------------------
# message-level codecs
# ---------------------------------------------------------------------------

def _register(d: Dict[str, Any]) -> str:
    """Decode the register tag; absent on pre-multiplexing frames."""
    return d.get("r", DEFAULT_REGISTER)


def _wid(d: Dict[str, Any]) -> int:
    """Decode the writer id; absent on pre-MWMR frames (writer 0)."""
    return d.get("wid", 0)


def _maybe_wid(body: Dict[str, Any], wid: int) -> Dict[str, Any]:
    """Attach a writer id only when nonzero (legacy frames stay stable)."""
    if wid:
        body["wid"] = wid
    return body


def _encode_tag_key(tag: WriterTag) -> str:
    """History keys: ``"epoch"`` for writer 0 (legacy), ``"epoch:wid"``."""
    if tag.writer_id:
        return f"{tag.epoch}:{tag.writer_id}"
    return str(tag.epoch)


def _decode_tag_key(key: str) -> WriterTag:
    epoch, _, wid = key.partition(":")
    return WriterTag(int(epoch), int(wid) if wid else 0)


def _encode_from_ts(from_ts: Any) -> Any:
    """``from_ts``: None, bare epoch (writer 0, legacy) or [epoch, wid]."""
    if from_ts is None:
        return None
    tag = as_tag(from_ts)
    if tag.writer_id == 0:
        return tag.epoch
    return [tag.epoch, tag.writer_id]


def _decode_from_ts(data: Any) -> Any:
    if data is None:
        return None
    return as_tag(data if isinstance(data, int) else tuple(data))


_ENCODERS: Dict[type, Callable[[Any], Dict[str, Any]]] = {
    Pw: lambda m: _maybe_wid(
        {"ts": m.ts, "pw": encode_value(m.pw),
         "w": encode_value(m.w), "r": m.register_id}, m.wid),
    W: lambda m: _maybe_wid(
        {"ts": m.ts, "pw": encode_value(m.pw),
         "w": encode_value(m.w), "r": m.register_id}, m.wid),
    PwAck: lambda m: _maybe_wid(
        {"ts": m.ts, "i": m.object_index,
         "tsr": list(m.tsr), "r": m.register_id}, m.wid),
    WriteAck: lambda m: _maybe_wid(
        {"ts": m.ts, "i": m.object_index, "r": m.register_id}, m.wid),
    TagQuery: lambda m: {"nonce": m.nonce, "r": m.register_id},
    TagQueryAck: lambda m: _maybe_wid(
        {"nonce": m.nonce, "i": m.object_index, "epoch": m.epoch,
         "r": m.register_id}, m.wid),
    EpochFence: lambda m: (
        {"nonce": m.nonce, "epoch": m.epoch, "r": m.register_id,
         **({"hard": True} if m.hard else {}),
         **({"lift": True} if m.lift else {})}),
    EpochFenceAck: lambda m: {"nonce": m.nonce, "i": m.object_index,
                              "epoch": m.epoch, "r": m.register_id},
    WriteFenced: lambda m: _maybe_wid(
        {"i": m.object_index, "epoch": m.epoch, "fence": m.fence_epoch,
         "nonce": m.nonce, "r": m.register_id}, m.wid),
    ReadRequest: lambda m: {"k": m.round_index, "tsr": m.tsr,
                            "j": m.reader_index,
                            "from_ts": _encode_from_ts(m.from_ts),
                            "r": m.register_id},
    ReadAck: lambda m: {"k": m.round_index, "tsr": m.tsr,
                        "i": m.object_index, "pw": encode_value(m.pw),
                        "w": encode_value(m.w), "r": m.register_id},
    HistoryReadAck: lambda m: {
        "k": m.round_index, "tsr": m.tsr, "i": m.object_index,
        "r": m.register_id,
        "h": {_encode_tag_key(tag): encode_value(entry)
              for tag, entry in m.history.items()}},
}

_DECODERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "Pw": lambda d: Pw(ts=d["ts"], pw=decode_value(d["pw"]),
                       w=decode_value(d["w"]), register_id=_register(d),
                       wid=_wid(d)),
    "W": lambda d: W(ts=d["ts"], pw=decode_value(d["pw"]),
                     w=decode_value(d["w"]), register_id=_register(d),
                     wid=_wid(d)),
    "PwAck": lambda d: PwAck(ts=d["ts"], object_index=d["i"],
                             tsr=tuple(d["tsr"]),
                             register_id=_register(d), wid=_wid(d)),
    "WriteAck": lambda d: WriteAck(ts=d["ts"], object_index=d["i"],
                                   register_id=_register(d), wid=_wid(d)),
    "TagQuery": lambda d: TagQuery(nonce=d["nonce"],
                                   register_id=_register(d)),
    "TagQueryAck": lambda d: TagQueryAck(nonce=d["nonce"],
                                         object_index=d["i"],
                                         epoch=d["epoch"], wid=_wid(d),
                                         register_id=_register(d)),
    "EpochFence": lambda d: EpochFence(nonce=d["nonce"], epoch=d["epoch"],
                                       register_id=_register(d),
                                       hard=d.get("hard", False),
                                       lift=d.get("lift", False)),
    "EpochFenceAck": lambda d: EpochFenceAck(nonce=d["nonce"],
                                             object_index=d["i"],
                                             epoch=d["epoch"],
                                             register_id=_register(d)),
    "WriteFenced": lambda d: WriteFenced(object_index=d["i"],
                                         epoch=d["epoch"],
                                         fence_epoch=d["fence"],
                                         wid=_wid(d), nonce=d["nonce"],
                                         register_id=_register(d)),
    "ReadRequest": lambda d: ReadRequest(round_index=d["k"], tsr=d["tsr"],
                                         reader_index=d["j"],
                                         from_ts=_decode_from_ts(
                                             d["from_ts"]),
                                         register_id=_register(d)),
    "ReadAck": lambda d: ReadAck(round_index=d["k"], tsr=d["tsr"],
                                 object_index=d["i"],
                                 pw=decode_value(d["pw"]),
                                 w=decode_value(d["w"]),
                                 register_id=_register(d)),
    "HistoryReadAck": lambda d: HistoryReadAck(
        round_index=d["k"], tsr=d["tsr"], object_index=d["i"],
        register_id=_register(d),
        history={_decode_tag_key(tag): decode_value(entry)
                 for tag, entry in d["h"].items()}),
}


def register_codec(message_type: type,
                   encoder: Callable[[Any], Dict[str, Any]],
                   decoder: Callable[[Dict[str, Any]], Any]) -> None:
    """Extension point for baseline / user-defined message types."""
    _ENCODERS[message_type] = encoder
    _DECODERS[message_type.__name__] = decoder


def _encode_body(message: Any) -> Dict[str, Any]:
    encoder = _ENCODERS.get(type(message))
    if encoder is None:
        raise TransportError(
            f"no codec registered for {type(message).__name__}")
    body = encoder(message)
    body["__kind"] = type(message).__name__
    return body


def _decode_body(body: Dict[str, Any]) -> Any:
    kind = body.pop("__kind", None)
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise TransportError(f"no codec registered for kind {kind!r}")
    return decoder(body)


def encode_message(message: Any) -> str:
    return json.dumps(_encode_body(message), separators=(",", ":"),
                      sort_keys=True)


def decode_message(wire: str) -> Any:
    try:
        body = json.loads(wire)
    except json.JSONDecodeError as exc:
        raise TransportError(f"malformed wire message: {exc}") from exc
    return _decode_body(body)


# A batch's parts are embedded as plain tagged dicts in the one frame --
# not as nested JSON strings, which would re-escape every part -- so
# batching composes with every registered vocabulary at no size penalty.
_ENCODERS[Batch] = lambda m: {
    "parts": [_encode_body(part) for part in m.messages]}
_DECODERS["Batch"] = lambda d: Batch(
    messages=tuple(_decode_body(part) for part in d["parts"]))


# ---------------------------------------------------------------------------
# codecs for the baseline and extension message vocabularies
# ---------------------------------------------------------------------------


def _register_extras() -> None:
    """Register baseline/extension messages so the TCP tier covers every
    protocol in the library, not just the paper's core."""
    from ..baselines.abd.protocol import (AbdQuery, AbdQueryAck, AbdStore,
                                          AbdStoreAck)
    from ..baselines.authenticated.protocol import (AuthQuery, AuthQueryAck,
                                                    AuthStore, AuthStoreAck)
    from ..core.atomic.protocol import WriteBack, WriteBackAck
    from ..crypto_sim import SignedValue

    def encode_abd_store(m):
        body = {"tsval": encode_value(m.tsval), "nonce": m.nonce,
                "r": m.register_id}
        if m.write_back:  # legacy writer frames stay byte-identical
            body["wb"] = True
        return body

    register_codec(
        AbdStore,
        encode_abd_store,
        lambda d: AbdStore(tsval=decode_value(d["tsval"]),
                           nonce=d["nonce"], register_id=_register(d),
                           write_back=d.get("wb", False)))
    register_codec(
        AbdStoreAck,
        lambda m: {"nonce": m.nonce, "ts": m.ts, "r": m.register_id},
        lambda d: AbdStoreAck(nonce=d["nonce"], ts=d["ts"],
                              register_id=_register(d)))
    register_codec(
        AbdQuery,
        lambda m: {"nonce": m.nonce, "r": m.register_id},
        lambda d: AbdQuery(nonce=d["nonce"], register_id=_register(d)))
    register_codec(
        AbdQueryAck,
        lambda m: {"nonce": m.nonce, "tsval": encode_value(m.tsval),
                   "r": m.register_id},
        lambda d: AbdQueryAck(nonce=d["nonce"],
                              tsval=decode_value(d["tsval"]),
                              register_id=_register(d)))

    def encode_signed(signed):
        if signed is None:
            return None
        return {"payload": encode_value(signed.payload),
                "key_id": signed.key_id,
                "tag": encode_value(signed.tag)}

    def decode_signed(data):
        if data is None:
            return None
        return SignedValue(payload=decode_value(data["payload"]),
                           key_id=data["key_id"],
                           tag=decode_value(data["tag"]))

    register_codec(
        AuthStore,
        lambda m: {"signed": encode_signed(m.signed), "nonce": m.nonce,
                   "r": m.register_id},
        lambda d: AuthStore(signed=decode_signed(d["signed"]),
                            nonce=d["nonce"], register_id=_register(d)))
    register_codec(
        AuthStoreAck,
        lambda m: {"nonce": m.nonce, "r": m.register_id},
        lambda d: AuthStoreAck(nonce=d["nonce"],
                               register_id=_register(d)))
    register_codec(
        AuthQuery,
        lambda m: {"nonce": m.nonce, "r": m.register_id},
        lambda d: AuthQuery(nonce=d["nonce"], register_id=_register(d)))
    register_codec(
        AuthQueryAck,
        lambda m: {"nonce": m.nonce, "signed": encode_signed(m.signed),
                   "r": m.register_id},
        lambda d: AuthQueryAck(nonce=d["nonce"],
                               signed=decode_signed(d["signed"]),
                               register_id=_register(d)))

    register_codec(
        WriteBack,
        lambda m: {"c": encode_value(m.c), "nonce": m.nonce,
                   "j": m.reader_index, "r": m.register_id},
        lambda d: WriteBack(c=decode_value(d["c"]), nonce=d["nonce"],
                            reader_index=d["j"],
                            register_id=_register(d)))
    register_codec(
        WriteBackAck,
        lambda m: {"nonce": m.nonce, "i": m.object_index,
                   "r": m.register_id},
        lambda d: WriteBackAck(nonce=d["nonce"], object_index=d["i"],
                               register_id=_register(d)))


_register_extras()
