"""Asyncio storage facade mirroring :class:`repro.system.StorageSystem`.

Runs any :class:`~repro.protocols.StorageProtocol` with real task-level
concurrency::

    async with AsyncStorage(SafeStorageProtocol(),
                            SystemConfig.optimal(t=1, b=1)) as storage:
        await storage.write("v1")
        assert await storage.read() == "v1"

Reads and writes from different clients may be issued concurrently with
``asyncio.gather``; the per-client one-operation-at-a-time rule of the
model is enforced with per-client locks.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from ..automata.base import ObjectAutomaton
from ..config import SystemConfig
from ..errors import TransportError
from ..protocols import StorageProtocol
from ..types import DEFAULT_REGISTER, ProcessId, WRITER, obj, reader
from .hosts import ClientHost, ObjectHost
from .memnet import AsyncNetwork


class AsyncStorage:
    """A protocol instance on the asyncio runtime."""

    def __init__(self, protocol: StorageProtocol, config: SystemConfig,
                 jitter: float = 0.0, seed: int = 0,
                 default_timeout: Optional[float] = 30.0):
        protocol.validate_config(config)
        self.protocol = protocol
        self.config = config
        self.network = AsyncNetwork(jitter=jitter, seed=seed)
        self.default_timeout = default_timeout
        self._object_hosts: List[ObjectHost] = [
            ObjectHost(automaton, self.network)
            for automaton in protocol.make_objects(config)
        ]
        self._states = protocol.client_states(config)
        self.writer_state = self._states.writer()
        self.reader_states = [
            self._states.reader(reader_index=j)
            for j in range(config.num_readers)
        ]
        self._writer_host = ClientHost(WRITER, self.network)
        self._reader_hosts = [ClientHost(reader(j), self.network)
                              for j in range(config.num_readers)]
        self._client_locks: Dict[ProcessId, asyncio.Lock] = {}
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "AsyncStorage":
        if not self._started:
            for host in self._object_hosts:
                host.start()
            self._started = True
        return self

    async def stop(self) -> None:
        for host in self._object_hosts:
            host.stop()
        self._started = False

    async def __aenter__(self) -> "AsyncStorage":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- faults ------------------------------------------------------------
    def crash_object(self, index: int) -> None:
        self.network.crash(obj(index))
        self._object_hosts[index].stop()

    def make_byzantine(self, index: int,
                       automaton: ObjectAutomaton) -> None:
        self._object_hosts[index].stop()
        host = ObjectHost(automaton, self.network)
        self._object_hosts[index] = host
        if self._started:
            host.start()

    # -- operations ------------------------------------------------------------
    def _lock(self, pid: ProcessId) -> asyncio.Lock:
        return self._client_locks.setdefault(pid, asyncio.Lock())

    async def write(self, value: Any,
                    timeout: Optional[float] = None,
                    register_id: str = DEFAULT_REGISTER) -> Any:
        if not self._started:
            raise TransportError("storage not started; use 'async with'")
        operation = self.protocol.make_write_to(
            self._states.writer(register_id), value, register_id)
        async with self._lock(WRITER):
            return await self._writer_host.run(
                operation, timeout or self.default_timeout)

    async def read(self, reader_index: int = 0,
                   timeout: Optional[float] = None,
                   register_id: str = DEFAULT_REGISTER) -> Any:
        if not self._started:
            raise TransportError("storage not started; use 'async with'")
        operation = self.protocol.make_read_from(
            self._states.reader(register_id, reader_index), register_id)
        async with self._lock(reader(reader_index)):
            return await self._reader_hosts[reader_index].run(
                operation, timeout or self.default_timeout)
