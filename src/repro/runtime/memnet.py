"""Asyncio in-memory network: real concurrency, optional random delays.

The simulator proves protocol properties under controlled schedules; the
asyncio runtime demonstrates the same automata under *uncontrolled*
concurrency -- every process is a task, delivery interleavings come from
the event loop, and optional per-message delays shake out ordering
assumptions.  Nothing in the protocol code changes between the two.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..errors import TransportError
from ..types import ProcessId


@dataclass
class AsyncEnvelope:
    sender: ProcessId
    receiver: ProcessId
    payload: Any


class AsyncNetwork:
    """Per-process inboxes with optional seeded jitter and drop rules."""

    def __init__(self, jitter: float = 0.0, seed: int = 0):
        """``jitter``: maximum extra delay (seconds) per message."""
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._inboxes: Dict[ProcessId, "asyncio.Queue[AsyncEnvelope]"] = {}
        self._crashed: Set[ProcessId] = set()
        self._pending: Set[asyncio.Task] = set()
        self.messages_sent = 0

    def register(self, pid: ProcessId) -> "asyncio.Queue[AsyncEnvelope]":
        """Bind ``pid`` to an inbox and return it.

        Re-registering an already-known pid *hands over the existing
        queue* rather than dropping or shadowing it: a replacement host
        for the same process identity (replica repair, Byzantine swap)
        inherits every in-flight message.  Callers must stop the old
        host's pump before starting the replacement's, or two tasks
        would race on one queue.
        """
        inbox = self._inboxes.get(pid)
        if inbox is None:
            inbox = self._inboxes[pid] = asyncio.Queue()
        return inbox

    def inbox(self, pid: ProcessId) -> "asyncio.Queue[AsyncEnvelope]":
        try:
            return self._inboxes[pid]
        except KeyError:
            raise TransportError(f"process {pid!r} is not registered")

    def crash(self, pid: ProcessId) -> None:
        """Messages to a crashed process are silently parked forever."""
        self._crashed.add(pid)

    def restore(self, pid: ProcessId) -> None:
        """Lift a crash: a replacement process receives traffic again.

        Messages sent while the pid was crashed stay dropped (a crashed
        process never saw them); only delivery from now on resumes.
        """
        self._crashed.discard(pid)

    def send(self, sender: ProcessId, receiver: ProcessId,
             payload: Any) -> None:
        self.messages_sent += 1
        if receiver in self._crashed:
            return
        envelope = AsyncEnvelope(sender, receiver, payload)
        if self.jitter <= 0:
            self.inbox(receiver).put_nowait(envelope)
            return
        delay = self._rng.uniform(0, self.jitter)
        task = asyncio.get_running_loop().create_task(
            self._deliver_later(envelope, delay))
        self._pending.add(task)
        task.add_done_callback(self._pending.discard)

    async def _deliver_later(self, envelope: AsyncEnvelope,
                             delay: float) -> None:
        await asyncio.sleep(delay)
        if envelope.receiver not in self._crashed:
            self.inbox(envelope.receiver).put_nowait(envelope)

    async def drain(self) -> None:
        """Wait for all in-flight delayed deliveries (test teardown)."""
        while self._pending:
            await asyncio.gather(*list(self._pending),
                                 return_exceptions=True)
