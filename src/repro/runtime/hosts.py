"""Asyncio hosts: run object automata and client operations as tasks.

Two client-side shapes exist:

* :class:`ClientHost` -- the classic one-operation-at-a-time pump; simple
  and sufficient when a client only ever has one operation in flight.
* :class:`MuxClientHost` -- the multiplexing pump of the service tier: one
  process (one inbox, one task) drives *many* concurrent operations, one
  per register, routing replies by their ``register_id`` and coalescing
  same-step messages to the same object into :class:`~repro.messages.
  Batch` envelopes.  This is what lets one replica set serve thousands of
  registers without per-register hosts or tasks.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..automata.base import (ClientOperation, ObjectAutomaton, Outgoing,
                             Sink, resolve_batch_handler)
from ..errors import BackpressureError, BusyRegisterError, TransportError
from ..messages import Batch, Message, register_of, unbatch
from ..spec.histories import History, READ, WRITE
from ..types import DEFAULT_REGISTER, ProcessId, obj
from .memnet import AsyncNetwork


def fast_batch(messages: Tuple[Message, ...]) -> Batch:
    """A :class:`Batch` from already-vetted protocol messages.

    Callers guarantee every element is a non-batch :class:`Message`, so
    construction skips ``Batch.__post_init__``'s re-scan.
    """
    batch = object.__new__(Batch)
    object.__setattr__(batch, "messages", messages)
    return batch


def as_frame(sink: List[Message]) -> Any:
    """One wire payload for a non-empty reply sink.

    Centralizes the singleton-vs-batch idiom *and* the
    :func:`fast_batch` precondition: sinks only ever collect non-batch
    protocol messages (the batch handlers route anything else to their
    leftovers), so the no-nesting re-scan can be skipped.
    """
    return sink[0] if len(sink) == 1 else fast_batch(tuple(sink))


def coalesce_outgoing(outgoing: Outgoing) -> Outgoing:
    """Group same-step messages per receiver into single Batch envelopes.

    Singleton groups stay unwrapped; order within a batch is send order,
    so receivers observe exactly the unbatched semantics.  (Insertion
    order of the grouping dict preserves first-seen receiver order.)
    """
    if len(outgoing) <= 1:
        return outgoing
    grouped: Dict[ProcessId, List[Any]] = {}
    for receiver, payload in outgoing:
        bucket = grouped.get(receiver)
        if bucket is None:
            bucket = grouped[receiver] = []
        bucket.append(payload)
    result: Outgoing = []
    for receiver, payloads in grouped.items():
        if len(payloads) == 1:
            result.append((receiver, payloads[0]))
        elif all(isinstance(p, Message) and not isinstance(p, Batch)
                 for p in payloads):
            # One pass vets both batchability and the no-nesting rule.
            result.append((receiver, fast_batch(tuple(payloads))))
        else:  # raw probes / nested batches cannot ride in a Batch
            result.extend((receiver, p) for p in payloads)
    return result


class ObjectHost:
    """Runs one :class:`ObjectAutomaton` as an asyncio task.

    Batched envelopes are unwrapped, processed back to back, and the
    replies re-coalesced per destination -- N same-round requests from a
    multiplexed client come back as one ack envelope.

    Constructing a host for an already-registered pid takes over that
    pid's *existing* inbox (see :meth:`AsyncNetwork.register`): replica
    replacement swaps the automaton and the pump task while every
    message already in flight to the object survives the swap.  The
    previous host must be stopped first.
    """

    def __init__(self, automaton: ObjectAutomaton, network: AsyncNetwork):
        self.automaton = automaton
        self.pid = obj(automaton.object_index)
        self.network = network
        self.inbox = network.register(self.pid)
        self._handle_batch = resolve_batch_handler(automaton)
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._loop())

    async def _loop(self) -> None:
        inbox = self.inbox
        handle_batch = self._handle_batch
        send = self.network.send
        pid = self.pid
        while True:
            envelope = await inbox.get()
            # Replies to each client collect in one per-sender sink; the
            # whole sink goes back as a single ack envelope.  Insertion
            # order of the dict preserves first-seen sender order, so
            # receivers observe exactly the unbatched semantics.
            sinks: Dict[ProcessId, Sink] = {}
            leftovers: Outgoing = []
            while True:
                # Drain everything already queued before replying: one
                # wakeup handles a whole burst (e.g. many clients' same
                # round), and the replies coalesce across all of it --
                # fewer envelopes, fewer downstream wakeups.
                sender = envelope.sender
                sink = sinks.get(sender)
                if sink is None:
                    sink = sinks[sender] = []
                leftovers.extend(
                    handle_batch(sender, unbatch(envelope.payload), sink)
                    or [])
                try:
                    envelope = inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
            for sender, sink in sinks.items():
                if sink:
                    send(pid, sender, as_frame(sink))
            if leftovers:
                for receiver, payload in coalesce_outgoing(leftovers):
                    send(pid, receiver, payload)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None


class ClientHost:
    """Drives client operations for one client process, one at a time."""

    def __init__(self, pid: ProcessId, network: AsyncNetwork):
        if not pid.is_client:
            raise TransportError(f"{pid!r} is not a client process")
        self.pid = pid
        self.network = network
        network.register(pid)

    async def run(self, operation: ClientOperation,
                  timeout: Optional[float] = None) -> Any:
        """Invoke ``operation`` and pump replies until it completes."""
        if operation.client_id != self.pid:
            raise TransportError(
                f"operation belongs to {operation.client_id!r}, "
                f"host is {self.pid!r}")
        for receiver, payload in operation.start() or []:
            self.network.send(self.pid, receiver, payload)
        inbox = self.network.inbox(self.pid)

        async def pump() -> Any:
            while not operation.done:
                envelope = await inbox.get()
                for part in unbatch(envelope.payload):
                    outgoing = operation.on_message(envelope.sender, part)
                    for receiver, payload in outgoing or []:
                        self.network.send(self.pid, receiver, payload)
            return operation.result

        if operation.done:  # zero-communication completion
            return operation.result
        if timeout is None:
            return await pump()
        return await asyncio.wait_for(pump(), timeout)


class _VectorGroup:
    """One ``run_many`` batch driven by the vector round engine.

    The group shares a single future across all its operations; the pump
    absorbs inbound parts into the per-register operations and advances
    each touched operation once per burst, so per-register quorum
    conditions are evaluated once over the whole burst's evidence
    instead of once per ack.  Round broadcasts from every member
    collect in one sink and leave as a single :class:`Batch` frame per
    base object -- one vector round per (replica, step).
    """

    __slots__ = ("operations", "num_objects", "future", "remaining",
                 "dirty")

    def __init__(self, operations: List[ClientOperation],
                 num_objects: int, future: "asyncio.Future[List[Any]]"):
        self.operations = operations
        self.num_objects = num_objects
        self.future = future
        self.remaining = len(operations)
        #: operations touched by the current burst, advanced at its end.
        self.dirty: List[ClientOperation] = []


class MuxClientHost:
    """One client process driving concurrent per-register operations.

    A single pump task routes every inbound message to the pending
    operation of the register it addresses; operations on distinct
    registers therefore proceed concurrently over one inbox, one socket
    set, one process identity.  Outgoing message batches are coalesced
    per destination object, and ``run_many`` batches are driven as
    *vector rounds*: one :class:`Batch` frame per (replica, step)
    carrying every member register's payload for that step.
    """

    def __init__(self, pid: ProcessId, network: AsyncNetwork,
                 batching: bool = True,
                 max_pending: Optional[int] = None,
                 history: Optional[History] = None):
        """``max_pending`` caps concurrently pending registers: admission
        beyond the cap raises :class:`~repro.errors.BackpressureError`
        instead of letting thousands of registers starve one inbox.
        ``history`` (shared across the hosts of one store) records every
        operation's invocation/completion for the consistency checkers.
        """
        if not pid.is_client:
            raise TransportError(f"{pid!r} is not a client process")
        if max_pending is not None and max_pending < 1:
            raise TransportError("max_pending must be at least 1")
        self.pid = pid
        self.network = network
        self.batching = batching
        self.max_pending = max_pending
        self.history = history
        network.register(pid)
        self._pending: Dict[str, ClientOperation] = {}
        self._waiters: Dict[str, "asyncio.Future[Any]"] = {}
        #: register id -> the vector group driving that register (if any).
        self._vector: Dict[str, _VectorGroup] = {}
        self._pump_task: Optional[asyncio.Task] = None
        #: fast-read efficacy counters, aggregated from completed reads
        #: (first slice of the observability roadmap item).
        self.fast_reads_taken = 0
        self.fast_read_fallbacks = 0

    # -- lifecycle ----------------------------------------------------------
    def _ensure_pump(self) -> None:
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump())

    def stop(self) -> None:
        """Cancel the pump and fail every blocked waiter.

        Without the eviction a caller awaiting an in-flight operation
        would hang forever once the pump is gone; failing fast with a
        :class:`TransportError` turns a lifecycle bug into a visible
        error at the call site.
        """
        if self._pump_task is not None:
            self._pump_task.cancel()
            self._pump_task = None
        if self._pending or self._vector:
            error = TransportError(
                f"client host {self.pid!r} stopped with operations "
                f"in flight")
            for group in {g for g in self._vector.values()}:
                self._fail_vector(group, error)
            for operation in list(self._pending.values()):
                self._evict(operation, error)

    # -- dispatch -----------------------------------------------------------
    def _dispatch(self, outgoing: Outgoing) -> None:
        if self.batching:
            outgoing = coalesce_outgoing(outgoing)
        for receiver, payload in outgoing:
            self.network.send(self.pid, receiver, payload)

    def _admit(self, operation: ClientOperation,
               record: bool = True) -> "asyncio.Future[Any]":
        if operation.client_id != self.pid:
            raise TransportError(
                f"operation belongs to {operation.client_id!r}, "
                f"host is {self.pid!r}")
        register_id = operation.register_id
        existing = self._pending.get(register_id)
        if existing is not None and not existing.done:
            raise BusyRegisterError(
                f"client {self.pid!r} already has an operation in flight "
                f"on register {register_id!r}")
        if (self.max_pending is not None
                and len(self._pending) >= self.max_pending):
            raise BackpressureError(
                f"client {self.pid!r} has {len(self._pending)} operations "
                f"in flight (cap {self.max_pending}); rejecting "
                f"register {register_id!r}")
        self._pending[register_id] = operation
        future: "asyncio.Future[Any]" = \
            asyncio.get_running_loop().create_future()
        self._waiters[register_id] = future
        if record:
            self._record_invocation(operation)
        return future

    # -- history recording --------------------------------------------------
    def _record_invocation(self, operation: ClientOperation) -> None:
        if self.history is None:
            return
        kind = operation.kind if operation.kind in (READ, WRITE) else READ
        self.history.record_invocation(
            operation_id=operation.operation_id,
            client=self.pid,
            kind=kind,
            argument=getattr(operation, "value", None),
            register=operation.register_id,
        )

    def _record_completion(self, operation: ClientOperation) -> None:
        if getattr(operation, "fast_hit", False):
            self.fast_reads_taken += 1
        elif getattr(operation, "fell_back", False):
            self.fast_read_fallbacks += 1
        if self.history is None:
            return
        if not self.history.has_record(operation.operation_id):
            return  # admitted with record=False (control-plane replay)
        self.history.record_completion(
            operation_id=operation.operation_id,
            result=operation.result,
            rounds_used=operation.rounds_used,
            tag=getattr(operation, "tag", None),
            fast=getattr(operation, "fast_hit", False),
        )

    def _settle(self, register_id: str, operation: ClientOperation) -> None:
        self._pending.pop(register_id, None)
        future = self._waiters.pop(register_id, None)
        if future is not None and not future.done():
            future.set_result(operation.result)
        self._record_completion(operation)

    def _evict(self, operation: ClientOperation,
               error: Optional[BaseException] = None) -> None:
        """Withdraw an operation; fail its waiter if one is blocked."""
        register_id = operation.register_id
        if self._pending.get(register_id) is operation:
            self._pending.pop(register_id, None)
            future = self._waiters.pop(register_id, None)
            if future is not None and not future.done() and error is not None:
                future.set_exception(error)

    # -- vector rounds ------------------------------------------------------
    def _broadcast(self, sink: Sink, num_objects: int) -> None:
        """Send one frame carrying the whole sink to every base object.

        Messages are immutable, so the *same* batch object rides every
        channel -- S sends, zero per-receiver grouping work.
        """
        payload = as_frame(sink)
        send = self.network.send
        pid = self.pid
        for i in range(num_objects):
            send(pid, obj(i), payload)

    def _finish_vector_op(self, group: _VectorGroup,
                          operation: ClientOperation) -> None:
        register_id = operation.register_id
        if self._pending.get(register_id) is operation:
            del self._pending[register_id]
        if self._vector.get(register_id) is group:
            del self._vector[register_id]
        group.remaining -= 1
        self._record_completion(operation)

    def _fail_vector(self, group: _VectorGroup,
                     error: BaseException) -> None:
        """Fail a whole vector batch: the first failure propagates and
        every sibling is withdrawn (matching ``run_many``'s classic
        cancel-siblings semantics)."""
        for operation in group.operations:
            register_id = operation.register_id
            if self._pending.get(register_id) is operation:
                del self._pending[register_id]
            if self._vector.get(register_id) is group:
                del self._vector[register_id]
        if not group.future.done():
            group.future.set_exception(error)

    def _advance_vector(self, group: _VectorGroup) -> None:
        """Advance every operation the burst touched, once, and flush
        the resulting round broadcasts as one frame per object."""
        dirty = group.dirty
        if group.future.done():  # group failed or caller gave up
            for operation in dirty:
                operation._vector_dirty = False
            dirty.clear()
            return
        sink: Sink = []
        leftovers: Outgoing = []
        for operation in dirty:
            operation._vector_dirty = False
            if operation.done:
                continue
            try:
                operation.advance(sink, leftovers)
            except Exception as exc:
                dirty.clear()
                self._fail_vector(group, exc)
                return
            if operation.done:
                self._finish_vector_op(group, operation)
        dirty.clear()
        try:
            if sink:
                self._broadcast(sink, group.num_objects)
            if leftovers:
                self._dispatch(leftovers)
        except Exception as exc:
            self._fail_vector(group, exc)
            return
        if group.remaining == 0 and not group.future.done():
            group.future.set_result(
                [operation.result for operation in group.operations])

    def _admit_vector(self, operation: ClientOperation,
                      group: _VectorGroup) -> None:
        """Admission for one vector member: same busy/backpressure rules
        as :meth:`_admit`, but completion flows through the group future
        instead of a per-register waiter."""
        if operation.client_id != self.pid:
            raise TransportError(
                f"operation belongs to {operation.client_id!r}, "
                f"host is {self.pid!r}")
        register_id = operation.register_id
        existing = self._pending.get(register_id)
        if existing is not None and not existing.done:
            raise BusyRegisterError(
                f"client {self.pid!r} already has an operation in flight "
                f"on register {register_id!r}")
        if (self.max_pending is not None
                and len(self._pending) >= self.max_pending):
            raise BackpressureError(
                f"client {self.pid!r} has {len(self._pending)} operations "
                f"in flight (cap {self.max_pending}); rejecting "
                f"register {register_id!r}")
        self._pending[register_id] = operation
        self._vector[register_id] = group
        operation._vector_dirty = False
        if self.history is not None:
            self._record_invocation(operation)

    async def _run_vector(self, operations: List[ClientOperation],
                          timeout: Optional[float]) -> List[Any]:
        """Drive a batch as vector rounds: one frame per (replica, step)."""
        future: "asyncio.Future[List[Any]]" = \
            asyncio.get_running_loop().create_future()
        group = _VectorGroup(operations,
                             operations[0].config.num_objects, future)
        admitted: List[ClientOperation] = []
        try:
            for operation in operations:
                self._admit_vector(operation, group)
                admitted.append(operation)
        except Exception:
            # Roll back every member this call admitted: their start()
            # never ran, so leaving them pending would brick the
            # registers -- and their invocation records must go too, or
            # the shared history would accumulate phantom forever-pending
            # writes that every later read counts as concurrent.
            for operation in admitted:
                self._pending.pop(operation.register_id, None)
                self._vector.pop(operation.register_id, None)
                if self.history is not None:
                    self.history.discard_invocation(operation.operation_id)
            raise
        try:
            sink: Sink = []
            leftovers: Outgoing = []
            for operation in operations:
                operation.start_vector(sink, leftovers)
                if operation.done:  # zero-communication completion
                    self._finish_vector_op(group, operation)
            if sink:
                self._broadcast(sink, group.num_objects)
            if leftovers:
                self._dispatch(leftovers)
        except BaseException:
            # A failure while launching the first round (a broken
            # start_vector, an undeliverable send) must not strand the
            # admitted members: withdraw them or their registers would
            # refuse all later work with BusyRegisterError.  Their
            # invocation records stay -- the operations were genuinely
            # invoked and lost, exactly as on a pump dispatch failure.
            for operation in operations:
                if not operation.done:
                    register_id = operation.register_id
                    if self._pending.get(register_id) is operation:
                        del self._pending[register_id]
                    if self._vector.get(register_id) is group:
                        del self._vector[register_id]
            raise
        if group.remaining == 0:
            return [operation.result for operation in operations]
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        finally:
            # On timeout, failure or caller cancellation every unfinished
            # member must be withdrawn, or its register would refuse work
            # forever.  Identity-guarded: the register may already carry a
            # later admission.
            for operation in operations:
                if not operation.done:
                    register_id = operation.register_id
                    if self._pending.get(register_id) is operation:
                        del self._pending[register_id]
                    if self._vector.get(register_id) is group:
                        del self._vector[register_id]

    async def _pump(self) -> None:
        inbox = self.network.inbox(self.pid)
        pending = self._pending
        vector = self._vector
        while True:
            envelope = await inbox.get()
            # Aggregate the whole burst's outgoing before dispatching:
            # batched acks (N registers' round-1 replies from several
            # objects, drained in one wakeup) yield N coalesced round-2
            # broadcasts -- S envelopes, not N x S.
            outgoing: Outgoing = []
            settled: List[Tuple[str, ClientOperation]] = []
            touched: List[_VectorGroup] = []
            while True:
                sender = envelope.sender
                for part in unbatch(envelope.payload):
                    # register_of() inlined: this getattr runs once per
                    # inbound part, the hottest line of the service tier.
                    register_id = getattr(part, "register_id",
                                          DEFAULT_REGISTER)
                    operation = pending.get(register_id)
                    if operation is None or operation.done:
                        continue  # stale traffic for a finished operation
                    group = vector.get(register_id)
                    if group is not None:
                        # Vector path: record now, decide at burst end.
                        try:
                            operation.absorb(sender, part)
                        except Exception as exc:
                            self._fail_vector(group, exc)
                            continue
                        if not getattr(operation, "_vector_dirty", False):
                            operation._vector_dirty = True
                            group.dirty.append(operation)
                            if len(group.dirty) == 1:
                                touched.append(group)
                        continue
                    try:
                        outgoing.extend(
                            operation.on_message(sender, part)
                            or [])
                    except Exception as exc:
                        # A broken operation must not kill the pump (it
                        # serves every other register) nor hang its
                        # caller: fail its waiter and drop it.
                        self._evict(operation, exc)
                        continue
                    if operation.done:
                        settled.append((register_id, operation))
                try:
                    envelope = inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
            for group in touched:
                self._advance_vector(group)
            try:
                self._dispatch(outgoing)
            except Exception as exc:
                # Undeliverable sends lose messages for an unknowable subset
                # of operations; failing every blocked waiter beats hanging.
                for operation in list(self._pending.values()):
                    self._evict(operation, exc)
            for register_id, operation in settled:
                self._settle(register_id, operation)

    # -- operations ----------------------------------------------------------
    async def run(self, operation: ClientOperation,
                  timeout: Optional[float] = None,
                  record: bool = True) -> Any:
        """Run one operation; concurrent calls must target distinct registers.

        ``record=False`` keeps the operation out of the shared history:
        control-plane replays re-install values that already have history
        records, and recording the duplicate would distort the checkers'
        write serialization.
        """
        self._ensure_pump()
        future = self._admit(operation, record=record)
        self._dispatch(operation.start() or [])
        if operation.done:  # zero-communication completion
            self._settle(operation.register_id, operation)
            return operation.result
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        finally:
            # On timeout *or* caller cancellation the operation must be
            # withdrawn, or its register would refuse work forever.
            if not operation.done:
                self._pending.pop(operation.register_id, None)
                self._waiters.pop(operation.register_id, None)

    async def run_many(self, operations: Iterable[ClientOperation],
                       timeout: Optional[float] = None) -> List[Any]:
        """Run a batch of same-client operations, one per register.

        Batches ride the *vector round engine*: every round's messages
        leave as one :class:`Batch` frame per base object (R registers
        writing to S objects cost S frames per step, not R x S), inbound
        ack frames are absorbed part by part, and each member operation
        advances once per burst with its quorum conditions evaluated
        over the whole burst's evidence.  Operations that do not expose
        a ``config`` (the broadcast width) fall back to the classic
        per-operation pump with first-round coalescing.
        """
        operations = list(operations)
        self._ensure_pump()
        if self.batching and len(operations) > 1 and operations:
            num_objects = getattr(
                getattr(operations[0], "config", None), "num_objects", None)
            if num_objects is not None and all(
                    getattr(getattr(op, "config", None), "num_objects",
                            None) == num_objects
                    for op in operations):
                return await self._run_vector(operations, timeout)
        futures = []
        try:
            for operation in operations:
                futures.append(self._admit(operation))
        except Exception:
            # Roll back every operation this call admitted: their start()
            # never ran, so leaving them pending would brick the registers
            # -- and their invocation records must go too, or the shared
            # history would accumulate phantom forever-pending writes that
            # every later read counts as concurrent.
            for operation, future in zip(operations, futures):
                self._pending.pop(operation.register_id, None)
                self._waiters.pop(operation.register_id, None)
                future.cancel()
                if self.history is not None:
                    self.history.discard_invocation(operation.operation_id)
            raise
        first_round: Outgoing = []
        for operation in operations:
            first_round.extend(operation.start() or [])
        self._dispatch(first_round)
        for operation in operations:
            if operation.done:
                self._settle(operation.register_id, operation)
        gathered = asyncio.gather(*futures)
        try:
            if timeout is None:
                return await gathered
            return await asyncio.wait_for(gathered, timeout)
        except BaseException:
            # One operation failing (or the batch timing out) must not
            # leave its siblings dangling: cancel every unfinished waiter
            # so their exceptions are consumed and nothing awaits a
            # future the cleanup below is about to orphan.  The first
            # failure propagates to the caller.
            for future in futures:
                if not future.done():
                    future.cancel()
            raise
        finally:
            for operation in operations:
                if not operation.done:
                    self._pending.pop(operation.register_id, None)
                    self._waiters.pop(operation.register_id, None)
