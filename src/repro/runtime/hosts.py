"""Asyncio hosts: run object automata and client operations as tasks."""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from ..automata.base import ClientOperation, ObjectAutomaton
from ..errors import TransportError
from ..types import ProcessId, obj
from .memnet import AsyncNetwork


class ObjectHost:
    """Runs one :class:`ObjectAutomaton` as an asyncio task."""

    def __init__(self, automaton: ObjectAutomaton, network: AsyncNetwork):
        self.automaton = automaton
        self.pid = obj(automaton.object_index)
        self.network = network
        network.register(self.pid)
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._loop())

    async def _loop(self) -> None:
        inbox = self.network.inbox(self.pid)
        while True:
            envelope = await inbox.get()
            replies = self.automaton.on_message(envelope.sender,
                                                envelope.payload)
            for receiver, payload in replies or []:
                self.network.send(self.pid, receiver, payload)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None


class ClientHost:
    """Drives client operations for one client process."""

    def __init__(self, pid: ProcessId, network: AsyncNetwork):
        if not pid.is_client:
            raise TransportError(f"{pid!r} is not a client process")
        self.pid = pid
        self.network = network
        network.register(pid)

    async def run(self, operation: ClientOperation,
                  timeout: Optional[float] = None) -> Any:
        """Invoke ``operation`` and pump replies until it completes."""
        if operation.client_id != self.pid:
            raise TransportError(
                f"operation belongs to {operation.client_id!r}, "
                f"host is {self.pid!r}")
        for receiver, payload in operation.start() or []:
            self.network.send(self.pid, receiver, payload)
        inbox = self.network.inbox(self.pid)

        async def pump() -> Any:
            while not operation.done:
                envelope = await inbox.get()
                outgoing = operation.on_message(envelope.sender,
                                                envelope.payload)
                for receiver, payload in outgoing or []:
                    self.network.send(self.pid, receiver, payload)
            return operation.result

        if operation.done:  # zero-communication completion
            return operation.result
        if timeout is None:
            return await pump()
        return await asyncio.wait_for(pump(), timeout)
