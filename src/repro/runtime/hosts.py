"""Asyncio hosts: run object automata and client operations as tasks.

Two client-side shapes exist:

* :class:`ClientHost` -- the classic one-operation-at-a-time pump; simple
  and sufficient when a client only ever has one operation in flight.
* :class:`MuxClientHost` -- the multiplexing pump of the service tier: one
  process (one inbox, one task) drives *many* concurrent operations, one
  per register, routing replies by their ``register_id`` and coalescing
  same-step messages to the same object into :class:`~repro.messages.
  Batch` envelopes.  This is what lets one replica set serve thousands of
  registers without per-register hosts or tasks.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..automata.base import ClientOperation, ObjectAutomaton, Outgoing
from ..errors import BackpressureError, BusyRegisterError, TransportError
from ..messages import Batch, Message, register_of, unbatch
from ..spec.histories import History, READ, WRITE
from ..types import ProcessId, obj
from .memnet import AsyncNetwork


def coalesce_outgoing(outgoing: Outgoing) -> Outgoing:
    """Group same-step messages per receiver into single Batch envelopes.

    Singleton groups stay unwrapped; order within a batch is send order,
    so receivers observe exactly the unbatched semantics.  (Insertion
    order of the grouping dict preserves first-seen receiver order.)
    """
    if len(outgoing) <= 1:
        return outgoing
    grouped: Dict[ProcessId, List[Any]] = {}
    for receiver, payload in outgoing:
        bucket = grouped.get(receiver)
        if bucket is None:
            bucket = grouped[receiver] = []
        bucket.append(payload)
    result: Outgoing = []
    for receiver, payloads in grouped.items():
        if len(payloads) == 1:
            result.append((receiver, payloads[0]))
        elif all(isinstance(p, Message) and not isinstance(p, Batch)
                 for p in payloads):
            # One pass vets both batchability and the no-nesting rule, so
            # construction can skip Batch.__post_init__'s re-scan.
            batch = object.__new__(Batch)
            object.__setattr__(batch, "messages", tuple(payloads))
            result.append((receiver, batch))
        else:  # raw probes / nested batches cannot ride in a Batch
            result.extend((receiver, p) for p in payloads)
    return result


class ObjectHost:
    """Runs one :class:`ObjectAutomaton` as an asyncio task.

    Batched envelopes are unwrapped, processed back to back, and the
    replies re-coalesced per destination -- N same-round requests from a
    multiplexed client come back as one ack envelope.

    Constructing a host for an already-registered pid takes over that
    pid's *existing* inbox (see :meth:`AsyncNetwork.register`): replica
    replacement swaps the automaton and the pump task while every
    message already in flight to the object survives the swap.  The
    previous host must be stopped first.
    """

    def __init__(self, automaton: ObjectAutomaton, network: AsyncNetwork):
        self.automaton = automaton
        self.pid = obj(automaton.object_index)
        self.network = network
        self.inbox = network.register(self.pid)
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._loop())

    async def _loop(self) -> None:
        inbox = self.inbox
        while True:
            envelope = await inbox.get()
            replies: Outgoing = []
            while True:
                # Drain everything already queued before replying: one
                # wakeup handles a whole burst (e.g. many clients' same
                # round), and the replies re-coalesce across all of it --
                # fewer envelopes, fewer downstream wakeups.
                for part in unbatch(envelope.payload):
                    replies.extend(
                        self.automaton.on_message(envelope.sender, part)
                        or [])
                try:
                    envelope = inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
            for receiver, payload in coalesce_outgoing(replies):
                self.network.send(self.pid, receiver, payload)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None


class ClientHost:
    """Drives client operations for one client process, one at a time."""

    def __init__(self, pid: ProcessId, network: AsyncNetwork):
        if not pid.is_client:
            raise TransportError(f"{pid!r} is not a client process")
        self.pid = pid
        self.network = network
        network.register(pid)

    async def run(self, operation: ClientOperation,
                  timeout: Optional[float] = None) -> Any:
        """Invoke ``operation`` and pump replies until it completes."""
        if operation.client_id != self.pid:
            raise TransportError(
                f"operation belongs to {operation.client_id!r}, "
                f"host is {self.pid!r}")
        for receiver, payload in operation.start() or []:
            self.network.send(self.pid, receiver, payload)
        inbox = self.network.inbox(self.pid)

        async def pump() -> Any:
            while not operation.done:
                envelope = await inbox.get()
                for part in unbatch(envelope.payload):
                    outgoing = operation.on_message(envelope.sender, part)
                    for receiver, payload in outgoing or []:
                        self.network.send(self.pid, receiver, payload)
            return operation.result

        if operation.done:  # zero-communication completion
            return operation.result
        if timeout is None:
            return await pump()
        return await asyncio.wait_for(pump(), timeout)


class MuxClientHost:
    """One client process driving concurrent per-register operations.

    A single pump task routes every inbound message to the pending
    operation of the register it addresses; operations on distinct
    registers therefore proceed concurrently over one inbox, one socket
    set, one process identity.  Outgoing message batches are coalesced
    per destination object.
    """

    def __init__(self, pid: ProcessId, network: AsyncNetwork,
                 batching: bool = True,
                 max_pending: Optional[int] = None,
                 history: Optional[History] = None):
        """``max_pending`` caps concurrently pending registers: admission
        beyond the cap raises :class:`~repro.errors.BackpressureError`
        instead of letting thousands of registers starve one inbox.
        ``history`` (shared across the hosts of one store) records every
        operation's invocation/completion for the consistency checkers.
        """
        if not pid.is_client:
            raise TransportError(f"{pid!r} is not a client process")
        if max_pending is not None and max_pending < 1:
            raise TransportError("max_pending must be at least 1")
        self.pid = pid
        self.network = network
        self.batching = batching
        self.max_pending = max_pending
        self.history = history
        network.register(pid)
        self._pending: Dict[str, ClientOperation] = {}
        self._waiters: Dict[str, "asyncio.Future[Any]"] = {}
        self._pump_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------
    def _ensure_pump(self) -> None:
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump())

    def stop(self) -> None:
        """Cancel the pump and fail every blocked waiter.

        Without the eviction a caller awaiting an in-flight operation
        would hang forever once the pump is gone; failing fast with a
        :class:`TransportError` turns a lifecycle bug into a visible
        error at the call site.
        """
        if self._pump_task is not None:
            self._pump_task.cancel()
            self._pump_task = None
        if self._pending:
            error = TransportError(
                f"client host {self.pid!r} stopped with operations "
                f"in flight")
            for operation in list(self._pending.values()):
                self._evict(operation, error)

    # -- dispatch -----------------------------------------------------------
    def _dispatch(self, outgoing: Outgoing) -> None:
        if self.batching:
            outgoing = coalesce_outgoing(outgoing)
        for receiver, payload in outgoing:
            self.network.send(self.pid, receiver, payload)

    def _admit(self, operation: ClientOperation,
               record: bool = True) -> "asyncio.Future[Any]":
        if operation.client_id != self.pid:
            raise TransportError(
                f"operation belongs to {operation.client_id!r}, "
                f"host is {self.pid!r}")
        register_id = operation.register_id
        existing = self._pending.get(register_id)
        if existing is not None and not existing.done:
            raise BusyRegisterError(
                f"client {self.pid!r} already has an operation in flight "
                f"on register {register_id!r}")
        if (self.max_pending is not None
                and len(self._pending) >= self.max_pending):
            raise BackpressureError(
                f"client {self.pid!r} has {len(self._pending)} operations "
                f"in flight (cap {self.max_pending}); rejecting "
                f"register {register_id!r}")
        self._pending[register_id] = operation
        future: "asyncio.Future[Any]" = \
            asyncio.get_running_loop().create_future()
        self._waiters[register_id] = future
        if record:
            self._record_invocation(operation)
        return future

    # -- history recording --------------------------------------------------
    def _record_invocation(self, operation: ClientOperation) -> None:
        if self.history is None:
            return
        kind = operation.kind if operation.kind in (READ, WRITE) else READ
        self.history.record_invocation(
            operation_id=operation.operation_id,
            client=self.pid,
            kind=kind,
            argument=getattr(operation, "value", None),
            register=operation.register_id,
        )

    def _record_completion(self, operation: ClientOperation) -> None:
        if self.history is None:
            return
        if not self.history.has_record(operation.operation_id):
            return  # admitted with record=False (control-plane replay)
        self.history.record_completion(
            operation_id=operation.operation_id,
            result=operation.result,
            rounds_used=operation.rounds_used,
            tag=getattr(operation, "tag", None),
        )

    def _settle(self, register_id: str, operation: ClientOperation) -> None:
        self._pending.pop(register_id, None)
        future = self._waiters.pop(register_id, None)
        if future is not None and not future.done():
            future.set_result(operation.result)
        self._record_completion(operation)

    def _evict(self, operation: ClientOperation,
               error: Optional[BaseException] = None) -> None:
        """Withdraw an operation; fail its waiter if one is blocked."""
        register_id = operation.register_id
        if self._pending.get(register_id) is operation:
            self._pending.pop(register_id, None)
            future = self._waiters.pop(register_id, None)
            if future is not None and not future.done() and error is not None:
                future.set_exception(error)

    async def _pump(self) -> None:
        inbox = self.network.inbox(self.pid)
        while True:
            envelope = await inbox.get()
            # Aggregate the whole burst's outgoing before dispatching:
            # batched acks (N registers' round-1 replies from several
            # objects, drained in one wakeup) yield N coalesced round-2
            # broadcasts -- S envelopes, not N x S.
            outgoing: Outgoing = []
            settled: List[Tuple[str, ClientOperation]] = []
            while True:
                for part in unbatch(envelope.payload):
                    register_id = register_of(part)
                    operation = self._pending.get(register_id)
                    if operation is None or operation.done:
                        continue  # stale traffic for a finished operation
                    try:
                        outgoing.extend(
                            operation.on_message(envelope.sender, part)
                            or [])
                    except Exception as exc:
                        # A broken operation must not kill the pump (it
                        # serves every other register) nor hang its
                        # caller: fail its waiter and drop it.
                        self._evict(operation, exc)
                        continue
                    if operation.done:
                        settled.append((register_id, operation))
                try:
                    envelope = inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
            try:
                self._dispatch(outgoing)
            except Exception as exc:
                # Undeliverable sends lose messages for an unknowable subset
                # of operations; failing every blocked waiter beats hanging.
                for operation in list(self._pending.values()):
                    self._evict(operation, exc)
            for register_id, operation in settled:
                self._settle(register_id, operation)

    # -- operations ----------------------------------------------------------
    async def run(self, operation: ClientOperation,
                  timeout: Optional[float] = None,
                  record: bool = True) -> Any:
        """Run one operation; concurrent calls must target distinct registers.

        ``record=False`` keeps the operation out of the shared history:
        control-plane replays re-install values that already have history
        records, and recording the duplicate would distort the checkers'
        write serialization.
        """
        self._ensure_pump()
        future = self._admit(operation, record=record)
        self._dispatch(operation.start() or [])
        if operation.done:  # zero-communication completion
            self._settle(operation.register_id, operation)
            return operation.result
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        finally:
            # On timeout *or* caller cancellation the operation must be
            # withdrawn, or its register would refuse work forever.
            if not operation.done:
                self._pending.pop(operation.register_id, None)
                self._waiters.pop(operation.register_id, None)

    async def run_many(self, operations: Iterable[ClientOperation],
                       timeout: Optional[float] = None) -> List[Any]:
        """Run a batch of same-client operations, one per register.

        All first-round messages are coalesced before anything is sent:
        with R registers writing to S objects this produces S envelopes
        instead of R x S -- the service tier's write batching.
        """
        operations = list(operations)
        self._ensure_pump()
        futures = []
        try:
            for operation in operations:
                futures.append(self._admit(operation))
        except Exception:
            # Roll back every operation this call admitted: their start()
            # never ran, so leaving them pending would brick the registers
            # -- and their invocation records must go too, or the shared
            # history would accumulate phantom forever-pending writes that
            # every later read counts as concurrent.
            for operation, future in zip(operations, futures):
                self._pending.pop(operation.register_id, None)
                self._waiters.pop(operation.register_id, None)
                future.cancel()
                if self.history is not None:
                    self.history.discard_invocation(operation.operation_id)
            raise
        first_round: Outgoing = []
        for operation in operations:
            first_round.extend(operation.start() or [])
        self._dispatch(first_round)
        for operation in operations:
            if operation.done:
                self._settle(operation.register_id, operation)
        gathered = asyncio.gather(*futures)
        try:
            if timeout is None:
                return await gathered
            return await asyncio.wait_for(gathered, timeout)
        except BaseException:
            # One operation failing (or the batch timing out) must not
            # leave its siblings dangling: cancel every unfinished waiter
            # so their exceptions are consumed and nothing awaits a
            # future the cleanup below is about to orphan.  The first
            # failure propagates to the caller.
            for future in futures:
                if not future.done():
                    future.cancel()
            raise
        finally:
            for operation in operations:
                if not operation.done:
                    self._pending.pop(operation.register_id, None)
                    self._waiters.pop(operation.register_id, None)
