"""Fault injection: crash schedules and Byzantine object behaviours."""

from .byzantine import (AckFlooder, ByzantineWrapper, Equivocator,
                        GarbageByzantine, HistoryForger, MuteByzantine,
                        StaleReplier, StaleTagForger, TsrInflater,
                        ValueForger)
from .plans import (FaultPlan, adversarial_suite, all_fault_assignments,
                    forger, garbage, max_byzantine, max_crashes, mute,
                    no_faults, random_plan, stale, tsr_inflater)

__all__ = [
    "ByzantineWrapper",
    "MuteByzantine",
    "StaleReplier",
    "ValueForger",
    "HistoryForger",
    "StaleTagForger",
    "TsrInflater",
    "Equivocator",
    "AckFlooder",
    "GarbageByzantine",
    "FaultPlan",
    "no_faults",
    "max_crashes",
    "max_byzantine",
    "adversarial_suite",
    "random_plan",
    "all_fault_assignments",
    "mute",
    "stale",
    "forger",
    "tsr_inflater",
    "garbage",
]
