"""A library of Byzantine base-object behaviours.

The model (Section 2.1) lets a malicious object change state arbitrarily
and put arbitrary messages into its channels.  Each class here is one
*strategy* -- a drop-in :class:`~repro.automata.base.ObjectAutomaton` that
usually wraps the honest automaton and distorts its behaviour.  They fall
into three families:

* **omission-flavoured**: :class:`MuteByzantine` (never answers),
  :class:`StaleReplier` (answers from a frozen pre-write state);
* **fabrication-flavoured**: :class:`ValueForger` (invents a high-timestamp
  value), :class:`HistoryForger` (plants forged history entries),
  :class:`GarbageByzantine` (random but well-typed junk),
  :class:`AckFlooder` (spams conflicting acknowledgments);
* **protocol-aware attacks** on the paper's mechanisms:
  :class:`TsrInflater` fabricates write tuples whose ``tsrarray`` accuses
  honest objects of reporting future reader timestamps (the attack the
  *conflict* predicate of Figure 4 exists to absorb), and
  :class:`Equivocator` shows different states to different readers.

Strategies never get to forge their *identity*: the kernel stamps envelope
senders, matching authenticated point-to-point channels.
"""

from __future__ import annotations

import copy
import random
from typing import Any, List, Optional

from ..automata.base import ObjectAutomaton, Outgoing
from ..config import SystemConfig
from ..messages import (HistoryEntry, HistoryReadAck, LeaseProbeAck, Pw,
                        PwAck, ReadAck, ReadRequest, TagQueryAck, W,
                        WriteAck)
from ..types import (BOTTOM, ProcessId, TimestampValue, TsrArray, WriterTag,
                     WriteTuple, as_tag)


class ByzantineWrapper(ObjectAutomaton):
    """Base class: run the honest automaton, distort its replies."""

    def __init__(self, inner: ObjectAutomaton):
        super().__init__(inner.object_index)
        self.inner = inner

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        replies = self.inner.on_message(sender, message)
        return self.transform(sender, message, replies)

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        """Override: distort the honest replies."""
        return replies


class MuteByzantine(ByzantineWrapper):
    """Receives everything, acknowledges nothing.

    Behaviourally identical to an initially crashed object, but counted
    against ``b``; useful to check protocols do not over-trust silence.
    """

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        return []


class StaleReplier(ByzantineWrapper):
    """Answers READs from a state frozen at corruption time.

    WRITE-protocol messages are swallowed (the object pretends to be
    partitioned from the writer), so its READ acks advertise an old value
    forever.  A classic "stale mirror" failure.
    """

    def __init__(self, inner: ObjectAutomaton):
        super().__init__(inner)
        self._frozen = copy.deepcopy(inner)

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, (Pw, W)):
            return []  # never learn new values
        # Reads are served by the frozen replica (whose tsr advances, so
        # its acks stay fresh enough to be accepted).
        return self._frozen.on_message(sender, message)


class TwoFaced(ByzantineWrapper):
    """Acknowledges the writer like an honest object, serves readers from
    a state frozen at corruption time.

    The nastiest stale strategy: unlike :class:`StaleReplier` it lets
    writes *complete* (its acks count toward the writer's quorum) while
    denying those writes to every reader.  Below optimal resilience this
    single behaviour breaks safety outright -- experiment E10 uses it to
    show what the ``S >= 2t + b + 1`` guard is protecting against.
    """

    def __init__(self, inner: ObjectAutomaton):
        super().__init__(inner)
        self._frozen = copy.deepcopy(inner)

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, (Pw, W)):
            # Honest-looking write path: real acks, real state updates --
            # on the hidden replica only.
            return self.inner.on_message(sender, message)
        return self._frozen.on_message(sender, message)


class ValueForger(ByzantineWrapper):
    """Forges a never-written value with an inflated timestamp in acks.

    Against a correct protocol at optimal resilience the forgery can gather
    at most ``b < b + 1`` confirmations, so ``safe(c)`` never holds for it
    -- the safety theorem in action.
    """

    def __init__(self, inner: ObjectAutomaton, config: SystemConfig,
                 forged_value: Any = "FORGED", ts_boost: int = 1000):
        super().__init__(inner)
        self.config = config
        self.forged_value = forged_value
        self.ts_boost = ts_boost

    def _forged_tuple(self, base_ts: int) -> WriteTuple:
        tsval = TimestampValue(base_ts + self.ts_boost, self.forged_value)
        return WriteTuple(tsval, TsrArray.empty(self.config.num_objects,
                                                self.config.num_readers))

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        out: Outgoing = []
        for receiver, payload in replies:
            if isinstance(payload, ReadAck):
                forged = self._forged_tuple(payload.pw.ts)
                payload = ReadAck(
                    round_index=payload.round_index,
                    tsr=payload.tsr,
                    object_index=payload.object_index,
                    pw=forged.tsval,
                    w=forged,
                    register_id=payload.register_id,
                )
            elif isinstance(payload, HistoryReadAck):
                top = (max(payload.history).epoch
                       if payload.history else 0)
                forged = self._forged_tuple(top)
                history = dict(payload.history)
                history[forged.tag] = HistoryEntry(pw=forged.tsval, w=forged)
                payload = HistoryReadAck(
                    round_index=payload.round_index,
                    tsr=payload.tsr,
                    object_index=payload.object_index,
                    history=history,
                    register_id=payload.register_id,
                )
            out.append((receiver, payload))
        return out


class HistoryForger(ByzantineWrapper):
    """Rewrites a *specific* history slot in regular-protocol acks.

    Used to attack the ``invalid``/``safe`` predicates of Figure 6: the
    forger claims write ``target_ts`` installed ``forged_value``.
    """

    def __init__(self, inner: ObjectAutomaton, config: SystemConfig,
                 target_ts: int, forged_value: Any = "REWRITTEN"):
        super().__init__(inner)
        self.config = config
        self.target_ts = target_ts
        self.forged_value = forged_value

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        out: Outgoing = []
        for receiver, payload in replies:
            if isinstance(payload, HistoryReadAck):
                tsval = TimestampValue(self.target_ts, self.forged_value)
                tup = WriteTuple(tsval, TsrArray.empty(
                    self.config.num_objects, self.config.num_readers))
                history = dict(payload.history)
                history[tsval.tag] = HistoryEntry(pw=tsval, w=tup)
                payload = HistoryReadAck(
                    round_index=payload.round_index,
                    tsr=payload.tsr,
                    object_index=payload.object_index,
                    history=history,
                    register_id=payload.register_id,
                )
            out.append((receiver, payload))
        return out


class TsrInflater(ByzantineWrapper):
    """Accuses honest objects via fabricated ``tsrarray`` entries.

    Takes the honest ack and replaces its write tuple with one whose
    ``tsrarray`` claims that ``accused`` objects reported a reader
    timestamp far in the future.  Every honest responder named in the
    forgery lands in a *conflict* with this object (Figure 4, line 1) --
    the round-1 condition must route around the pair without blocking
    forever (Lemma 2 territory).
    """

    def __init__(self, inner: ObjectAutomaton, config: SystemConfig,
                 accused: Optional[List[int]] = None, inflation: int = 10**6):
        super().__init__(inner)
        self.config = config
        self.accused = (list(accused) if accused is not None
                        else list(range(config.num_objects)))
        self.inflation = inflation

    def _inflate(self, w: WriteTuple, reader_index: int) -> WriteTuple:
        tsr = w.tsrarray
        for i in self.accused:
            tsr = tsr.with_entry(i, reader_index, self.inflation)
        return WriteTuple(w.tsval, tsr)

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        if not isinstance(message, ReadRequest):
            return replies
        out: Outgoing = []
        for receiver, payload in replies:
            if isinstance(payload, ReadAck):
                payload = ReadAck(
                    round_index=payload.round_index,
                    tsr=payload.tsr,
                    object_index=payload.object_index,
                    pw=payload.pw,
                    w=self._inflate(payload.w, message.reader_index),
                    register_id=payload.register_id,
                )
            out.append((receiver, payload))
        return out


class Equivocator(ByzantineWrapper):
    """Shows honest state to even readers, a frozen state to odd ones."""

    def __init__(self, inner: ObjectAutomaton):
        super().__init__(inner)
        self._stale = copy.deepcopy(inner)

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, ReadRequest) and message.reader_index % 2 == 1:
            return self._stale.on_message(sender, message)
        return self.inner.on_message(sender, message)


class AckFlooder(ByzantineWrapper):
    """Sends ``copies`` differently-forged acks per read request.

    Exercises the reader's set semantics: duplicate evidence from one
    object must never be double counted toward ``b + 1`` confirmations.
    """

    def __init__(self, inner: ObjectAutomaton, config: SystemConfig,
                 copies: int = 3):
        super().__init__(inner)
        self.config = config
        self.copies = copies

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        out: Outgoing = list(replies)
        for receiver, payload in replies:
            if not isinstance(payload, ReadAck):
                continue
            for n in range(1, self.copies):
                tsval = TimestampValue(payload.pw.ts + n, f"flood-{n}")
                forged = WriteTuple(tsval, TsrArray.empty(
                    self.config.num_objects, self.config.num_readers))
                out.append((receiver, ReadAck(
                    round_index=payload.round_index,
                    tsr=payload.tsr,
                    object_index=payload.object_index,
                    pw=tsval,
                    w=forged,
                    register_id=payload.register_id,
                )))
        return out


class StaleTagForger(ByzantineWrapper):
    """Forges write tags in MWMR traffic: lies about the maximum tag it
    holds (tag discovery) and attributes its read-ack state to a stale
    ``(epoch, writer_id)`` tag.

    Against a correct MWMR protocol both lies are absorbed: tag discovery
    takes the *maximum* over a quorum (one under-reporting object cannot
    lower it below any completed write's tag), and a forged stale
    candidate gathers at most ``b < b + 1`` confirmations so ``safe(c)``
    never holds for it -- the satellite the MWMR test suite pins down.

    The same stale story is told to lease probes (fast reads): the
    forger vouches for whatever lease is probed, so it is the honest
    quorum majority that must -- and does -- outvote it.
    """

    def __init__(self, inner: ObjectAutomaton, config: SystemConfig,
                 forged_tag: WriterTag = WriterTag(0, 0),
                 forged_value: Any = "STALE-TAG"):
        super().__init__(inner)
        self.config = config
        self.forged_tag = as_tag(forged_tag)
        self.forged_value = forged_value

    def _stale_tuple(self) -> WriteTuple:
        tsval = (TimestampValue(self.forged_tag.epoch, self.forged_value,
                                wid=self.forged_tag.writer_id)
                 if self.forged_tag.epoch > 0
                 else TimestampValue(0, BOTTOM))
        return WriteTuple(tsval, TsrArray.empty(self.config.num_objects,
                                                self.config.num_readers))

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        out: Outgoing = []
        for receiver, payload in replies:
            if isinstance(payload, TagQueryAck):
                # Under-report the maximum tag (pull writers backwards).
                payload = TagQueryAck(
                    nonce=payload.nonce,
                    object_index=payload.object_index,
                    epoch=self.forged_tag.epoch,
                    wid=self.forged_tag.writer_id,
                    register_id=payload.register_id,
                )
            elif isinstance(payload, ReadAck):
                forged = self._stale_tuple()
                payload = ReadAck(
                    round_index=payload.round_index,
                    tsr=payload.tsr,
                    object_index=payload.object_index,
                    pw=forged.tsval,
                    w=forged,
                    register_id=payload.register_id,
                )
            elif isinstance(payload, HistoryReadAck):
                forged = self._stale_tuple()
                history = {forged.tag: HistoryEntry(pw=forged.tsval,
                                                    w=forged)}
                payload = HistoryReadAck(
                    round_index=payload.round_index,
                    tsr=payload.tsr,
                    object_index=payload.object_index,
                    history=history,
                    register_id=payload.register_id,
                )
            elif isinstance(payload, LeaseProbeAck):
                # Vouch for any lease: under-report the top tag so the
                # probe sees no newer write, claim the leased tuple is
                # held, and hide any fence.  With at most ``b`` such
                # forgers a probe for a genuinely superseded lease still
                # hears the newer tag (or a fence) from every honest
                # member of the quorum it reached -- one honest
                # refutation forces the classic fallback -- and a probe
                # whose value is not actually quorum-held cannot reach
                # ``b + 1`` holds votes on forged acks alone.
                payload = LeaseProbeAck(
                    nonce=payload.nonce,
                    object_index=payload.object_index,
                    epoch=self.forged_tag.epoch,
                    wid=self.forged_tag.writer_id,
                    holds=True,
                    fenced=False,
                    register_id=payload.register_id,
                )
            out.append((receiver, payload))
        return out


class GarbageByzantine(ByzantineWrapper):
    """Seeded random but type-correct distortions of every reply."""

    def __init__(self, inner: ObjectAutomaton, config: SystemConfig,
                 seed: int = 0):
        super().__init__(inner)
        self.config = config
        self._rng = random.Random(seed)

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        out: Outgoing = []
        for receiver, payload in replies:
            if isinstance(payload, ReadAck) and self._rng.random() < 0.8:
                ts = self._rng.randint(1, 50)
                tsval = TimestampValue(ts, f"junk-{self._rng.randint(0, 9)}")
                payload = ReadAck(
                    round_index=payload.round_index,
                    tsr=payload.tsr,
                    object_index=payload.object_index,
                    pw=tsval,
                    w=WriteTuple(tsval, TsrArray.empty(
                        self.config.num_objects, self.config.num_readers)),
                    register_id=payload.register_id,
                )
            elif isinstance(payload, PwAck) and self._rng.random() < 0.5:
                payload = PwAck(
                    ts=payload.ts,
                    object_index=payload.object_index,
                    tsr=tuple(self._rng.randint(0, 5)
                              for _ in range(self.config.num_readers)),
                    register_id=payload.register_id,
                )
            out.append((receiver, payload))
        return out
