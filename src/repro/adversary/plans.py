"""Fault plans: declarative assignments of crashes and corruptions.

A :class:`FaultPlan` names which objects crash and which turn Byzantine
(and with what strategy), validates the assignment against the system's
``(t, b)`` budget, and applies itself to a :class:`~repro.system.
StorageSystem`.  Experiments sweep fault plans the way they sweep
schedulers: a plan is data, so the harness can enumerate the interesting
corner cases (all-crash, all-Byzantine, mixed, maximal) mechanically.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..automata.base import ObjectAutomaton
from ..config import SystemConfig
from ..errors import ConfigurationError
from ..system import StorageSystem
from ..types import obj
from .byzantine import (ByzantineWrapper, GarbageByzantine, MuteByzantine,
                        StaleReplier, TsrInflater, ValueForger)

#: A strategy factory: (honest automaton, config) -> Byzantine automaton.
StrategyFactory = Callable[[ObjectAutomaton, SystemConfig], ObjectAutomaton]


def mute() -> StrategyFactory:
    return lambda inner, config: MuteByzantine(inner)


def stale() -> StrategyFactory:
    return lambda inner, config: StaleReplier(inner)


def forger(value="FORGED", ts_boost: int = 1000) -> StrategyFactory:
    return lambda inner, config: ValueForger(inner, config, value, ts_boost)


def tsr_inflater(accused: Optional[List[int]] = None) -> StrategyFactory:
    return lambda inner, config: TsrInflater(inner, config, accused)


def garbage(seed: int = 0) -> StrategyFactory:
    return lambda inner, config: GarbageByzantine(inner, config, seed)


@dataclass
class FaultPlan:
    """Which objects fail and how."""

    crash_indices: List[int] = field(default_factory=list)
    byzantine: Dict[int, StrategyFactory] = field(default_factory=dict)
    label: str = ""

    def validate(self, config: SystemConfig) -> None:
        crash = set(self.crash_indices)
        byz = set(self.byzantine)
        if crash & byz:
            raise ConfigurationError(
                f"objects {sorted(crash & byz)} assigned both crash and "
                "Byzantine faults; pick one")
        for i in crash | byz:
            if not 0 <= i < config.num_objects:
                raise ConfigurationError(f"object index {i} out of range")
        if len(byz) > config.b:
            raise ConfigurationError(
                f"{len(byz)} Byzantine objects exceed b={config.b}")
        if len(crash) + len(byz) > config.t:
            raise ConfigurationError(
                f"{len(crash) + len(byz)} faults exceed t={config.t}")

    def apply(self, system: StorageSystem) -> None:
        """Install the faults into a system (before or during a run)."""
        self.validate(system.config)
        for i in self.crash_indices:
            system.kernel.crash(obj(i))
        for i, factory in self.byzantine.items():
            honest = system.kernel.object_automaton(obj(i))
            corrupted = factory(honest, system.config)
            system.kernel.make_byzantine(obj(i), corrupted,
                                         note=type(corrupted).__name__)

    def describe(self) -> str:
        if self.label:
            return self.label
        parts = []
        if self.crash_indices:
            parts.append("crash " + ",".join(
                f"s{i + 1}" for i in sorted(self.crash_indices)))
        if self.byzantine:
            parts.append("byz " + ",".join(
                f"s{i + 1}" for i in sorted(self.byzantine)))
        return "; ".join(parts) or "no faults"


# ---------------------------------------------------------------------------
# Plan generators
# ---------------------------------------------------------------------------


def no_faults() -> FaultPlan:
    return FaultPlan(label="fault-free")


def max_crashes(config: SystemConfig) -> FaultPlan:
    """Crash exactly ``t`` objects (the leading ones)."""
    return FaultPlan(crash_indices=list(range(config.t)),
                     label=f"crash {config.t} objects")


def max_byzantine(config: SystemConfig,
                  strategy: Optional[StrategyFactory] = None) -> FaultPlan:
    """Corrupt ``b`` objects, crash the remaining ``t - b``."""
    strategy = strategy or forger()
    byz = {i: strategy for i in range(config.b)}
    crash = list(range(config.b, config.t))
    return FaultPlan(crash_indices=crash, byzantine=byz,
                     label=f"byz {config.b} + crash {config.t - config.b}")


def adversarial_suite(config: SystemConfig) -> List[FaultPlan]:
    """The canonical sweep the correctness experiments iterate over."""
    plans = [no_faults(), max_crashes(config)]
    if config.b > 0:
        for name, strategy in [
            ("mute", mute()),
            ("stale", stale()),
            ("forger", forger()),
            ("tsr-inflater", tsr_inflater()),
            ("garbage", garbage(seed=7)),
        ]:
            plan = max_byzantine(config, strategy)
            plan.label = f"{plan.label} ({name})"
            plans.append(plan)
    return plans


def random_plan(config: SystemConfig, seed: int) -> FaultPlan:
    """A seeded random legal fault assignment (for fuzzing)."""
    rng = random.Random(seed)
    num_byz = rng.randint(0, config.b)
    num_crash = rng.randint(0, config.t - num_byz)
    indices = list(range(config.num_objects))
    rng.shuffle(indices)
    byz_indices = indices[:num_byz]
    crash_indices = indices[num_byz:num_byz + num_crash]
    strategies: List[StrategyFactory] = [
        mute(), stale(), forger(), tsr_inflater(), garbage(seed)
    ]
    byz = {i: rng.choice(strategies) for i in byz_indices}
    return FaultPlan(crash_indices=crash_indices, byzantine=byz,
                     label=f"random(seed={seed})")


def all_fault_assignments(config: SystemConfig,
                          strategy: Optional[StrategyFactory] = None,
                          limit: int = 100) -> Iterator[FaultPlan]:
    """Enumerate (up to ``limit``) exact fault-location assignments.

    Useful for exhaustively checking small configurations: every way of
    choosing ``b`` Byzantine and ``t - b`` crashed objects.
    """
    strategy = strategy or forger()
    count = 0
    indices = range(config.num_objects)
    for byz_set in itertools.combinations(indices, config.b):
        rest = [i for i in indices if i not in byz_set]
        for crash_set in itertools.combinations(rest, config.t - config.b):
            yield FaultPlan(
                crash_indices=list(crash_set),
                byzantine={i: strategy for i in byz_set},
                label=f"byz={byz_set} crash={crash_set}",
            )
            count += 1
            if count >= limit:
                return
