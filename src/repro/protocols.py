"""Uniform protocol plug-in interface.

Every storage emulation in the library -- the paper's safe and regular
protocols, and each baseline -- implements :class:`StorageProtocol`.  The
interface factors a protocol into its three automata families (objects,
writer operations, reader operations) plus static metadata (resilience
requirement, advertised worst-case round complexity, register semantics),
so the simulator, the asyncio runtime, the comparison experiment (E7) and
the property-based tests can treat all protocols identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Tuple

from .automata.base import ClientOperation, ObjectAutomaton
from .config import SystemConfig
from .types import DEFAULT_REGISTER

#: Register semantics labels (Lamport [12] hierarchy).
SAFE = "safe"
REGULAR = "regular"
ATOMIC = "atomic"


class StorageProtocol(ABC):
    """A pluggable SWMR storage emulation."""

    #: Short identifier used in tables and traces.
    name: str = "abstract"
    #: Claimed register semantics: "safe", "regular" or "atomic".
    semantics: str = SAFE
    #: Advertised worst-case client-object round-trips per operation.
    write_rounds_worst_case: int = 0
    read_rounds_worst_case: int = 0
    #: Whether payloads must be authenticated (simulated signatures).
    requires_authentication: bool = False
    #: Whether readers modify base-object state.
    readers_write: bool = True
    #: Whether this protocol's reader states understand tag leases (the
    #: contention-adaptive fast-read path).  Opt-in per deployment: even
    #: capable protocols run classic-only unless the service tier enables
    #: ``fast_reads`` on the reader states.
    supports_fast_reads: bool = False

    def write_rounds_bound(self, config: SystemConfig) -> int:
        """Worst-case write rounds under ``config``.

        Multi-writer systems prepend the tag-discovery round to every
        WRITE; the advertised ``write_rounds_worst_case`` is the paper's
        single-writer figure.
        """
        extra = 1 if config.is_multi_writer else 0
        return self.write_rounds_worst_case + extra

    # -- resilience -----------------------------------------------------------
    @abstractmethod
    def min_objects(self, t: int, b: int) -> int:
        """Minimum ``S`` this protocol needs for the given thresholds."""

    def validate_config(self, config: SystemConfig) -> None:
        needed = self.min_objects(config.t, config.b)
        if config.num_objects < needed:
            from .errors import ResilienceError
            raise ResilienceError(
                f"{self.name} requires S >= {needed} for t={config.t}, "
                f"b={config.b}; got S={config.num_objects}")

    # -- automata factories -----------------------------------------------------
    @abstractmethod
    def make_objects(self, config: SystemConfig) -> List[ObjectAutomaton]:
        """Fresh base-object automata, indices ``0 .. S-1``."""

    @abstractmethod
    def make_writer_state(self, config: SystemConfig) -> Any:
        """Persistent writer-side state shared across WRITEs (writer 0)."""

    def make_writer_state_for(self, config: SystemConfig,
                              writer_index: int = 0) -> Any:
        """Persistent state of writer ``writer_index`` (MWMR).

        The default stamps ``writer_index`` on the writer-0 state, which
        every MWMR-capable state exposes as an attribute; protocols whose
        states lack it are single-writer only and refuse other indices.
        """
        state = self.make_writer_state(config)
        if writer_index == 0:
            return state
        if not hasattr(state, "writer_index"):
            from .errors import ConfigurationError
            raise ConfigurationError(
                f"{self.name} supports a single writer only")
        state.writer_index = writer_index
        return state

    @abstractmethod
    def make_reader_state(self, config: SystemConfig, reader_index: int) -> Any:
        """Persistent reader-side state shared across that reader's READs."""

    @abstractmethod
    def make_write(self, writer_state: Any, value: Any) -> ClientOperation:
        """A WRITE(v) operation automaton."""

    @abstractmethod
    def make_read(self, reader_state: Any) -> ClientOperation:
        """A READ() operation automaton."""

    # -- register-addressed factories ------------------------------------------
    # One replica set multiplexes many SWMR registers: client states are
    # per-register (the caller keys them by register id) and the operation
    # stamps its register id on every message it sends.  The single-register
    # methods above are the ``register_id == DEFAULT_REGISTER`` special case.

    def make_write_to(self, writer_state: Any, value: Any,
                      register_id: str = DEFAULT_REGISTER) -> ClientOperation:
        """A WRITE(v) operation addressing ``register_id``.

        ``writer_state`` must be the state of *that register's* writer
        (one :meth:`make_writer_state` product per register).
        """
        operation = self.make_write(writer_state, value)
        operation.register_id = register_id
        return operation

    def make_read_from(self, reader_state: Any,
                       register_id: str = DEFAULT_REGISTER) -> ClientOperation:
        """A READ() operation addressing ``register_id``."""
        operation = self.make_read(reader_state)
        operation.register_id = register_id
        return operation

    # -- description --------------------------------------------------------------
    def client_states(self, config: SystemConfig) -> "RegisterClientStates":
        """A lazy per-register pool of this protocol's client states."""
        return RegisterClientStates(self, config)

    def describe(self) -> str:
        auth = "authenticated" if self.requires_authentication else \
            "unauthenticated"
        rw = "readers write" if self.readers_write else "passive readers"
        return (f"{self.name}: {self.semantics} semantics, "
                f"W<={self.write_rounds_worst_case}r / "
                f"R<={self.read_rounds_worst_case}r, {auth}, {rw}")


class RegisterClientStates:
    """Lazily created per-register writer/reader states of one system.

    Every facade that multiplexes registers (simulator, asyncio storage,
    service store) needs the same bookkeeping: one writer state per
    register and one reader state per (register, reader), created on
    first use.  This owns it once.
    """

    def __init__(self, protocol: StorageProtocol, config: SystemConfig):
        self.protocol = protocol
        self.config = config
        self._writers: Dict[Tuple[str, int], Any] = {}
        self._readers: Dict[Tuple[str, int], Any] = {}
        #: when set (service-tier opt-in on a capable protocol), reader
        #: states are created with the fast-read path enabled.
        self.fast_reads = False

    def enable_fast_reads(self) -> None:
        """Turn the lease-probe fast path on for this pool's readers."""
        if not self.protocol.supports_fast_reads:
            from .errors import ConfigurationError
            raise ConfigurationError(
                f"{self.protocol.name} does not support fast reads")
        self.fast_reads = True
        for state in self._readers.values():
            state.fast_reads = True

    def reader_states_of(self, register_id: str) -> List[Any]:
        """Existing reader states of one register (no lazy creation)."""
        return [state for (rid, _), state in self._readers.items()
                if rid == register_id]

    def all_reader_states(self) -> List[Any]:
        return list(self._readers.values())

    def writer(self, register_id: str = DEFAULT_REGISTER,
               writer_index: int = 0) -> Any:
        key = (register_id, writer_index)
        state = self._writers.get(key)
        if state is None:
            state = self._writers[key] = \
                self.protocol.make_writer_state_for(self.config, writer_index)
        return state

    def reader(self, register_id: str = DEFAULT_REGISTER,
               reader_index: int = 0) -> Any:
        key = (register_id, reader_index)
        state = self._readers.get(key)
        if state is None:
            state = self._readers[key] = \
                self.protocol.make_reader_state(self.config, reader_index)
            if self.fast_reads:
                state.fast_reads = True
        return state

    def registers(self) -> List[str]:
        """Register ids any client state has been created for."""
        return sorted({rid for rid, _ in self._writers}
                      | {rid for rid, _ in self._readers})
