"""Uniform protocol plug-in interface.

Every storage emulation in the library -- the paper's safe and regular
protocols, and each baseline -- implements :class:`StorageProtocol`.  The
interface factors a protocol into its three automata families (objects,
writer operations, reader operations) plus static metadata (resilience
requirement, advertised worst-case round complexity, register semantics),
so the simulator, the asyncio runtime, the comparison experiment (E7) and
the property-based tests can treat all protocols identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List

from .automata.base import ClientOperation, ObjectAutomaton
from .config import SystemConfig

#: Register semantics labels (Lamport [12] hierarchy).
SAFE = "safe"
REGULAR = "regular"
ATOMIC = "atomic"


class StorageProtocol(ABC):
    """A pluggable SWMR storage emulation."""

    #: Short identifier used in tables and traces.
    name: str = "abstract"
    #: Claimed register semantics: "safe", "regular" or "atomic".
    semantics: str = SAFE
    #: Advertised worst-case client-object round-trips per operation.
    write_rounds_worst_case: int = 0
    read_rounds_worst_case: int = 0
    #: Whether payloads must be authenticated (simulated signatures).
    requires_authentication: bool = False
    #: Whether readers modify base-object state.
    readers_write: bool = True

    # -- resilience -----------------------------------------------------------
    @abstractmethod
    def min_objects(self, t: int, b: int) -> int:
        """Minimum ``S`` this protocol needs for the given thresholds."""

    def validate_config(self, config: SystemConfig) -> None:
        needed = self.min_objects(config.t, config.b)
        if config.num_objects < needed:
            from .errors import ResilienceError
            raise ResilienceError(
                f"{self.name} requires S >= {needed} for t={config.t}, "
                f"b={config.b}; got S={config.num_objects}")

    # -- automata factories -----------------------------------------------------
    @abstractmethod
    def make_objects(self, config: SystemConfig) -> List[ObjectAutomaton]:
        """Fresh base-object automata, indices ``0 .. S-1``."""

    @abstractmethod
    def make_writer_state(self, config: SystemConfig) -> Any:
        """Persistent writer-side state shared across WRITEs."""

    @abstractmethod
    def make_reader_state(self, config: SystemConfig, reader_index: int) -> Any:
        """Persistent reader-side state shared across that reader's READs."""

    @abstractmethod
    def make_write(self, writer_state: Any, value: Any) -> ClientOperation:
        """A WRITE(v) operation automaton."""

    @abstractmethod
    def make_read(self, reader_state: Any) -> ClientOperation:
        """A READ() operation automaton."""

    # -- description --------------------------------------------------------------
    def describe(self) -> str:
        auth = "authenticated" if self.requires_authentication else \
            "unauthenticated"
        rw = "readers write" if self.readers_write else "passive readers"
        return (f"{self.name}: {self.semantics} semantics, "
                f"W<={self.write_rounds_worst_case}r / "
                f"R<={self.read_rounds_worst_case}r, {auth}, {rw}")
