"""Register-semantics checkers over operation histories.

Implements the three SWMR register specifications the paper works with
(Section 2.2, following Lamport [12]):

* **safety** -- a READ not concurrent with any WRITE returns the value of
  the last preceding WRITE (or ``⊥`` if none); concurrent READs may return
  anything;
* **regularity** -- additionally, every READ returns either ``⊥``-before-
  any-write or a value actually written, no older than the last WRITE that
  precedes it, and written by a WRITE that precedes or is concurrent with
  it;
* **atomicity** -- regularity plus no new/old inversion between
  non-concurrent READs (sufficient for SWMR linearizability).

Checkers never raise on violation by default; they return a
:class:`CheckResult` that lists every offence with a human-readable
explanation, so tests can assert cleanly and experiments can *count*
violations (the lower-bound experiment wants exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..errors import SpecificationViolation
from ..types import BOTTOM, TAG0, ProcessId, WriterTag, _Bottom
from .histories import History, OperationRecord, READ, WRITE


@dataclass
class CheckResult:
    """Outcome of a specification check."""

    property_name: str
    violations: List[str] = field(default_factory=list)
    checked_reads: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if not self.ok:
            raise SpecificationViolation(
                f"{self.property_name} violated:\n  " +
                "\n  ".join(self.violations))

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (f"CheckResult({self.property_name}: {status}, "
                f"{self.checked_reads} reads checked)")


def _is_bottom(value: Any) -> bool:
    return isinstance(value, _Bottom)


# ---------------------------------------------------------------------------
# Safety
# ---------------------------------------------------------------------------


def check_safety(history: History) -> CheckResult:
    """A READ with no concurrent WRITE returns the last written value.

    With a single writer the "last" preceding WRITE is the latest by
    invocation order; with multiple writers it is the maximal-*tag* one
    (writes not concurrent with the read are totally ordered by their
    tags, which the tag-discovery write path aligns with real time).
    """
    result = CheckResult("safety")
    multi = history.is_multi_writer
    for read in history.reads(complete_only=True):
        if history.concurrent_writes(read):
            continue  # concurrent READs are unconstrained
        result.checked_reads += 1
        last_write = (history.last_preceding_write_by_tag(read) if multi
                      else history.last_preceding_write(read))
        expected = BOTTOM if last_write is None else last_write.argument
        if read.result != expected and not (
                _is_bottom(read.result) and _is_bottom(expected)):
            result.violations.append(
                f"{read.describe()} expected {expected!r} "
                f"(last write: "
                f"{last_write.describe() if last_write else 'none'})")
    return result


# ---------------------------------------------------------------------------
# Regularity
# ---------------------------------------------------------------------------


def check_regularity(history: History) -> CheckResult:
    """The three regularity clauses of Section 2.2.

    Multi-writer histories are delegated to the tag-based checker: with
    concurrent writers the write serialization is the total order on
    ``(epoch, writer_id)`` tags, not invocation order.
    """
    if history.is_multi_writer:
        return check_mwmr_regularity(history)
    result = CheckResult("regularity")
    writes = history.writes()
    written_values = [w.argument for w in writes]
    for read in history.reads(complete_only=True):
        result.checked_reads += 1
        value = read.result
        # Clause (1): the value was written (val_k for some k, val_0 = ⊥).
        if not _is_bottom(value) and value not in written_values:
            result.violations.append(
                f"{read.describe()} returned a value never written")
            continue
        # Clause (2): no stale read past a preceding WRITE.
        last_write = history.last_preceding_write(read)
        k_floor = (last_write.write_index or 0) if last_write else 0
        if k_floor >= 1:
            if _is_bottom(value):
                result.violations.append(
                    f"{read.describe()} returned ⊥ although "
                    f"wr_{k_floor} precedes it")
                continue
            admissible = [k for k in history.write_indices_of_value(value)
                          if k >= k_floor]
            if not admissible:
                result.violations.append(
                    f"{read.describe()} returned val_"
                    f"{history.write_indices_of_value(value)} but "
                    f"wr_{k_floor} precedes the read")
                continue
        # Clause (3): the write of the returned value precedes or is
        # concurrent with the read (no reads from the future).
        if not _is_bottom(value):
            candidates = history.write_indices_of_value(value)
            feasible = False
            for k in candidates:
                write = next(w for w in writes if w.write_index == k)
                if not read.precedes(write):
                    feasible = True
                    break
            if not feasible:
                result.violations.append(
                    f"{read.describe()} returned a value written only by "
                    f"WRITEs it strictly precedes")
    return result


# ---------------------------------------------------------------------------
# Atomicity
# ---------------------------------------------------------------------------


def check_atomicity(history: History) -> CheckResult:
    """Regularity + no new/old inversion (SWMR atomicity).

    Reads are assigned the write index they observed (resolving repeated
    values optimistically); for any two complete reads ``rd1`` preceding
    ``rd2`` the observed indices must be monotone.  Multi-writer
    histories are delegated to the tag-based checker.
    """
    if history.is_multi_writer:
        return check_mwmr_atomicity(history)
    result = check_regularity(history)
    result.property_name = "atomicity"
    if not result.ok:
        return result

    reads = history.reads(complete_only=True)

    def feasible_indices(read: OperationRecord) -> List[int]:
        if _is_bottom(read.result):
            return [0]
        ks = []
        for k in history.write_indices_of_value(read.result):
            write = next(w for w in history.writes() if w.write_index == k)
            if read.precedes(write):
                continue  # clause (3) rules it out
            ks.append(k)
        return ks or [0]

    # Greedy monotone assignment over reads sorted by invocation; sound for
    # the single-writer case because feasible index sets are intervals in
    # practice (each value written once in our workloads) -- and when a
    # value repeats, taking the maximal feasible index minimizes future
    # conflicts.
    chosen: List[tuple] = []  # (read, k)
    for read in reads:
        floor = 0
        for prev, k_prev in chosen:
            if prev.precedes(read):
                floor = max(floor, k_prev)
        ks = [k for k in feasible_indices(read) if k >= floor]
        if not ks:
            result.violations.append(
                f"new/old inversion: {read.describe()} must observe "
                f"k >= {floor} but can only observe "
                f"{feasible_indices(read)}")
            continue
        chosen.append((read, max(ks)))
    return result


# ---------------------------------------------------------------------------
# Multi-writer (tag-based) regularity and atomicity
# ---------------------------------------------------------------------------


def _check_mwmr_write_order(ordered, result: CheckResult,
                            history: History) -> None:
    """Shared MWMR write clauses: unique tags, real-time order respected.

    ``ordered`` is ``history.writes_by_tag()``, computed once by the
    caller.  The real-time clause runs in one pass: walking in tag order
    while tracking the latest-invoked earlier-tag write, any write that
    completed before that invocation is a genuine inversion witness.
    """
    seen: dict = {}
    for w in ordered:
        if w.tag in seen:
            result.violations.append(
                f"writes {seen[w.tag].describe()} and {w.describe()} "
                f"share tag {w.tag!r}")
        seen[w.tag] = w
    latest_invoked = None
    for w2 in ordered:
        if (latest_invoked is not None
                and w2.completed_seq is not None
                and w2.completed_seq < latest_invoked.invoked_seq):
            result.violations.append(
                f"{w2.describe()} precedes {latest_invoked.describe()} "
                f"in real time yet carries the larger tag {w2.tag!r}")
        if (latest_invoked is None
                or w2.invoked_seq > latest_invoked.invoked_seq):
            latest_invoked = w2
    for w in history.writes():
        if w.complete and w.tag is None:
            result.violations.append(
                f"{w.describe()} completed without reporting a write tag")


def _mwmr_read_clauses(read: OperationRecord, ordered, by_tag,
                       result: CheckResult, history: History) -> None:
    """Per-read MWMR regularity: observed tag exists, is fresh enough and
    not from the future.  ``ordered``/``by_tag`` are the tag-sorted write
    list and tag index, computed once per check.  Observed tags are
    normalized through the history's republication aliases first: a read
    that observed a control-plane replay observed the *duplicated*
    version, not a new one."""
    tag = history.resolve_tag(read.register, read.tag)
    value = read.result
    if tag is None:
        result.violations.append(
            f"{read.describe()} completed without reporting an observed "
            f"tag")
        return
    # The maximal-tag completed write preceding this read: scan the
    # tag-sorted list from the top, stopping at the first hit.
    floor = None
    for w in reversed(ordered):
        if w.precedes(read):
            floor = w
            break
    if tag == TAG0:
        if not _is_bottom(value):
            result.violations.append(
                f"{read.describe()} returned a value but observed the "
                f"initial tag")
        if floor is not None:
            result.violations.append(
                f"{read.describe()} returned ⊥ although "
                f"{floor.describe()} precedes it")
        return
    source = by_tag.get(tag)
    if source is None:
        result.violations.append(
            f"{read.describe()} observed tag {tag!r} which no write "
            f"installed")
        return
    if read.result != source.argument:
        result.violations.append(
            f"{read.describe()} returned {read.result!r} but the write "
            f"with tag {tag!r} installed {source.argument!r}")
    if read.precedes(source):
        result.violations.append(
            f"{read.describe()} observed {source.describe()} which it "
            f"strictly precedes")
    if floor is not None and tag < floor.tag:
        result.violations.append(
            f"{read.describe()} observed stale tag {tag!r} although "
            f"{floor.describe()} (tag {floor.tag!r}) precedes it")


def check_mwmr_regularity(history: History) -> CheckResult:
    """Tag-based regularity for interleaved multi-writer histories.

    The write serialization is the total order on ``(epoch, writer_id)``
    tags.  Clauses: (w1) completed writes carry pairwise distinct tags
    consistent with real-time order; (r1) every read's observed tag was
    installed by a write of the returned value; (r2) the observed tag is
    at least the tag of every write preceding the read; (r3) no read
    observes a write it strictly precedes.
    """
    result = CheckResult("mwmr-regularity")
    ordered = history.writes_by_tag()
    by_tag = {w.tag: w for w in ordered}
    _check_mwmr_write_order(ordered, result, history)
    for read in history.reads(complete_only=True):
        result.checked_reads += 1
        _mwmr_read_clauses(read, ordered, by_tag, result, history)
    return result


def check_mwmr_atomicity(history: History) -> CheckResult:
    """MWMR regularity + monotone observed tags (linearizability).

    On top of the regularity clauses, non-concurrent reads must observe
    monotonically non-decreasing tags (no new/old inversion), which for
    tagged register histories is exactly the missing piece between
    regular and atomic.

    Fast (lease-probe) reads record their observed tag and result exactly
    like classic reads, so every clause here constrains them identically
    -- a fast read returning a stale lease value shows up as a stale-tag
    or inversion violation.  :func:`check_fast_read_freshness` isolates
    those clauses over the fast subset for targeted gating.
    """
    result = check_mwmr_regularity(history)
    result.property_name = "mwmr-atomicity"
    if not result.ok:
        return result
    reads = [(r, history.resolve_tag(r.register, r.tag))
             for r in history.reads(complete_only=True)
             if r.tag is not None]
    for i, (r1, t1) in enumerate(reads):
        for r2, t2 in reads[i + 1:]:
            if r1.precedes(r2) and t2 < t1:
                result.violations.append(
                    f"new/old inversion: {r1.describe()} observed "
                    f"{t1!r} but the later {r2.describe()} observed "
                    f"{t2!r}")
            elif r2.precedes(r1) and t1 < t2:
                result.violations.append(
                    f"new/old inversion: {r2.describe()} observed "
                    f"{t2!r} but the later {r1.describe()} observed "
                    f"{t1!r}")
    return result


# ---------------------------------------------------------------------------
# Fast (lease-probe) reads
# ---------------------------------------------------------------------------


def check_fast_read_freshness(history: History) -> CheckResult:
    """Every fast read is as fresh as a classic one.

    Fast reads short-circuit history collection by validating a tag
    lease against a quorum; this checker re-asserts, over exactly the
    reads flagged ``fast``, the MWMR read clauses that make that sound:
    the observed tag was installed by a write of the returned value, is
    at least the tag of every write preceding the read (a lease at tag
    ``T`` must never serve a read after a write with a larger tag
    completed), and is not from the future.  Runs per register so
    multiplexed histories don't cross-contaminate write floors.

    A history with no fast reads passes vacuously with
    ``checked_reads == 0`` -- gate on that count when a test *requires*
    the fast path to have fired.
    """
    result = CheckResult("fast-read-freshness")
    for register in history.registers():
        sub = history.for_register(register)
        ordered = sub.writes_by_tag()
        by_tag = {w.tag: w for w in ordered}
        for read in sub.reads(complete_only=True):
            if not read.fast:
                continue
            result.checked_reads += 1
            _mwmr_read_clauses(read, ordered, by_tag, result, sub)
    return result


# ---------------------------------------------------------------------------
# Per-register checking (multiplexed / reconfigured histories)
# ---------------------------------------------------------------------------


def check_per_register(history: History, checker=None) -> CheckResult:
    """Run ``checker`` over every register's sub-history and merge.

    Multiplexed stores record all registers into one history, and a
    history spanning a *reconfiguration* additionally interleaves the
    coordinator's snapshot reads and replay writes with application
    traffic.  Each register's consistency is still exactly its
    sub-history's (the replay write is an ordinary write whose tag --
    the fence epoch -- exceeds every pre-handoff tag, and fenced writes
    never complete, so they stay unconstrained pending operations), so
    per-register checks remain sound across a handoff.

    ``checker`` defaults to :func:`check_regularity`; any
    ``History -> CheckResult`` callable works (e.g.
    :func:`check_mwmr_atomicity`).
    """
    if checker is None:
        checker = check_regularity
    name = getattr(checker, "__name__", str(checker))
    result = CheckResult(f"per-register {name}")
    for register in history.registers():
        sub = checker(history.for_register(register))
        result.checked_reads += sub.checked_reads
        result.violations.extend(
            f"[{register}] {violation}" for violation in sub.violations)
    return result


# ---------------------------------------------------------------------------
# Cross-register snapshot consistency
# ---------------------------------------------------------------------------


def check_snapshot_consistency(history: History) -> CheckResult:
    """Every recorded snapshot is a consistent cut of the write history.

    A snapshot's *cut* maps each key to the tag of the version it
    returned.  Against the totally tag-ordered writes of each register
    (the MWMR version order; single-writer histories are the writer-0
    special case) the cut must satisfy:

    * **validity** -- every non-``TAG0`` cut tag was installed by a write
      of that register (and, when values were recorded, the snapshot
      returned that write's value); a write invoked only after the
      snapshot responded cannot be observed;
    * **freshness** -- a write that completed before the snapshot was
      invoked is reflected: the cut tag of its register is at least its
      tag;
    * **cut closure** (the cross-register clause) -- the cut is closed
      under real-time order *across* registers: if the snapshot reflects
      a write ``w2`` and some write ``w1`` (to another snapshotted key)
      precedes ``w2``, then ``w1`` is reflected too.  This is what
      per-register regularity alone cannot give a multi-key read.

    Cut tags collected over fast (lease-probe) reads are validated by
    the same clauses -- a stale lease surviving into a snapshot shows up
    as a freshness or closure violation here.
    """
    result = CheckResult("snapshot-consistency")
    writes_by_register: dict = {}
    for w in history.writes():
        writes_by_register.setdefault(w.register, []).append(w)
    for snap in history.snapshots():
        result.checked_reads += len(snap.cut)
        reflected: List[OperationRecord] = []
        excluded: List[OperationRecord] = []
        for key, raw_tag in snap.cut.items():
            tag = history.resolve_tag(key, raw_tag)
            if tag is None:
                tag = TAG0  # a tagless protocol cut: treat as initial
            writes = writes_by_register.get(key, [])
            if tag != TAG0:
                source = next((w for w in writes if w.tag == tag), None)
                if source is None:
                    result.violations.append(
                        f"{snap.describe()} returned tag {tag!r} for "
                        f"{key!r} which no write installed")
                elif source.invoked_seq >= snap.completed_seq:
                    result.violations.append(
                        f"{snap.describe()} observed {source.describe()} "
                        f"which was invoked only after the snapshot "
                        f"responded")
                elif (snap.values is not None
                        and snap.values.get(key) != source.argument):
                    result.violations.append(
                        f"{snap.describe()} returned "
                        f"{snap.values.get(key)!r} for {key!r} but the "
                        f"write with tag {tag!r} installed "
                        f"{source.argument!r}")
            for w in writes:
                if w.tag is None:
                    # In-flight or untagged: no completion event to order
                    # against (recorders set the tag at completion).
                    continue
                if w.tag <= tag:
                    reflected.append(w)
                else:
                    excluded.append(w)
                    if w.completed_seq < snap.invoked_seq:
                        result.violations.append(
                            f"{snap.describe()} returned stale tag "
                            f"{tag!r} for {key!r} although "
                            f"{w.describe()} (tag {w.tag!r}) completed "
                            f"before the snapshot began")
        if not reflected:
            continue
        # Closure in one pass: an excluded write violates the cut iff it
        # precedes *some* reflected write, i.e. iff it completed before
        # the latest reflected invocation.
        horizon = max(reflected, key=lambda w: w.invoked_seq)
        for w1 in excluded:
            if (w1.completed_seq is not None
                    and w1.completed_seq < horizon.invoked_seq):
                witness = next(
                    w2 for w2 in reflected
                    if w1.completed_seq < w2.invoked_seq)
                result.violations.append(
                    f"{snap.describe()} is not a consistent cut: it "
                    f"reflects {witness.describe()} (tag "
                    f"{witness.tag!r} <= cut[{witness.register!r}]) but "
                    f"excludes {w1.describe()} (tag {w1.tag!r} > "
                    f"cut[{w1.register!r}]) which precedes it")
    return result


# ---------------------------------------------------------------------------
# Wait-freedom
# ---------------------------------------------------------------------------


def check_wait_freedom(history: History,
                       crashed_clients: Optional[set] = None) -> CheckResult:
    """Every operation by a non-crashed client completed."""
    crashed = crashed_clients or set()
    result = CheckResult("wait-freedom")
    for record in history.operations():
        if record.client in crashed:
            continue
        result.checked_reads += 1
        if not record.complete:
            result.violations.append(
                f"{record.describe()} never completed although "
                f"{record.client!r} did not crash")
    return result


# ---------------------------------------------------------------------------
# Round complexity
# ---------------------------------------------------------------------------


def check_round_complexity(history: History, max_read_rounds: int,
                           max_write_rounds: int) -> CheckResult:
    """Every complete operation used at most the advertised rounds."""
    result = CheckResult("round-complexity")
    for record in history.operations():
        if not record.complete:
            continue
        result.checked_reads += 1
        bound = max_read_rounds if record.kind == READ else max_write_rounds
        if record.rounds_used > bound:
            result.violations.append(
                f"{record.describe()} used {record.rounds_used} rounds "
                f"(bound {bound})")
    return result
