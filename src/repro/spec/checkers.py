"""Register-semantics checkers over operation histories.

Implements the three SWMR register specifications the paper works with
(Section 2.2, following Lamport [12]):

* **safety** -- a READ not concurrent with any WRITE returns the value of
  the last preceding WRITE (or ``⊥`` if none); concurrent READs may return
  anything;
* **regularity** -- additionally, every READ returns either ``⊥``-before-
  any-write or a value actually written, no older than the last WRITE that
  precedes it, and written by a WRITE that precedes or is concurrent with
  it;
* **atomicity** -- regularity plus no new/old inversion between
  non-concurrent READs (sufficient for SWMR linearizability).

Checkers never raise on violation by default; they return a
:class:`CheckResult` that lists every offence with a human-readable
explanation, so tests can assert cleanly and experiments can *count*
violations (the lower-bound experiment wants exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..errors import SpecificationViolation
from ..types import BOTTOM, ProcessId, _Bottom
from .histories import History, OperationRecord, READ, WRITE


@dataclass
class CheckResult:
    """Outcome of a specification check."""

    property_name: str
    violations: List[str] = field(default_factory=list)
    checked_reads: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if not self.ok:
            raise SpecificationViolation(
                f"{self.property_name} violated:\n  " +
                "\n  ".join(self.violations))

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (f"CheckResult({self.property_name}: {status}, "
                f"{self.checked_reads} reads checked)")


def _is_bottom(value: Any) -> bool:
    return isinstance(value, _Bottom)


# ---------------------------------------------------------------------------
# Safety
# ---------------------------------------------------------------------------


def check_safety(history: History) -> CheckResult:
    """A READ with no concurrent WRITE returns the last written value."""
    result = CheckResult("safety")
    for read in history.reads(complete_only=True):
        if history.concurrent_writes(read):
            continue  # concurrent READs are unconstrained
        result.checked_reads += 1
        last_write = history.last_preceding_write(read)
        expected = BOTTOM if last_write is None else last_write.argument
        if read.result != expected and not (
                _is_bottom(read.result) and _is_bottom(expected)):
            result.violations.append(
                f"{read.describe()} expected {expected!r} "
                f"(last write: "
                f"{last_write.describe() if last_write else 'none'})")
    return result


# ---------------------------------------------------------------------------
# Regularity
# ---------------------------------------------------------------------------


def check_regularity(history: History) -> CheckResult:
    """The three regularity clauses of Section 2.2."""
    result = CheckResult("regularity")
    writes = history.writes()
    written_values = [w.argument for w in writes]
    for read in history.reads(complete_only=True):
        result.checked_reads += 1
        value = read.result
        # Clause (1): the value was written (val_k for some k, val_0 = ⊥).
        if not _is_bottom(value) and value not in written_values:
            result.violations.append(
                f"{read.describe()} returned a value never written")
            continue
        # Clause (2): no stale read past a preceding WRITE.
        last_write = history.last_preceding_write(read)
        k_floor = (last_write.write_index or 0) if last_write else 0
        if k_floor >= 1:
            if _is_bottom(value):
                result.violations.append(
                    f"{read.describe()} returned ⊥ although "
                    f"wr_{k_floor} precedes it")
                continue
            admissible = [k for k in history.write_indices_of_value(value)
                          if k >= k_floor]
            if not admissible:
                result.violations.append(
                    f"{read.describe()} returned val_"
                    f"{history.write_indices_of_value(value)} but "
                    f"wr_{k_floor} precedes the read")
                continue
        # Clause (3): the write of the returned value precedes or is
        # concurrent with the read (no reads from the future).
        if not _is_bottom(value):
            candidates = history.write_indices_of_value(value)
            feasible = False
            for k in candidates:
                write = next(w for w in writes if w.write_index == k)
                if not read.precedes(write):
                    feasible = True
                    break
            if not feasible:
                result.violations.append(
                    f"{read.describe()} returned a value written only by "
                    f"WRITEs it strictly precedes")
    return result


# ---------------------------------------------------------------------------
# Atomicity
# ---------------------------------------------------------------------------


def check_atomicity(history: History) -> CheckResult:
    """Regularity + no new/old inversion (SWMR atomicity).

    Reads are assigned the write index they observed (resolving repeated
    values optimistically); for any two complete reads ``rd1`` preceding
    ``rd2`` the observed indices must be monotone.
    """
    result = check_regularity(history)
    result.property_name = "atomicity"
    if not result.ok:
        return result

    reads = history.reads(complete_only=True)

    def feasible_indices(read: OperationRecord) -> List[int]:
        if _is_bottom(read.result):
            return [0]
        ks = []
        for k in history.write_indices_of_value(read.result):
            write = next(w for w in history.writes() if w.write_index == k)
            if read.precedes(write):
                continue  # clause (3) rules it out
            ks.append(k)
        return ks or [0]

    # Greedy monotone assignment over reads sorted by invocation; sound for
    # the single-writer case because feasible index sets are intervals in
    # practice (each value written once in our workloads) -- and when a
    # value repeats, taking the maximal feasible index minimizes future
    # conflicts.
    chosen: List[tuple] = []  # (read, k)
    for read in reads:
        floor = 0
        for prev, k_prev in chosen:
            if prev.precedes(read):
                floor = max(floor, k_prev)
        ks = [k for k in feasible_indices(read) if k >= floor]
        if not ks:
            result.violations.append(
                f"new/old inversion: {read.describe()} must observe "
                f"k >= {floor} but can only observe "
                f"{feasible_indices(read)}")
            continue
        chosen.append((read, max(ks)))
    return result


# ---------------------------------------------------------------------------
# Wait-freedom
# ---------------------------------------------------------------------------


def check_wait_freedom(history: History,
                       crashed_clients: Optional[set] = None) -> CheckResult:
    """Every operation by a non-crashed client completed."""
    crashed = crashed_clients or set()
    result = CheckResult("wait-freedom")
    for record in history.operations():
        if record.client in crashed:
            continue
        result.checked_reads += 1
        if not record.complete:
            result.violations.append(
                f"{record.describe()} never completed although "
                f"{record.client!r} did not crash")
    return result


# ---------------------------------------------------------------------------
# Round complexity
# ---------------------------------------------------------------------------


def check_round_complexity(history: History, max_read_rounds: int,
                           max_write_rounds: int) -> CheckResult:
    """Every complete operation used at most the advertised rounds."""
    result = CheckResult("round-complexity")
    for record in history.operations():
        if not record.complete:
            continue
        result.checked_reads += 1
        bound = max_read_rounds if record.kind == READ else max_write_rounds
        if record.rounds_used > bound:
            result.violations.append(
                f"{record.describe()} used {record.rounds_used} rounds "
                f"(bound {bound})")
    return result
