"""Small-scope schedule exploration: model checking tiny configurations.

Randomized fuzzing samples the schedule space; this module *enumerates*
it.  Given a scenario factory (a function building a
:class:`~repro.system.StorageSystem` with operations already invoked) the
explorer branches over every scheduler choice -- which deliverable
message to deliver next -- and checks an invariant in every reachable
*terminal* state (network quiescent).  With a deterministic protocol the
reachable terminal states are exactly the outcomes of every legal
asynchronous schedule, so a clean exploration is a proof-by-exhaustion
for that scenario size.

State explosion is tamed three ways:

* **deduplication** -- states are fingerprinted (pickled kernel essence);
  commuting deliveries converge to the same state and are explored once;
* **bounds** -- ``max_states`` caps the frontier; hitting the cap sets
  ``truncated`` (the verdict is then "no violation found within bound");
* **sampling mode** -- :func:`sample_schedules` runs seeded random walks
  instead, for scenarios beyond exhaustive reach.

A violation comes back with the exact delivery order that produced it,
replayable via :class:`repro.sim.ReplayScheduler`.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle: system imports spec
    from ..system import StorageSystem

#: Builds a fresh scenario: a system with pending (invoked) operations.
ScenarioFactory = Callable[[], "StorageSystem"]
#: Invariant over a terminal system; returns a list of violation strings.
Invariant = Callable[["StorageSystem"], List[str]]


@dataclass
class ExplorationResult:
    """Outcome of a schedule exploration."""

    terminal_states: int = 0
    distinct_states: int = 0
    deliveries_executed: int = 0
    truncated: bool = False
    violations: List[str] = field(default_factory=list)
    counterexample_schedule: Optional[List[int]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        extra = " (TRUNCATED)" if self.truncated else ""
        return (f"explored {self.distinct_states} states, "
                f"{self.terminal_states} terminal, "
                f"{self.deliveries_executed} deliveries: {status}{extra}")


def _fingerprint(system: "StorageSystem") -> bytes:
    """Best-effort state digest; collisions impossible, misses harmless.

    Captures what determines future behaviour: object automata state,
    pending client-operation state, and the multiset of in-transit
    messages.  Trace/recorder state is deliberately excluded -- it does
    not influence protocol decisions.
    """
    kernel = system.kernel
    objects = sorted(
        (repr(pid), pickle.dumps(automaton.__dict__, protocol=4))
        for pid, automaton in kernel._objects.items()
    )
    operations = sorted(
        (repr(client), register_id, pickle.dumps(
            {k: v for k, v in handle.operation.__dict__.items()
             if k not in ("operation_id",)}, protocol=4))
        for client, per_register in kernel._pending_ops.items()
        for register_id, handle in per_register.items()
    )
    in_transit = sorted(
        (repr(env.sender), repr(env.receiver),
         pickle.dumps(env.payload, protocol=4))
        for env in kernel.network.in_transit()
    )
    digest = hashlib.sha256()
    digest.update(pickle.dumps((objects, operations, in_transit),
                               protocol=4))
    return digest.digest()


def _copy_state(system: "StorageSystem") -> "StorageSystem":
    """Fast state copy: pickle round-trip with deepcopy fallback.

    Pickling is ~2.5x faster than deepcopy for kernel graphs; scenarios
    whose holds/schedulers capture unpicklable closures fall back.
    """
    try:
        return pickle.loads(pickle.dumps(system, protocol=4))
    except Exception:
        return copy.deepcopy(system)


def explore_schedules(scenario: ScenarioFactory, invariant: Invariant,
                      max_states: int = 20_000,
                      stop_at_first_violation: bool = True,
                      ) -> ExplorationResult:
    """Exhaustively (bounded) explore delivery orders of a scenario.

    Hint: build scenario systems with ``trace_enabled=False`` -- the
    explorer threads its own delivery schedule alongside each state, so
    counterexamples replay without kernel traces, and copies stay small.
    """
    result = ExplorationResult()
    root = scenario()
    seen: Set[bytes] = {_fingerprint(root)}
    stack: List[tuple] = [(root, ())]  # (system, schedule of envelope ids)
    result.distinct_states = 1

    while stack:
        state, schedule = stack.pop()
        deliverable = state.kernel.network.deliverable(
            state.kernel.now, state.kernel.is_alive)
        if not deliverable:
            result.terminal_states += 1
            failures = invariant(state)
            if failures:
                result.violations.extend(failures)
                result.counterexample_schedule = list(schedule)
                if stop_at_first_violation:
                    return result
            continue
        for envelope in deliverable:
            if result.distinct_states >= max_states:
                result.truncated = True
                return result
            child = _copy_state(state)
            if not child.kernel.deliver_by_id(envelope.envelope_id):
                continue  # should not happen; defensive
            result.deliveries_executed += 1
            fingerprint = _fingerprint(child)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            result.distinct_states += 1
            stack.append((child, schedule + (envelope.envelope_id,)))
    return result


def sample_schedules(scenario: ScenarioFactory, invariant: Invariant,
                     samples: int = 200, seed: int = 0,
                     max_steps_per_run: int = 100_000,
                     ) -> ExplorationResult:
    """Seeded random walks through the schedule space (beyond-bound tier)."""
    result = ExplorationResult()
    rng = random.Random(seed)
    for _ in range(samples):
        system = scenario()
        schedule: List[int] = []
        while True:
            deliverable = system.kernel.network.deliverable(
                system.kernel.now, system.kernel.is_alive)
            if not deliverable:
                break
            choice = rng.choice(deliverable)
            system.kernel.deliver_by_id(choice.envelope_id)
            schedule.append(choice.envelope_id)
            result.deliveries_executed += 1
            if len(schedule) > max_steps_per_run:
                result.truncated = True
                break
        result.terminal_states += 1
        failures = invariant(system)
        if failures:
            result.violations.extend(failures)
            result.counterexample_schedule = schedule
            return result
    result.distinct_states = result.terminal_states  # walks, not states
    return result
