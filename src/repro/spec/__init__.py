"""Register specifications and history checkers (Section 2.2)."""

from .checkers import (CheckResult, check_atomicity,
                       check_fast_read_freshness, check_mwmr_atomicity,
                       check_mwmr_regularity, check_per_register,
                       check_regularity, check_round_complexity,
                       check_safety, check_snapshot_consistency,
                       check_wait_freedom)
from .explore import (ExplorationResult, explore_schedules,
                      sample_schedules)
from .histories import (History, OperationRecord, READ, SnapshotRecord,
                        WRITE)
from .recorder import HistoryRecorder

__all__ = [
    "ExplorationResult",
    "explore_schedules",
    "sample_schedules",
    "History",
    "OperationRecord",
    "SnapshotRecord",
    "READ",
    "WRITE",
    "HistoryRecorder",
    "CheckResult",
    "check_safety",
    "check_regularity",
    "check_atomicity",
    "check_mwmr_regularity",
    "check_mwmr_atomicity",
    "check_fast_read_freshness",
    "check_per_register",
    "check_snapshot_consistency",
    "check_wait_freedom",
    "check_round_complexity",
]
