"""Bridges the simulator's operation lifecycle into a :class:`History`.

Attach a :class:`HistoryRecorder` to a kernel and every invocation /
completion is captured with globally ordered sequence numbers; the
resulting history feeds the checkers.  WRITE indices (the paper's
``wr_k``) are assigned in invocation order, which is the natural order of
the single writer.
"""

from __future__ import annotations

from typing import Optional

from ..sim.kernel import OperationHandle, SimKernel
from ..types import DEFAULT_REGISTER
from .histories import History, READ, WRITE


class HistoryRecorder:
    """Records kernel operations into a history."""

    def __init__(self, history: Optional[History] = None):
        self.history = history if history is not None else History()
        self._write_count = 0

    def attach(self, kernel: SimKernel) -> "HistoryRecorder":
        kernel.on_invoke(self._on_invoke)
        kernel.on_complete(self._on_complete)
        return self

    # ------------------------------------------------------------------
    def _on_invoke(self, handle: OperationHandle) -> None:
        operation = handle.operation
        kind = operation.kind
        write_index = None
        argument = None
        if kind == WRITE:
            self._write_count += 1
            write_index = self._write_count
            argument = getattr(operation, "value", None)
        self.history.record_invocation(
            operation_id=operation.operation_id,
            client=operation.client_id,
            kind=kind if kind in (READ, WRITE) else READ,
            argument=argument,
            at=handle.invoked_at,
            write_index=write_index,
            register=getattr(operation, "register_id", DEFAULT_REGISTER),
        )

    def _on_complete(self, handle: OperationHandle) -> None:
        operation = handle.operation
        self.history.record_completion(
            operation_id=operation.operation_id,
            result=operation.result,
            at=handle.completed_at or 0.0,
            rounds_used=operation.rounds_used,
            tag=getattr(operation, "tag", None),
            fast=getattr(operation, "fast_hit", False),
        )
