"""Operation histories: the raw material of every correctness check.

A :class:`History` is the externally observable part of a run -- for each
operation its client, kind, argument/result and the *order* of invocation
and response events.  Precedence follows Section 2.2: ``op1`` precedes
``op2`` iff ``op1``'s response event occurs before ``op2``'s invocation
event; operations neither of which precedes the other are *concurrent*.

Ordering uses a global event sequence number rather than virtual time:
distinct events may share a virtual timestamp (zero-delay schedules), but
the kernel processes them in a definite order, and that order is what the
definitions quantify over.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..types import BOTTOM, DEFAULT_REGISTER, ProcessId, WriterTag

READ = "READ"
WRITE = "WRITE"


@dataclass
class OperationRecord:
    """One operation's observable lifecycle."""

    operation_id: int
    client: ProcessId
    kind: str
    invoked_seq: int
    invoked_at: float
    argument: Any = None          # value written (WRITE only)
    result: Any = None            # value returned (set on completion)
    completed_seq: Optional[int] = None
    completed_at: Optional[float] = None
    rounds_used: int = 0
    write_index: Optional[int] = None  # k for the k-th WRITE (1-based)
    register: str = DEFAULT_REGISTER   # the register the op addressed
    #: the (epoch, writer_id) tag installed (WRITE) / observed (READ);
    #: recorded at completion, None when the protocol does not report one.
    tag: Optional[WriterTag] = None
    #: whether a READ completed on the fast (lease-probe) path; fast reads
    #: are held to the same clauses as classic ones by every checker, and
    #: the flag lets tests/benches assert that specifically.
    fast: bool = False

    @property
    def complete(self) -> bool:
        return self.completed_seq is not None

    def precedes(self, other: "OperationRecord") -> bool:
        """Response of self before invocation of other (Section 2.2)."""
        return (self.completed_seq is not None
                and self.completed_seq < other.invoked_seq)

    def concurrent_with(self, other: "OperationRecord") -> bool:
        return not self.precedes(other) and not other.precedes(self)

    def describe(self) -> str:
        span = (f"[{self.invoked_seq}..{self.completed_seq}]"
                if self.complete else f"[{self.invoked_seq}..pending]")
        tag = "" if self.register == DEFAULT_REGISTER else \
            f"@{self.register} "
        if self.kind == WRITE:
            return (f"WRITE#{self.operation_id}({self.argument!r}) {tag}"
                    f"k={self.write_index} {span}")
        return f"READ#{self.operation_id} {tag}-> {self.result!r} {span}"


@dataclass
class SnapshotRecord:
    """One multi-key snapshot's observable lifecycle and returned cut.

    A snapshot is a composite operation: many per-register reads whose
    results are published together as one consistent *cut* (register ->
    observed :class:`~repro.types.WriterTag`).  The record keeps the
    snapshot's own invocation/response events -- spanning all component
    reads -- and the cut, which is what
    :func:`~repro.spec.checkers.check_snapshot_consistency` validates
    against the write history.
    """

    snapshot_id: int
    client: Optional[ProcessId]
    invoked_seq: int
    completed_seq: int
    #: register -> tag of the version the snapshot returned (TAG0 = ⊥).
    cut: Dict[str, WriterTag]
    #: register -> value returned, when the recorder kept them.
    values: Optional[Dict[str, Any]] = None

    def precedes(self, other: "OperationRecord") -> bool:
        return self.completed_seq < other.invoked_seq

    def describe(self) -> str:
        keys = ",".join(sorted(self.cut))
        return (f"SNAPSHOT#{self.snapshot_id}[{keys}] "
                f"[{self.invoked_seq}..{self.completed_seq}]")


class History:
    """An append-only collection of operation records."""

    def __init__(self) -> None:
        self._records: Dict[int, OperationRecord] = {}
        self._seq = itertools.count(1)
        self._write_count = 0
        self._snapshots: List[SnapshotRecord] = []
        self._snapshot_count = 0
        #: (register, new tag) -> original tag, for control-plane
        #: *republications* (shard-handoff replays, replica re-installs):
        #: the same value re-installed under a fresher tag.  Checkers
        #: normalize observed tags through this map, so a republication
        #: is invisible to the specifications -- exactly as a write-back
        #: of an already-written value should be.
        self._republications: Dict[Tuple[str, WriterTag], WriterTag] = {}

    # -- recording ----------------------------------------------------------
    def record_invocation(self, operation_id: int, client: ProcessId,
                          kind: str, argument: Any = None,
                          at: float = 0.0,
                          write_index: Optional[int] = None,
                          register: str = DEFAULT_REGISTER,
                          ) -> OperationRecord:
        if operation_id in self._records:
            raise ValueError(f"operation {operation_id} invoked twice")
        if kind == WRITE and write_index is None:
            # Recorders that don't track the paper's wr_k numbering (the
            # service tier) get invocation-order indices assigned here,
            # which is exactly wr_k for single-writer histories; the
            # multi-writer checkers order by tag and ignore these.
            self._write_count += 1
            write_index = self._write_count
        record = OperationRecord(
            operation_id=operation_id,
            client=client,
            kind=kind,
            invoked_seq=next(self._seq),
            invoked_at=at,
            argument=argument,
            write_index=write_index,
            register=register,
        )
        self._records[operation_id] = record
        return record

    def discard_invocation(self, operation_id: int) -> None:
        """Remove the record of an operation that never actually started.

        Admission-time recorders (the service tier) may roll an operation
        back before its first message is sent -- e.g. a batch rejected by
        backpressure.  Externally no invocation event happened, so the
        record must go; completed operations are immutable history and
        refuse removal.
        """
        record = self._records.get(operation_id)
        if record is None:
            return
        if record.complete:
            raise ValueError(
                f"operation {operation_id} completed; refusing to discard")
        del self._records[operation_id]

    def record_completion(self, operation_id: int, result: Any,
                          at: float = 0.0,
                          rounds_used: int = 0,
                          tag: Optional[WriterTag] = None,
                          fast: bool = False,
                          ) -> OperationRecord:
        record = self._records[operation_id]
        if record.complete:
            raise ValueError(f"operation {operation_id} completed twice")
        record.completed_seq = next(self._seq)
        record.completed_at = at
        record.result = result
        record.rounds_used = rounds_used
        record.tag = tag
        record.fast = fast
        return record

    # -- snapshot recording -------------------------------------------------
    def mark(self) -> int:
        """Allocate one event in the global order and return its number.

        Composite operations (snapshots) call this at *invocation* time so
        their span covers every component read recorded afterwards; the
        matching response event is allocated by :meth:`record_snapshot`.
        """
        return next(self._seq)

    def record_snapshot(self, invoked_seq: int,
                        cut: Dict[str, WriterTag],
                        values: Optional[Dict[str, Any]] = None,
                        client: Optional[ProcessId] = None
                        ) -> SnapshotRecord:
        """Record a completed snapshot; its response event is allocated now.

        ``invoked_seq`` must come from :meth:`mark` called before the
        snapshot's first component read, so precedence against writes is
        exactly the snapshot's real span.
        """
        self._snapshot_count += 1
        record = SnapshotRecord(
            snapshot_id=self._snapshot_count,
            client=client,
            invoked_seq=invoked_seq,
            completed_seq=next(self._seq),
            cut=dict(cut),
            values=dict(values) if values is not None else None,
        )
        self._snapshots.append(record)
        return record

    def snapshots(self) -> List[SnapshotRecord]:
        return list(self._snapshots)

    # -- republications (control-plane replays) -----------------------------
    def record_republication(self, register: str, new_tag: WriterTag,
                             of_tag: WriterTag) -> None:
        """Declare ``new_tag`` a re-installation of ``of_tag``'s value.

        Reconfiguration replays a moved register's last value into its
        target shard group under the fence epoch -- a *duplicate* of an
        existing version, not a new client write.  The replay itself is
        not recorded as an operation; this alias lets the checkers remap
        a read that observed the replayed tag back onto the version it
        duplicates.
        """
        if new_tag == of_tag:
            return
        self._republications[(register, new_tag)] = of_tag

    def resolve_tag(self, register: str,
                    tag: Optional[WriterTag]) -> Optional[WriterTag]:
        """Follow republication aliases to the originating write's tag.

        Chains (a register handed off twice republishes a republication)
        are followed to the fixpoint.
        """
        while tag is not None:
            original = self._republications.get((register, tag))
            if original is None:
                return tag
            tag = original
        return tag

    def has_record(self, operation_id: int) -> bool:
        return operation_id in self._records

    # -- queries ----------------------------------------------------------------
    def operations(self) -> List[OperationRecord]:
        return sorted(self._records.values(), key=lambda r: r.invoked_seq)

    def reads(self, complete_only: bool = False) -> List[OperationRecord]:
        return [r for r in self.operations()
                if r.kind == READ and (r.complete or not complete_only)]

    def writes(self) -> List[OperationRecord]:
        """All WRITEs in invocation order (= the paper's wr_1, wr_2, ...)."""
        return [r for r in self.operations() if r.kind == WRITE]

    def get(self, operation_id: int) -> OperationRecord:
        return self._records[operation_id]

    def value_of_write(self, k: int) -> Any:
        """``val_k``; ``val_0 = ⊥``."""
        if k == 0:
            return BOTTOM
        for record in self.writes():
            if record.write_index == k:
                return record.argument
        raise KeyError(f"no write with index {k}")

    def write_indices_of_value(self, value: Any) -> List[int]:
        """All ``k >= 1`` with ``val_k == value`` (values may repeat)."""
        return [r.write_index for r in self.writes()
                if r.argument == value and r.write_index is not None]

    def last_preceding_write(self, read: OperationRecord
                             ) -> Optional[OperationRecord]:
        """The wr_k with maximal k that precedes ``read``, if any."""
        preceding = [w for w in self.writes() if w.precedes(read)]
        if not preceding:
            return None
        return max(preceding, key=lambda w: w.write_index or 0)

    def concurrent_writes(self, read: OperationRecord
                          ) -> List[OperationRecord]:
        return [w for w in self.writes() if w.concurrent_with(read)]

    # -- multi-writer views --------------------------------------------------
    @property
    def is_multi_writer(self) -> bool:
        """Whether WRITEs were issued by more than one client process."""
        return len({w.client for w in self.writes()}) > 1

    def writes_by_tag(self) -> List[OperationRecord]:
        """Completed tagged WRITEs in tag order -- the MWMR version order.

        Tags are totally ordered (epoch first, writer id tie-break), so
        this is the serialization the multi-writer checkers validate reads
        against.  Untagged or incomplete writes are excluded; the
        tag-aware checkers flag them separately where it matters.
        """
        tagged = [w for w in self.writes()
                  if w.tag is not None and w.complete]
        return sorted(tagged, key=lambda w: w.tag)

    def write_with_tag(self, tag: WriterTag) -> Optional[OperationRecord]:
        for w in self.writes():
            if w.tag == tag:
                return w
        return None

    def last_preceding_write_by_tag(self, read: OperationRecord
                                    ) -> Optional[OperationRecord]:
        """The maximal-*tag* completed write preceding ``read`` (MWMR)."""
        preceding = [w for w in self.writes_by_tag() if w.precedes(read)]
        return preceding[-1] if preceding else None

    # -- per-register views -------------------------------------------------
    def registers(self) -> List[str]:
        """All register ids operations in this history addressed."""
        return sorted({r.register for r in self._records.values()})

    def for_register(self, register: str) -> "History":
        """The sub-history of operations addressing one register.

        Event sequence numbers and write indices are preserved (they are
        globally unique), so precedence within the sub-history is exactly
        precedence in the full history restricted to that register --
        which is what per-register safety/regularity/atomicity quantify
        over when many registers share a replica set.
        """
        sub = History()
        sub._records = {op_id: record
                        for op_id, record in self._records.items()
                        if record.register == register}
        sub._republications = {
            key: original
            for key, original in self._republications.items()
            if key[0] == register
        }
        return sub

    def render(self) -> str:
        return "\n".join(record.describe() for record in self.operations())

    def __len__(self) -> int:
        return len(self._records)
