"""Simulated data authentication (digital signatures without the math).

The paper proves its lower bound for *unauthenticated* data and notes
(Section 1, item 1) that with authenticated data a regular storage with
fast reads *and* writes is straightforward [15].  To make that comparison
executable, this package provides deterministic keyed "signatures":

* a :class:`Signer` holds a secret and produces :class:`SignedValue`
  envelopes whose tag is an HMAC over a canonical encoding;
* anyone holding the :class:`PublicKey` can verify.

Inside the simulation the unforgeability property is what matters, not the
cryptography: a Byzantine object cannot mint a valid tag for a value the
writer never signed because it does not hold the secret -- exactly the
assumption [19] buys in the real world.  (Do **not** use this module for
actual security; HMAC-SHA256 here stands in for RSA signatures purely to
reproduce protocol behaviour.)
"""

from .signatures import (AuthenticationError, PublicKey, SignedValue, Signer,
                         forge_attempt)

__all__ = [
    "Signer",
    "PublicKey",
    "SignedValue",
    "AuthenticationError",
    "forge_attempt",
]
