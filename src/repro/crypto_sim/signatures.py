"""Deterministic keyed signatures over timestamp-value pairs."""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from ..errors import AuthenticationError
from ..types import TimestampValue, _Bottom


def _canonical(value: Any) -> bytes:
    """Canonical byte encoding of a signable value.

    Uses ``repr`` of a small, controlled vocabulary (timestamps, strings,
    numbers, ⊥); signing arbitrary objects is refused rather than risking
    ambiguous encodings.
    """
    if isinstance(value, TimestampValue):
        head = b"tsval|" + str(value.ts).encode()
        if value.wid:
            # MWMR tags sign the writer id too; the 0 case keeps every
            # legacy signature byte-identical.
            head += b"." + str(value.wid).encode()
        return head + b"|" + _canonical(value.value)
    if isinstance(value, _Bottom):
        return b"bottom"
    if isinstance(value, (str, int, float, bool)) or value is None:
        return f"{type(value).__name__}|{value!r}".encode()
    if isinstance(value, bytes):
        return b"bytes|" + value
    if isinstance(value, tuple):
        return b"tuple|" + b"|".join(_canonical(v) for v in value)
    raise AuthenticationError(
        f"refusing to sign value of unsupported type {type(value).__name__}")


@dataclass(frozen=True)
class SignedValue:
    """A payload plus its authentication tag."""

    payload: Any
    key_id: str
    tag: bytes

    def __repr__(self) -> str:
        return f"Signed({self.payload!r} by {self.key_id})"


@dataclass(frozen=True)
class PublicKey:
    """Verification capability for one signer.

    The simulation cheats benignly: verification recomputes the HMAC with
    the embedded secret, but the *secret never travels in messages* --
    Byzantine automata only ever see :class:`SignedValue` envelopes, so
    within the model they cannot forge.
    """

    key_id: str
    _secret: bytes

    def verify(self, signed: SignedValue) -> bool:
        if signed.key_id != self.key_id:
            return False
        expected = hmac.new(self._secret, _canonical(signed.payload),
                            hashlib.sha256).digest()
        return hmac.compare_digest(expected, signed.tag)

    def require(self, signed: SignedValue) -> Any:
        if not self.verify(signed):
            raise AuthenticationError(
                f"invalid signature on {signed.payload!r}")
        return signed.payload


class Signer:
    """Holds the signing secret for one identity."""

    def __init__(self, key_id: str, seed: int = 0):
        self.key_id = key_id
        self._secret = hashlib.sha256(
            f"repro-signer|{key_id}|{seed}".encode()).digest()

    def sign(self, payload: Any) -> SignedValue:
        tag = hmac.new(self._secret, _canonical(payload),
                       hashlib.sha256).digest()
        return SignedValue(payload=payload, key_id=self.key_id, tag=tag)

    def public_key(self) -> PublicKey:
        return PublicKey(key_id=self.key_id, _secret=self._secret)


def forge_attempt(key_id: str, payload: Any) -> SignedValue:
    """What a Byzantine process can do: emit a tag it made up.

    Exists so tests can assert that forgeries are rejected.
    """
    return SignedValue(payload=payload, key_id=key_id,
                       tag=b"\x00" * 32)
