"""Protocol message schema and size accounting.

Message classes mirror the message types of the paper's figures:

* Figure 2/3 (write protocol): :class:`Pw`, :class:`PwAck`, :class:`W`,
  :class:`WriteAck`;
* Figure 3/4 (safe read): :class:`ReadRequest` (READ1/READ2) and
  :class:`ReadAck` (READ1_ACK/READ2_ACK) carrying ``pw`` and ``w`` fields;
* Figure 5/6 (regular read): :class:`HistoryReadAck` carrying a slice of the
  object's history.

Baseline protocols define their own payloads in their subpackages; they all
derive from :class:`Message` so the simulator and the metrics pipeline treat
them uniformly.

Sizes are *estimates* in bytes computed structurally (integers count 8
bytes, strings their length, containers the sum of their parts).  Absolute
values are unimportant; what matters for experiment E6 is the *relative*
growth of full-history versus suffix-shipping messages.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

from .types import (DEFAULT_REGISTER, TimestampValue, TsrArray, WriterTag,
                    WriteTuple, _Bottom, as_tag)


def estimate_size(value: Any) -> int:
    """Structural size estimate (bytes) of a message payload component."""
    if value is None or isinstance(value, _Bottom):
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (str, bytes)):
        return len(value)
    if isinstance(value, TimestampValue):
        return 8 + estimate_size(value.value)
    if isinstance(value, TsrArray):
        return 8 * value.num_objects * value.num_readers
    if isinstance(value, WriteTuple):
        return estimate_size(value.tsval) + estimate_size(value.tsrarray)
    if isinstance(value, Mapping):
        return sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(estimate_size(item) for item in value)
    if isinstance(value, Message):
        return value.estimated_size()
    # Fallback: be generous rather than crash on exotic payloads.
    return len(repr(value))


@dataclass(frozen=True)
class Message:
    """Base class of every protocol payload.

    Subclasses are frozen dataclasses; the simulator treats payloads as
    opaque immutable values.  ``kind`` is a stable wire-format name used in
    traces and by the asyncio JSON transport.  The base declares empty
    ``__slots__`` so subclasses may opt into slotted layouts (histories
    ship millions of :class:`HistoryEntry` instances).

    ``wire_inline`` marks classes that only ever travel *inside* another
    message's payload (never as a standalone frame); the static registry
    check exempts them from codec-vocabulary parity.
    """

    __slots__ = ()

    wire_inline: ClassVar[bool] = False

    @property
    def kind(self) -> str:
        return type(self).__name__

    def estimated_size(self) -> int:
        total = 2  # type tag
        for f in fields(self):
            total += estimate_size(getattr(self, f.name))
        return total


def register_of(payload: Any) -> str:
    """The register a payload addresses.

    Payloads without a ``register_id`` field (legacy tests, lower-bound
    victim messages, raw probe values) belong to the default register, so
    every pre-multiplexing caller keeps its behaviour.
    """
    return getattr(payload, "register_id", DEFAULT_REGISTER)


# ---------------------------------------------------------------------------
# Write protocol (Figure 2 / Figure 3) -- shared by safe and regular storage
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Pw(Message):
    """First write round, ``PW<ts, pw, w>``.

    Carries the *new* timestamp-value pair ``pw`` and the *previous* write's
    tuple ``w`` (so even objects that missed the previous W round learn it).
    ``wid`` is the writer id of the MWMR tag ``(ts, wid)``; legacy frames
    omit it and decode as writer 0.
    """

    ts: int
    pw: TimestampValue
    w: WriteTuple
    register_id: str = DEFAULT_REGISTER
    wid: int = 0

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.ts, self.wid)


@dataclass(frozen=True, slots=True)
class PwAck(Message):
    """``PW_ACK_i<ts, tsr>``: object ``i`` reports its reader timestamps."""

    ts: int
    object_index: int
    tsr: Tuple[int, ...]
    register_id: str = DEFAULT_REGISTER
    wid: int = 0


@dataclass(frozen=True, slots=True)
class W(Message):
    """Second write round, ``W<ts, pw, w>`` with the completed tuple ``w``."""

    ts: int
    pw: TimestampValue
    w: WriteTuple
    register_id: str = DEFAULT_REGISTER
    wid: int = 0

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.ts, self.wid)


@dataclass(frozen=True, slots=True)
class WriteAck(Message):
    """``WRITE_ACK_i<ts>``."""

    ts: int
    object_index: int
    register_id: str = DEFAULT_REGISTER
    wid: int = 0


# ---------------------------------------------------------------------------
# Tag discovery (MWMR write path, round 0)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TagQuery(Message):
    """Writer-to-object: report the highest write tag you hold.

    The MWMR read-timestamp phase: before installing a value a writer asks
    a quorum for the maximum ``(epoch, writer_id)`` tag, bumps the epoch,
    and tie-breaks with its own writer id.  ``nonce`` matches acks to the
    issuing operation (operation ids are process-wide unique).
    """

    nonce: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True, slots=True)
class TagQueryAck(Message):
    """``TAG_ACK_i<epoch, wid>``: the highest tag object ``i`` holds."""

    nonce: int
    object_index: int
    epoch: int
    wid: int = 0
    register_id: str = DEFAULT_REGISTER

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.epoch, self.wid)


# ---------------------------------------------------------------------------
# Tag leases (contention-adaptive fast reads)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LeaseProbe(Message):
    """Reader-to-object: is the tag I hold still the newest?

    The fast-read round.  A reader holding a certified tag ``(epoch, wid)``
    -- from a prior read, a write ack, or a snapshot collect -- broadcasts
    one probe instead of running full history collection.  Objects answer
    with their top tag, whether they hold the probed write *complete*, and
    whether the register is fenced; the reader's lease validation
    (:class:`~repro.automata.rounds.LeaseValidation`) decides fast-return
    versus classic fallback.  ``nonce`` matches acks to the probe (the
    reader's own ``tsr`` counter); probes never mutate object state.
    """

    nonce: int
    epoch: int
    reader_index: int
    wid: int = 0
    register_id: str = DEFAULT_REGISTER

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.epoch, self.wid)


@dataclass(frozen=True, slots=True)
class LeaseProbeAck(Message):
    """``LEASE_ACK_i<top_tag, holds, fenced>``: object ``i``'s lease verdict.

    ``epoch``/``wid`` report the object's *top* tag (its slot tag joined
    with the maximum history tag -- exactly what a
    :class:`TagQueryAck` reports).  ``holds`` is whether the object's
    history holds the *probed* tag with a complete write tuple, and
    ``fenced`` whether the register is (hard- or epoch-)fenced here.  Any
    top tag above the probed one, or any fence, refutes the lease.
    """

    nonce: int
    object_index: int
    epoch: int
    wid: int = 0
    holds: bool = False
    fenced: bool = False
    register_id: str = DEFAULT_REGISTER

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.epoch, self.wid)


# ---------------------------------------------------------------------------
# Epoch fencing (reconfiguration / shard handoff)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class EpochFence(Message):
    """Coordinator-to-object: refuse write rounds below ``epoch``.

    Installed during a shard handoff (:mod:`repro.service.reconfig`):
    after a quorum acknowledges the fence, no write with tag epoch
    ``< epoch`` can gather a quorum on this register, so the coordinator
    may snapshot and replay the register elsewhere without losing a
    completed write.  Fences only ever ratchet upward.

    ``hard`` retires the register at this replica set outright: *every*
    write round is refused, whatever its epoch.  Handoffs to another
    replica set use hard fences -- concurrent writers can chain tag
    discoveries past any finite epoch margin, but no epoch passes a
    hard fence.  Epoch fences remain for same-store re-installs
    (replica healing), where the coordinator's own replay must still
    get through.

    ``lift`` is the inverse control-plane verb: a later reconfiguration
    handing the register *back* to this replica set clears both fences
    before replaying.  Clients are non-malicious in the model (only
    objects are Byzantine), so honouring a lift does not weaken the
    fault assumptions -- and write arbitration still ignores any stale
    tag below the replayed one.
    """

    nonce: int
    epoch: int
    register_id: str = DEFAULT_REGISTER
    hard: bool = False
    lift: bool = False


@dataclass(frozen=True, slots=True)
class EpochFenceAck(Message):
    """``FENCE_ACK_i<epoch>``: the fence object ``i`` now enforces."""

    nonce: int
    object_index: int
    epoch: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True, slots=True)
class WriteFenced(Message):
    """Object-to-writer: a write round was refused by an epoch fence.

    ``epoch``/``wid``/``nonce`` echo the refused round so the writer can
    match the report to its in-flight operation; ``fence_epoch`` is the
    fence that refused it.  A writer aborts with
    :class:`~repro.errors.FencedWriteError` once ``b + 1`` distinct
    objects report the fence (a Byzantine minority cannot forge that).
    """

    object_index: int
    epoch: int
    fence_epoch: int
    wid: int = 0
    nonce: int = 0
    register_id: str = DEFAULT_REGISTER


# ---------------------------------------------------------------------------
# Safe read protocol (Figure 3 / Figure 4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ReadRequest(Message):
    """``READk<tsr'>`` for ``k in {1, 2}``.

    ``round_index`` is 1 or 2; ``tsr`` is the reader's fresh timestamp and
    ``reader_index`` identifies which ``tsr[j]`` field the object updates.
    ``from_ts`` is used only by the Section 5.1 optimized regular reader to
    request a history suffix; the safe protocol leaves it ``None``.  It
    holds a :class:`~repro.types.WriterTag` (legacy senders may pass a
    bare epoch integer, meaning writer 0).
    """

    round_index: int
    tsr: int
    reader_index: int
    from_ts: Optional[WriterTag] = None
    register_id: str = DEFAULT_REGISTER

    def __post_init__(self) -> None:
        # Normalize legacy bare-epoch suffixes to writer-0 tags so callers
        # and codecs agree on one representation.
        object.__setattr__(self, "from_ts", as_tag(self.from_ts))


@dataclass(frozen=True, slots=True)
class ReadAck(Message):
    """``READk_ACK_i<tsr[j], pw, w>`` of the safe protocol (Figure 3)."""

    round_index: int
    tsr: int
    object_index: int
    pw: TimestampValue
    w: WriteTuple
    register_id: str = DEFAULT_REGISTER


# ---------------------------------------------------------------------------
# Regular read protocol (Figure 5 / Figure 6)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class HistoryEntry(Message):
    """One slot of an object's history: ``history_i[tag] = <pw, w>``.

    ``w`` may be ``None`` (the paper's ``nil``) when only the PW round of
    the corresponding write has been observed.  Slotted: histories carry
    one instance per write per object per ack, so the per-instance dict
    is pure overhead on the hottest allocation path.  ``wire_inline``:
    entries are encoded as values inside :class:`HistoryReadAck`
    payloads, never framed standalone.
    """

    wire_inline: ClassVar[bool] = True

    pw: Optional[TimestampValue]
    w: Optional[WriteTuple]


@dataclass(frozen=True, slots=True)
class HistoryReadAck(Message):
    """``READk_ACK_i<tsr[j], history_i>`` of the regular protocol.

    ``history`` maps write tags to :class:`HistoryEntry` (bare integer
    keys from legacy senders mean writer 0).  With the §5.1 optimization
    the mapping contains only tags ``>= from_ts`` of the triggering
    :class:`ReadRequest`.
    """

    round_index: int
    tsr: int
    object_index: int
    history: Mapping[WriterTag, HistoryEntry]
    register_id: str = DEFAULT_REGISTER

    def __post_init__(self) -> None:
        # Freeze the mapping so acks are hashable and immutable; normalize
        # legacy integer keys to writer-0 tags.  The all-tags case (every
        # internal sender) takes the single plain-copy path.
        history = self.history
        if all(type(tag) is WriterTag for tag in history):
            history = dict(history)
        else:
            history = {as_tag(tag): entry for tag, entry in history.items()}
        object.__setattr__(self, "history", history)

    @classmethod
    def from_tagged(cls, round_index: int, tsr: int, object_index: int,
                    history: Mapping[WriterTag, HistoryEntry],
                    register_id: str) -> "HistoryReadAck":
        """Fast constructor for already tag-keyed histories.

        Object automata key their slot histories by :class:`WriterTag`
        exclusively, so the ``__post_init__`` normalization scan is pure
        overhead on their (hottest) ack-construction path; this still
        snapshots the mapping, insulating the ack from future slot
        mutations.
        """
        ack = object.__new__(cls)
        set_ = object.__setattr__
        set_(ack, "round_index", round_index)
        set_(ack, "tsr", tsr)
        set_(ack, "object_index", object_index)
        set_(ack, "history", dict(history))
        set_(ack, "register_id", register_id)
        return ack

    def __hash__(self) -> int:  # history dict prevents default hash
        return hash((self.round_index, self.tsr, self.object_index,
                     self.register_id,
                     tuple(sorted(self.history.items(), key=lambda kv: kv[0]))))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HistoryReadAck)
            and self.round_index == other.round_index
            and self.tsr == other.tsr
            and self.object_index == other.object_index
            and self.register_id == other.register_id
            and dict(self.history) == dict(other.history)
        )


# ---------------------------------------------------------------------------
# Batching (service layer)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Batch(Message):
    """Several protocol messages between the same pair of processes.

    The multiplexed service tier coalesces same-step messages to the same
    destination -- typically one round of many registers' operations --
    into a single envelope, and objects coalesce the resulting replies the
    same way.  Transports treat a batch as one frame; receivers unwrap it
    and process the parts in order.  Batches never nest.
    """

    messages: Tuple[Message, ...]

    def __post_init__(self) -> None:
        if any(isinstance(m, Batch) for m in self.messages):
            raise ValueError("batches do not nest")


def unbatch(payload: Any) -> Tuple[Any, ...]:
    """The sequence of protocol messages an envelope carries (1 if unbatched)."""
    if isinstance(payload, Batch):
        return payload.messages
    return (payload,)


# ---------------------------------------------------------------------------
# Trace/debug helpers
# ---------------------------------------------------------------------------


def summarize(message: Message) -> str:
    """One-line human-readable rendering used by traces and examples."""
    if isinstance(message, Pw):
        return f"PW<ts={message.ts}, pw={message.pw!r}>"
    if isinstance(message, PwAck):
        return f"PW_ACK(s{message.object_index + 1}, ts={message.ts})"
    if isinstance(message, W):
        return f"W<ts={message.ts}, pw={message.pw!r}>"
    if isinstance(message, WriteAck):
        return f"WRITE_ACK(s{message.object_index + 1}, ts={message.ts})"
    if isinstance(message, TagQuery):
        return f"TAG_QUERY<nonce={message.nonce}>"
    if isinstance(message, TagQueryAck):
        return (f"TAG_ACK(s{message.object_index + 1}, "
                f"tag={message.tag!r})")
    if isinstance(message, LeaseProbe):
        return f"LEASE<nonce={message.nonce}, tag={message.tag!r}>"
    if isinstance(message, LeaseProbeAck):
        return (f"LEASE_ACK(s{message.object_index + 1}, "
                f"top={message.tag!r}, holds={message.holds}, "
                f"fenced={message.fenced})")
    if isinstance(message, EpochFence):
        return f"FENCE<epoch={message.epoch}>"
    if isinstance(message, EpochFenceAck):
        return (f"FENCE_ACK(s{message.object_index + 1}, "
                f"epoch={message.epoch})")
    if isinstance(message, WriteFenced):
        return (f"WRITE_FENCED(s{message.object_index + 1}, "
                f"epoch={message.epoch} < fence={message.fence_epoch})")
    if isinstance(message, ReadRequest):
        return f"READ{message.round_index}<tsr={message.tsr}>"
    if isinstance(message, ReadAck):
        return (
            f"READ{message.round_index}_ACK(s{message.object_index + 1}, "
            f"tsr={message.tsr}, pw={message.pw!r}, w={message.w!r})"
        )
    if isinstance(message, HistoryReadAck):
        return (
            f"READ{message.round_index}_ACK(s{message.object_index + 1}, "
            f"tsr={message.tsr}, |history|={len(message.history)})"
        )
    if isinstance(message, Batch):
        return f"BATCH[{len(message.messages)}]"
    return message.kind


__all__ = [
    "Message",
    "Pw",
    "PwAck",
    "W",
    "WriteAck",
    "TagQuery",
    "TagQueryAck",
    "LeaseProbe",
    "LeaseProbeAck",
    "EpochFence",
    "EpochFenceAck",
    "WriteFenced",
    "ReadRequest",
    "ReadAck",
    "HistoryEntry",
    "HistoryReadAck",
    "Batch",
    "unbatch",
    "register_of",
    "estimate_size",
    "summarize",
]
