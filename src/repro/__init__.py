"""repro -- "How Fast Can a Very Robust Read Be?" (PODC 2006), reproduced.

A production-quality Python library implementing the robust register
emulations of Guerraoui & Vukolić (PODC'06 / EPFL LPD-REPORT-2006-008):

* the optimally resilient (``S = 2t + b + 1``) **safe** SWMR storage with
  2-round READ and WRITE (Section 4);
* the **regular** variant with full histories and its cached-suffix
  optimization (Section 5);
* the mechanized **lower-bound adversary** showing no fast (1-round) READ
  exists with ``S <= 2t + 2b`` objects (Section 3, Figure 1);
* crash-only (ABD), passive-reader and authenticated **baselines**;
* a deterministic **simulation kernel** of the paper's model plus an
  asyncio runtime, consistency checkers, Byzantine behaviour library and a
  full experiment harness.

Quickstart::

    from repro import SafeStorageProtocol, StorageSystem, SystemConfig

    system = StorageSystem(SafeStorageProtocol(),
                           SystemConfig.optimal(t=2, b=1, num_readers=2))
    system.write("hello")
    assert system.read(reader_index=0) == "hello"
"""

from .api import (Cluster, Consistency, RetryPolicy, Session, Snapshot)
from .config import (SystemConfig, fast_read_impossibility_threshold,
                     optimal_resilience)
from .core.safe import SafeStorageProtocol
from .errors import (ConfigurationError, ConsistencyError, ProtocolError,
                     ReproError, ResilienceError, RetryExhaustedError,
                     SimulationError, SnapshotContentionError,
                     SpecificationViolation, WriterLeaseExhaustedError)
from .protocols import ATOMIC, REGULAR, SAFE, StorageProtocol
from .system import StorageSystem
from .types import (BOTTOM, TAG0, ProcessId, TimestampValue, TsrArray,
                    WRITER, WriterTag, WriteTuple, obj, reader, writer)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SystemConfig",
    "optimal_resilience",
    "fast_read_impossibility_threshold",
    "StorageSystem",
    "StorageProtocol",
    "SafeStorageProtocol",
    "SAFE",
    "REGULAR",
    "ATOMIC",
    "BOTTOM",
    "TAG0",
    "ProcessId",
    "TimestampValue",
    "TsrArray",
    "WriterTag",
    "WriteTuple",
    "WRITER",
    "obj",
    "reader",
    "writer",
    "ReproError",
    "ConfigurationError",
    "ConsistencyError",
    "ResilienceError",
    "RetryExhaustedError",
    "SimulationError",
    "SnapshotContentionError",
    "ProtocolError",
    "SpecificationViolation",
    "WriterLeaseExhaustedError",
    "Cluster",
    "Session",
    "Snapshot",
    "Consistency",
    "RetryPolicy",
]
