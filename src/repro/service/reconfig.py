"""Live replica-set reconfiguration: epoch-fenced shard handoff.

The paper's protocols assume a *static* set of base objects.  This
module closes the gap between that model and a deployable store: shard
groups can be **added** to and **drained** from a running
:class:`~repro.service.sharded.ShardedKVStore`, and crashed base objects
inside a :class:`~repro.service.store.MultiRegisterStore` can be
**replaced**, all while the store keeps serving traffic on unaffected
keys.

The epoch-fencing contract
==========================

Handoff of one register from a *source* replica set to a *target* uses
the MWMR ``(epoch, writer_id)`` tags as a fencing primitive.  For each
moved key the :class:`ReconfigCoordinator` runs:

1. **Discover** -- a quorum of source objects reports the highest tag it
   holds (:class:`~repro.messages.TagQuery`); let ``E`` be the maximum
   epoch observed.
2. **Fence** -- the coordinator installs a **hard** fence at a quorum
   (:class:`~repro.messages.EpochFence` with ``hard=True``, recorded at
   epoch ``F = E + 2``).  From then on, correct fenced objects *refuse
   every write round on this register* -- whatever its epoch -- and
   answer with :class:`~repro.messages.WriteFenced`; the handoff cannot
   rely on an epoch threshold alone, because chained concurrent tag
   discoveries (each writer observing the previous one's in-flight tag)
   can mint epochs past any finite margin.  A fenced write can gather
   at most ``t + b < S - t`` acknowledgments, so it aborts with
   :class:`~repro.errors.FencedWriteError` after ``b + 1`` fence
   reports.  Consequently **no write completes at the source after the
   fence quorum is installed** -- clients observe an explicit failure,
   never a silently lost write.
3. **Snapshot** -- a regular READ at the source.  Regular semantics
   guarantee the snapshot returns a value at least as fresh as every
   write that *completed* before the snapshot began; together with (2),
   the snapshot captures the register's last pre-handoff value.
4. **Replay** -- the coordinator seeds the target's writer-epoch floor
   to ``F - 1`` and writes the snapshot through the target's normal
   write path, so the replayed value carries tag epoch ``>= F`` --
   strictly above every pre-handoff tag.  Post-handoff writes continue above
   ``F``, keeping per-register tag order (and hence the multi-writer
   checkers, :func:`~repro.spec.checkers.check_mwmr_regularity`) intact
   across the handoff.
5. **Flip** -- after *all* moved keys are replayed, routing flips
   atomically (:meth:`~repro.service.sharded.ShardedKVStore.
   apply_reconfiguration`); reads of moved keys now observe the
   replayed value at the target.

During steps 1-4 puts/gets on unmoved keys proceed untouched (their
shard groups never see a fence), reads of moved keys keep being served
by the source, and writes to moved keys fail fast with
:class:`~repro.errors.FencedWriteError` (retry after the flip).

Known limits: a ``put_many`` batch that mixes a moving key with unmoved
ones aborts the whole batch when the moving key is fenced -- issue
single puts around a planned reconfiguration.  Reads racing the
snapshot on the *same reader index* are serialized by retrying on
:class:`~repro.errors.BusyRegisterError`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..automata.base import ClientOperation, ObjectAutomaton, Outgoing
from ..automata.rounds import TagDiscovery
from ..config import SystemConfig
from ..errors import (BackpressureError, BusyRegisterError,
                      ConfigurationError)
from ..messages import EpochFence, EpochFenceAck, TagQuery, TagQueryAck
from ..types import ProcessId, _Bottom, obj, writer
from .hashing import HashRing, key_position, owned_diff
from .sharded import ShardedKVStore
from .store import CONTROL_WRITER_INDEX, MultiRegisterStore

#: Epochs skipped above the discovered maximum.  ``+1`` covers writers
#: that finished tag discovery before the fence landed (they pick
#: ``E + 1``); the fence itself then sits one above that.
FENCE_MARGIN = 2


class FenceOperation(ClientOperation):
    """Install an epoch fence on one register of one replica set.

    Two rounds over the source objects: discover the maximum installed
    tag from a quorum, then ratchet every object's fence to
    ``max_epoch + FENCE_MARGIN`` and collect a quorum of fence acks.
    Completes with the installed fence epoch.

    ``hard=True`` additionally *retires* the register at this replica
    set -- objects refuse every future write round, whatever its epoch.
    Shard handoffs need this: concurrent multi-writer tag discoveries
    can chain past any finite margin (each writer observes the previous
    one's in-flight tag and picks one higher), but no chain outruns a
    hard fence.

    ``lift=True`` inverts the operation: one round clearing both fences
    at a quorum (no discovery), used when a reconfiguration hands a
    register back to a replica set that fenced it in an earlier
    handoff.  Completes with ``0``.
    """

    kind = "FENCE"

    def __init__(self, config: SystemConfig, register_id: str,
                 hard: bool = False, lift: bool = False):
        super().__init__(writer(CONTROL_WRITER_INDEX), register_id)
        self.config = config
        self.hard = hard
        self.lift = lift
        self.phase = "discover"
        self.fence_epoch: Optional[int] = None
        self.discovery = TagDiscovery(
            nonce=self.operation_id,
            quorum=config.quorum_size,
            writer_id=0,
        )
        self._fence_ackers: set = set()

    def start(self) -> Outgoing:
        if self.lift:
            self.phase = "fence"
            self.fence_epoch = 0
            self.begin_round()
            fence = EpochFence(nonce=self.operation_id, epoch=0,
                               register_id=self.register_id, lift=True)
            return [(obj(i), fence)
                    for i in range(self.config.num_objects)]
        self.begin_round()
        query = TagQuery(nonce=self.operation_id,
                         register_id=self.register_id)
        return [(obj(i), query) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not sender.is_object:
            return []
        if (self.phase == "discover"
                and isinstance(message, TagQueryAck)
                and message.register_id == self.register_id):
            self.discovery.offer(sender.index, message.nonce, message.tag)
            if self.discovery.ready():
                return self._start_fence_round()
            return []
        if (self.phase == "fence"
                and isinstance(message, EpochFenceAck)
                and message.nonce == self.operation_id
                and message.register_id == self.register_id
                and message.epoch >= (self.fence_epoch or 0)):
            # An ack reporting a lower fence than requested cannot come
            # from a correct object; it does not count toward the quorum.
            self._fence_ackers.add(sender.index)
            if len(self._fence_ackers) >= self.config.quorum_size:
                return self.complete(self.fence_epoch)
        return []

    def _start_fence_round(self) -> Outgoing:
        self.phase = "fence"
        self.fence_epoch = self.discovery.max_tag.epoch + FENCE_MARGIN
        self.begin_round()
        fence = EpochFence(nonce=self.operation_id,
                           epoch=self.fence_epoch,
                           register_id=self.register_id,
                           hard=self.hard)
        return [(obj(i), fence) for i in range(self.config.num_objects)]


@dataclass
class ReconfigReport:
    """What one reconfiguration did, for logs, tests and dashboards."""

    operation: str                     # "add-shard" | "remove-shard" | ...
    shard_id: int
    #: key -> (source shard id, target shard id) for every replayed key.
    moved: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: key -> fence epoch installed at its source replica set.
    fence_epochs: Dict[str, int] = field(default_factory=dict)
    #: keys owned by a moved range but never written (nothing to replay).
    skipped: List[str] = field(default_factory=list)

    def describe(self) -> str:
        return (f"{self.operation}(shard {self.shard_id}): "
                f"{len(self.moved)} key(s) moved, "
                f"{len(self.skipped)} empty, fences "
                f"{sorted(set(self.fence_epochs.values()))}")


class ReconfigCoordinator:
    """Drives live reconfigurations of one :class:`ShardedKVStore`.

    The coordinator is stateless between operations; all durable state
    lives in the store (ring, shard map, object automata).  Fence
    traffic runs over each shard store's shared control host, so any
    number of coordinators may exist without double-binding inboxes --
    but do not run two reconfigurations *concurrently*.

    Failure semantics: if a reconfiguration raises midway (e.g. a
    timeout), routing has *not* flipped and fences remain installed on
    the keys already processed -- writes to those keys keep failing
    fast with :class:`~repro.errors.FencedWriteError` until the
    reconfiguration is **retried to completion** (every step is safe to
    repeat: fences ratchet, snapshots are reads, replays just write
    again).  Reads are never affected by a partial reconfiguration.

    ``chaos_hook`` is the chaos harness's entry point: a callable (sync
    or async) invoked as ``hook(stage, key)`` at every handoff stage --
    ``"fenced"``, ``"snapshotted"``, ``"replayed"`` per key, ``"flip"``
    once before routing flips.  The hook may crash replicas, delay, or
    raise; the coordinator makes no attempt to survive hook exceptions
    beyond its normal failure semantics above.  Production code leaves
    it ``None`` (a no-op).
    """

    def __init__(self, kv: ShardedKVStore,
                 chaos_hook: Optional[Any] = None):
        self.kv = kv
        self.chaos_hook = chaos_hook

    async def _maybe_hook(self, stage: str, key: Optional[str]) -> None:
        if self.chaos_hook is None:
            return
        result = self.chaos_hook(stage, key)
        if asyncio.iscoroutine(result):
            await result

    # -- shard-set changes --------------------------------------------------
    async def add_shard(self, shard_id: Optional[int] = None,
                        store: Optional[MultiRegisterStore] = None
                        ) -> ReconfigReport:
        """Grow the ring by one shard group, migrating the moved keys.

        The new group serves exactly the ring arcs consistent hashing
        assigns it (~``1/(n+1)`` of the keyspace); every other key stays
        where it is and keeps serving throughout.
        """
        kv = self.kv
        if shard_id is None:
            # Never implicitly reuse a drained group's id: external state
            # keyed by shard id (reports, logs, seeds) must not conflate
            # a retired group with a fresh one.
            shard_id = max(set(kv.shards) | kv.retired_shard_ids) + 1
        new_ring = kv.ring.add_shard(shard_id)
        sid = (set(new_ring.shard_ids) - set(kv.ring.shard_ids)).pop()
        created = store is None
        store = store if store is not None else kv.make_shard_store(sid)
        await store.start()
        shards_after = dict(kv.shards)
        shards_after[sid] = store
        report = ReconfigReport(operation="add-shard", shard_id=sid)
        try:
            await self._migrate(new_ring, shards_after, report)
        except BaseException:
            if created:  # don't leak the replica tasks we spawned
                await store.stop()
            raise
        await self._maybe_hook("flip", None)
        kv.apply_reconfiguration(new_ring, shards_after)
        return report

    async def remove_shard(self, shard_id: int) -> ReconfigReport:
        """Drain one shard group and retire it.

        Its keys scatter to their ring neighbours; once routing has
        flipped the drained store is stopped.
        """
        kv = self.kv
        if shard_id not in kv.shards:
            raise ConfigurationError(f"no shard group {shard_id}")
        new_ring = kv.ring.remove_shard(shard_id)
        shards_after = {sid: s for sid, s in kv.shards.items()
                        if sid != shard_id}
        report = ReconfigReport(operation="remove-shard", shard_id=shard_id)
        await self._migrate(new_ring, shards_after, report)
        await self._maybe_hook("flip", None)
        drained = kv.shards[shard_id]
        kv.apply_reconfiguration(new_ring, shards_after)
        # Operations admitted to the drained group before the flip must
        # finish before its hosts go away, or they would fail spuriously.
        await drained.quiesce()
        await drained.stop()
        return report

    # -- replica repair -----------------------------------------------------
    async def heal_replica(self, shard_id: int, index: int,
                           automaton: Optional[ObjectAutomaton] = None
                           ) -> ReconfigReport:
        """Replace one (crashed) base object and re-install current values.

        The swap inherits the replica's inbox (in-flight messages
        survive) and lifts any crash on its pid; the resync then reads
        every key the shard currently owns and rewrites it through the
        normal write path, which lands the value -- under a fresh tag --
        on the replacement as well.  Reads that lose yet another replica
        later therefore still find a full quorum of informed objects.

        Each rewritten key is fenced first, exactly like a handoff (with
        source == target): without the fence, an application write
        completing between the coordinator's snapshot and its re-install
        would be buried under the re-install's fresher tag -- a silent
        lost update.  Fenced application writes instead fail fast and
        succeed on retry once the re-install (whose seeded epoch clears
        the fence for all later writes) is through.
        """
        kv = self.kv
        store = kv.shards[shard_id]
        store.replace_object(index, automaton)
        report = ReconfigReport(operation="heal-replica", shard_id=shard_id)
        for key in store.registers():
            if kv.ring.shard_for(key) != shard_id:
                continue  # stale client state for a key moved elsewhere
            value = await self._with_retry(lambda: store.read(key))
            if isinstance(value, _Bottom):
                # Never written: nothing to re-install, and fencing it
                # would strand future writes below the fence.
                report.skipped.append(key)
                continue
            fence_epoch = await self._fence(store, key)
            report.fence_epochs[key] = fence_epoch
            await self._maybe_hook("fenced", key)
            # Authoritative snapshot *after* the fence: it captures every
            # write that completed, and none can complete anymore.
            value, pre_tag = await self._with_retry(
                lambda: store.read_tagged(key))
            await self._maybe_hook("snapshotted", key)
            store.seed_writer_epoch(key, fence_epoch - 1)
            await self._replay(store, key, value, pre_tag)
            await self._maybe_hook("replayed", key)
            report.moved[key] = (shard_id, shard_id)
        return report

    # -- handoff machinery --------------------------------------------------
    async def _migrate(self, new_ring: HashRing,
                       shards_after: Dict[int, MultiRegisterStore],
                       report: ReconfigReport) -> None:
        """Fence, snapshot and replay every key whose owner changes.

        Runs to a *fixpoint*: keys first written while the migration is
        in flight (and therefore absent from the initial enumeration)
        are picked up by another sweep, so an acknowledged put on a
        moved arc can never be stranded at the source.  The final,
        empty sweep returns without awaiting, and the callers flip
        routing immediately after -- on the single-threaded event loop
        no new key can appear between that check and the flip.
        """
        kv = self.kv
        old_ring = kv.ring
        ranges = owned_diff(old_ring, new_ring)
        while True:
            pending = [
                key for key in kv.known_keys()
                if key not in report.fence_epochs
                and any(r.contains(key_position(key)) for r in ranges)
            ]
            if not pending:
                return
            for key in pending:
                moved_range = next(r for r in ranges
                                   if r.contains(key_position(key)))
                src, dst = moved_range.old_shard, moved_range.new_shard
                source = kv.shards[src]
                target = shards_after[dst]
                # Hard fence: the register is *retired* at the source --
                # an epoch-only fence could be outrun by chained
                # concurrent tag discoveries, silently losing a write.
                fence_epoch = await self._fence(source, key, hard=True)
                report.fence_epochs[key] = fence_epoch
                await self._maybe_hook("fenced", key)
                # The target may have fenced this key itself when an
                # earlier reconfiguration moved it *away*; lift that
                # fence or the hand-back replay (and all later writes)
                # would be refused forever.
                await self._lift(target, key)
                value, pre_tag = await self._with_retry(
                    lambda: source.read_tagged(key))
                await self._maybe_hook("snapshotted", key)
                if isinstance(value, _Bottom):
                    # Fenced while unwritten: it can never gain a value
                    # at the source, so one visit is enough.
                    report.skipped.append(key)
                    continue
                target.seed_writer_epoch(key, fence_epoch - 1)
                await self._replay(target, key, value, pre_tag)
                await self._maybe_hook("replayed", key)
                report.moved[key] = (src, dst)

    async def _replay(self, target: MultiRegisterStore, key: str,
                      value: Any, pre_tag) -> None:
        """Re-install ``value`` at ``target`` under the seeded epoch.

        The replay is control-plane traffic: it duplicates a value whose
        original write is already on record, so it is kept *out* of the
        shared history and registered as a **republication** alias (new
        tag -> ``pre_tag``) instead.  Recording it as an application
        write would make the checkers demand that reads served by the
        source during the pre-flip window already observe the replay's
        fresher tag -- a staleness that no client can distinguish,
        since the value is identical.
        """
        _, new_tag = await self._with_retry(
            lambda: target.write_tagged(key, value, record=False))
        if (target.history is not None and new_tag is not None
                and pre_tag is not None):
            target.history.record_republication(key, new_tag, pre_tag)

    async def _fence(self, store: MultiRegisterStore, key: str,
                     hard: bool = False) -> int:
        operation = FenceOperation(store.config, key, hard=hard)
        return await self._with_retry(
            lambda: store.control_host().run(operation,
                                             store.default_timeout))

    async def _lift(self, store: MultiRegisterStore, key: str) -> None:
        operation = FenceOperation(store.config, key, lift=True)
        await self._with_retry(
            lambda: store.control_host().run(operation,
                                             store.default_timeout))

    @staticmethod
    async def _with_retry(run):
        """Retry an operation that lost a transient admission race.

        One client host drives at most one operation per register
        (:class:`~repro.errors.BusyRegisterError`) and may cap its
        concurrently pending registers
        (:class:`~repro.errors.BackpressureError`); the coordinator
        competes with application traffic like any client, so it yields
        and retries instead of aborting the migration over contention.
        """
        while True:
            try:
                return await run()
            except (BusyRegisterError, BackpressureError):
                await asyncio.sleep(0)


__all__ = [
    "FENCE_MARGIN",
    "FenceOperation",
    "ReconfigCoordinator",
    "ReconfigReport",
]
