"""One replica set, many registers: the multiplexed asyncio store.

:class:`MultiRegisterStore` is the paper's deployment done right at
scale: a *fixed* set of ``S`` commodity base objects (one
:class:`~repro.runtime.hosts.ObjectHost` task each) serves arbitrarily
many registers -- SWMR by default, MWMR when the config declares several
writers (each writer gets its own multiplexed client host and the
protocols arbitrate with ``(epoch, writer_id)`` tags).  Contrast with one
:class:`~repro.runtime.storage.AsyncStorage` per key, which spawns ``S``
object tasks, ``S`` queues and a client host *per register* -- at 10k
keys that is 40k+ asyncio tasks doing the work these same ``S`` tasks do
here.

Per-register protocol state lives in the object automata's register
slots (server side) and in lazily created writer/reader states (client
side).  Client processes are multiplexed too: one
:class:`~repro.runtime.hosts.MuxClientHost` per process drives one
operation per register concurrently and coalesces same-step messages to
the same object into single :class:`~repro.messages.Batch` envelopes --
the service tier's write batching.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..automata.base import ObjectAutomaton
from ..config import SystemConfig
from ..errors import ConfigurationError, TransportError
from ..protocols import StorageProtocol
from ..runtime.hosts import MuxClientHost, ObjectHost
from ..runtime.memnet import AsyncNetwork
from ..spec.histories import History
from ..types import WRITER, WriterTag, obj, reader, writer

#: Writer index of the out-of-band control identity (fence/reconfig
#: traffic).  Far above any plausible ``config.num_writers`` so it never
#: collides with an application writer host.
CONTROL_WRITER_INDEX = 1 << 20


class MultiRegisterStore:
    """Many registers multiplexed over one replica set (asyncio).

    Registers are MWMR when the config declares several writers: any
    writer host may write any register (the protocols arbitrate with
    ``(epoch, writer_id)`` tags).  ``record_history=True`` captures every
    operation into a shared :class:`~repro.spec.histories.History` whose
    event order is the event loop's, feeding the consistency checkers.
    ``max_pending_per_host`` bounds each client host's concurrently
    pending registers (see :class:`~repro.errors.BackpressureError`).
    """

    def __init__(self, protocol: StorageProtocol, config: SystemConfig,
                 jitter: float = 0.0, seed: int = 0,
                 default_timeout: Optional[float] = 30.0,
                 batching: bool = True,
                 max_pending_per_host: Optional[int] = None,
                 record_history: bool = False,
                 history: Optional[History] = None,
                 fast_reads: bool = False):
        protocol.validate_config(config)
        self.protocol = protocol
        self.config = config
        self.network = self._make_network(jitter, seed)
        self.default_timeout = default_timeout
        self.history: Optional[History] = (
            history if history is not None
            else (History() if record_history else None))
        self._batching = batching
        self._max_pending = max_pending_per_host
        self._object_hosts: List[ObjectHost] = self._make_object_hosts()
        self._states = protocol.client_states(config)
        if fast_reads:
            self._states.enable_fast_reads()
        self._writer_hosts: Dict[int, MuxClientHost] = {
            0: self._make_client_host(WRITER)}
        self._reader_hosts = [
            self._make_client_host(reader(j))
            for j in range(config.num_readers)
        ]
        self._control_host: Optional[MuxClientHost] = None
        self._started = False

    # -- deployment hooks ---------------------------------------------------
    # Subclasses (the multiproc deployment) override these to swap the
    # transport underneath the unchanged client machinery.
    def _make_network(self, jitter: float, seed: int) -> AsyncNetwork:
        return AsyncNetwork(jitter=jitter, seed=seed)

    def _make_object_hosts(self) -> List[ObjectHost]:
        return [ObjectHost(automaton, self.network)
                for automaton in self.protocol.make_objects(self.config)]

    def _make_client_host(self, pid) -> MuxClientHost:
        return MuxClientHost(pid, self.network, batching=self._batching,
                             max_pending=self._max_pending,
                             history=self.history)

    def _writer_host(self, writer_index: int = 0) -> MuxClientHost:
        """The host of writer ``writer_index`` (created lazily).

        Lazy creation is gated on the store being started: a host
        created after ``stop()`` would spawn a pump task nothing ever
        cancels again.
        """
        self._require_started()
        if not 0 <= writer_index < self.config.num_writers:
            raise TransportError(
                f"writer index {writer_index} out of range for "
                f"{self.config.num_writers} writer(s)")
        host = self._writer_hosts.get(writer_index)
        if host is None:
            host = self._writer_hosts[writer_index] = \
                self._make_client_host(writer(writer_index))
        return host

    def control_host(self) -> MuxClientHost:
        """The out-of-band control host (fence/reconfig operations).

        One per store, shared by every coordinator, so two coordinators
        can never double-bind the control identity's inbox.  Control
        traffic bypasses history recording -- fences are not register
        operations.
        """
        self._require_started()
        if self._control_host is None:
            self._control_host = MuxClientHost(
                writer(CONTROL_WRITER_INDEX), self.network,
                batching=self._batching)
        return self._control_host

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "MultiRegisterStore":
        if not self._started:
            for host in self._object_hosts:
                host.start()
            self._started = True
        return self

    async def stop(self) -> None:
        if not self._started:
            return  # idempotent: a second stop must not touch fresh hosts
        # Flip the flag first so concurrent writers cannot lazily create
        # a host (and its pump task) between the sweep and the return.
        self._started = False
        for host in self._object_hosts:
            host.stop()
        for host in list(self._writer_hosts.values()):
            host.stop()
        for host in self._reader_hosts:
            host.stop()
        if self._control_host is not None:
            self._control_host.stop()

    async def quiesce(self) -> None:
        """Wait until no client host has an operation in flight.

        Used before retiring a store (shard drain): operations admitted
        earlier complete normally instead of being evicted by
        ``stop()``.  New admissions are the caller's responsibility to
        prevent (e.g. by flipping routing away first).
        """
        hosts = list(self._writer_hosts.values()) + self._reader_hosts
        if self._control_host is not None:
            hosts.append(self._control_host)
        while any(host._pending for host in hosts):
            await asyncio.sleep(0)

    async def __aenter__(self) -> "MultiRegisterStore":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    def _require_started(self) -> None:
        if not self._started:
            raise TransportError("store not started; use 'async with'")

    # -- per-register client states ------------------------------------------
    def registers(self) -> List[str]:
        """Register ids written or read so far through this store."""
        return self._states.registers()

    # -- tag leases (fast reads) ---------------------------------------------
    @property
    def fast_reads(self) -> bool:
        return self._states.fast_reads

    def enable_fast_reads(self) -> None:
        """Turn the lease-probe fast path on (capable protocols only)."""
        self._states.enable_fast_reads()

    def disable_fast_reads(self) -> None:
        """Classic-only reads from here on; existing leases are dropped."""
        self._states.fast_reads = False
        for state in self._states.all_reader_states():
            state.fast_reads = False
            state.lease = None

    def invalidate_leases(self, register_ids: Optional[Iterable[str]] = None
                          ) -> None:
        """Drop reader leases (all registers, or just ``register_ids``).

        Called on routing flips and fence-aborted writes: a lease earned
        under the old configuration may point into a retired replica set.
        """
        if register_ids is None:
            states = self._states.all_reader_states()
        else:
            states = [state for rid in register_ids
                      for state in self._states.reader_states_of(rid)]
        for state in states:
            invalidate = getattr(state, "invalidate_lease", None)
            if invalidate is not None:
                invalidate()

    def _grant_write_lease(self, register_id: str, tag, value: Any) -> None:
        """A completed write's ack certifies (tag, value) quorum-held."""
        if not self._states.fast_reads or tag is None:
            return
        for state in self._states.reader_states_of(register_id):
            state.grant_lease(tag, value)

    def grant_read_leases(
            self, entries: Mapping[str, Tuple[Any, Any]]) -> None:
        """Seed leases from certified ``{register: (tag, value)}`` pairs.

        The caller vouches that each pair was returned by a *completed*
        read (e.g. a snapshot's confirming collect), which is exactly the
        evidence :meth:`~repro.core.regular.reader.RegularReaderState.
        grant_lease` encodes; grants are monotone, so a stale entry is a
        no-op.
        """
        if not self._states.fast_reads:
            return
        for register_id, (tag, value) in entries.items():
            if tag is None:
                continue
            for state in self._states.reader_states_of(register_id):
                state.grant_lease(tag, value)

    def stats(self) -> Dict[str, Any]:
        """Operational counters (first slice of the observability item)."""
        hosts = list(self._writer_hosts.values()) + self._reader_hosts
        return {
            "fast_reads_enabled": self._states.fast_reads,
            "fast_reads_taken": sum(h.fast_reads_taken for h in hosts),
            "fast_read_fallbacks": sum(h.fast_read_fallbacks
                                       for h in hosts),
            "lease_invalidations": sum(
                getattr(s, "lease_invalidations", 0)
                for s in self._states.all_reader_states()),
            "messages_sent": self.network.messages_sent,
        }

    # -- single operations ----------------------------------------------------
    async def write(self, register_id: str, value: Any,
                    timeout: Optional[float] = None,
                    writer_index: int = 0, record: bool = True) -> Any:
        self._require_started()
        operation = self.protocol.make_write_to(
            self._states.writer(register_id, writer_index), value,
            register_id)
        result = await self._writer_host(writer_index).run(
            operation, timeout or self.default_timeout, record=record)
        self._grant_write_lease(register_id, operation.tag, value)
        return result

    async def write_tagged(self, register_id: str, value: Any,
                           timeout: Optional[float] = None,
                           writer_index: int = 0, record: bool = True
                           ) -> Tuple[Any, Optional[WriterTag]]:
        """WRITE and report the ``(epoch, writer_id)`` tag installed.

        ``record=False`` keeps the write out of the shared history --
        the reconfiguration coordinator uses this for replays, recording
        a *republication* alias instead (the replay duplicates a value
        whose original write is already on record).
        """
        self._require_started()
        operation = self.protocol.make_write_to(
            self._states.writer(register_id, writer_index), value,
            register_id)
        result = await self._writer_host(writer_index).run(
            operation, timeout or self.default_timeout, record=record)
        self._grant_write_lease(register_id, operation.tag, value)
        return result, operation.tag

    async def read(self, register_id: str, reader_index: int = 0,
                   timeout: Optional[float] = None) -> Any:
        self._require_started()
        operation = self.protocol.make_read_from(
            self._states.reader(register_id, reader_index), register_id)
        return await self._reader_hosts[reader_index].run(
            operation, timeout or self.default_timeout)

    async def read_tagged(self, register_id: str, reader_index: int = 0,
                          timeout: Optional[float] = None
                          ) -> Tuple[Any, Optional[WriterTag]]:
        """READ one register and report the ``(epoch, writer_id)`` tag.

        The tag is the version the read observed (``TAG0`` for ⊥) --
        already discovered by every protocol's read path, exposed here
        instead of discarded.  Cross-shard snapshot reads
        (:meth:`~repro.api.Session.snapshot`) cut against these tags;
        no extra round and no new wire frame is involved.
        """
        self._require_started()
        operation = self.protocol.make_read_from(
            self._states.reader(register_id, reader_index), register_id)
        value = await self._reader_hosts[reader_index].run(
            operation, timeout or self.default_timeout)
        return value, operation.tag

    # -- batched operations ----------------------------------------------------
    async def write_many(self, items: Mapping[str, Any],
                         timeout: Optional[float] = None,
                         writer_index: int = 0) -> Dict[str, Any]:
        """WRITE a batch of registers concurrently over the one replica set.

        Batches are driven as *vector rounds*
        (:meth:`~repro.runtime.hosts.MuxClientHost.run_many`): every
        protocol step of the whole batch leaves as a single
        :class:`~repro.messages.Batch` frame per base object
        (``len(items)`` registers cost ``S`` frames per round instead of
        ``len(items) * S``), and per-register quorum conditions are
        evaluated once per inbound burst instead of once per ack.
        """
        self._require_started()
        operations = [
            self.protocol.make_write_to(
                self._states.writer(register_id, writer_index), value,
                register_id)
            for register_id, value in items.items()
        ]
        results = await self._writer_host(writer_index).run_many(
            operations, timeout or self.default_timeout)
        if self._states.fast_reads:
            for operation, (register_id, value) in zip(operations,
                                                       items.items()):
                self._grant_write_lease(register_id, operation.tag, value)
        return dict(zip(items.keys(), results))

    async def read_many(self, register_ids: Iterable[str],
                        reader_index: int = 0,
                        timeout: Optional[float] = None) -> Dict[str, Any]:
        """READ a batch of registers concurrently; returns id -> value.

        Rides the same vector rounds as :meth:`write_many`: one frame
        per (replica, step) for the whole batch.
        """
        self._require_started()
        # Dedupe while preserving order: a repeated id is one read, not a
        # same-register concurrency violation.
        register_ids = list(dict.fromkeys(register_ids))
        operations = [
            self.protocol.make_read_from(
                self._states.reader(register_id, reader_index),
                register_id)
            for register_id in register_ids
        ]
        results = await self._reader_hosts[reader_index].run_many(
            operations, timeout or self.default_timeout)
        return dict(zip(register_ids, results))

    async def read_many_tagged(self, register_ids: Iterable[str],
                               reader_index: int = 0,
                               timeout: Optional[float] = None
                               ) -> Dict[str, Tuple[Any,
                                                    Optional[WriterTag]]]:
        """Batched :meth:`read_tagged`: id -> (value, observed tag)."""
        self._require_started()
        register_ids = list(dict.fromkeys(register_ids))
        operations = [
            self.protocol.make_read_from(
                self._states.reader(register_id, reader_index),
                register_id)
            for register_id in register_ids
        ]
        results = await self._reader_hosts[reader_index].run_many(
            operations, timeout or self.default_timeout)
        return {register_id: (value, operation.tag)
                for register_id, value, operation
                in zip(register_ids, results, operations)}

    # -- faults & repair ----------------------------------------------------
    def crash_object(self, index: int) -> None:
        """Crash one base object for *every* register it serves."""
        self.network.crash(obj(index))
        self._object_hosts[index].stop()

    def make_byzantine(self, index: int,
                       automaton: ObjectAutomaton) -> None:
        """Replace one replica's automaton (affects all registers at once).

        The replacement host takes over the replica's existing inbox
        (:meth:`~repro.runtime.memnet.AsyncNetwork.register` hands the
        queue over), so messages in flight to the replica survive the
        swap; the old pump is stopped before the new host binds.
        """
        self._object_hosts[index].stop()
        host = ObjectHost(automaton, self.network)
        self._object_hosts[index] = host
        if self._started:
            host.start()

    def replace_object(self, index: int,
                       automaton: Optional[ObjectAutomaton] = None
                       ) -> ObjectAutomaton:
        """Replace a (crashed) base object with a fresh replica.

        The replacement starts from the automaton's initial state (or
        ``automaton`` if given), inherits the replica's surviving inbox,
        and receives network traffic again even if the pid had been
        crashed.  The new replica is *stale* until it observes writes;
        :meth:`~repro.service.reconfig.ReconfigCoordinator.heal_replica`
        re-installs current values on top of this swap.
        """
        if automaton is None:
            automaton = self.protocol.make_objects(self.config)[index]
        self.network.restore(obj(index))
        self.make_byzantine(index, automaton)  # same swap, honest automaton
        return automaton

    def object_automaton(self, index: int) -> ObjectAutomaton:
        return self._object_hosts[index].automaton

    # -- reconfiguration support --------------------------------------------
    def seed_writer_epoch(self, register_id: str, epoch: int,
                          writer_index: int = 0) -> None:
        """Raise a register's writer epoch floor (shard handoff replay).

        The next WRITE to ``register_id`` by that writer uses an epoch
        ``> epoch``: single-writer protocols bump the seeded counter,
        multi-writer tag discovery uses it as its floor.  Replaying a
        moved register into its target shard seeds the *fence* epoch
        here so the replayed value's tag exceeds every pre-handoff tag.
        """
        state = self._states.writer(register_id, writer_index)
        if not hasattr(state, "ts"):
            raise ConfigurationError(
                f"{self.protocol.name} writer state exposes no epoch "
                f"counter; cannot seed a handoff epoch")
        state.ts = max(state.ts, epoch)

    # -- observability -----------------------------------------------------
    def describe(self) -> str:
        return (f"MultiRegisterStore({self.protocol.describe()}; "
                f"{self.config.describe()}; "
                f"{len(self.registers())} registers)")
