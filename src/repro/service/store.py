"""One replica set, many registers: the multiplexed asyncio store.

:class:`MultiRegisterStore` is the paper's deployment done right at
scale: a *fixed* set of ``S`` commodity base objects (one
:class:`~repro.runtime.hosts.ObjectHost` task each) serves arbitrarily
many SWMR registers.  Contrast with one :class:`~repro.runtime.storage.
AsyncStorage` per key, which spawns ``S`` object tasks, ``S`` queues and
a client host *per register* -- at 10k keys that is 40k+ asyncio tasks
doing the work these same ``S`` tasks do here.

Per-register protocol state lives in the object automata's register
slots (server side) and in lazily created writer/reader states (client
side).  Client processes are multiplexed too: one
:class:`~repro.runtime.hosts.MuxClientHost` per process drives one
operation per register concurrently and coalesces same-step messages to
the same object into single :class:`~repro.messages.Batch` envelopes --
the service tier's write batching.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..automata.base import ObjectAutomaton
from ..config import SystemConfig
from ..errors import TransportError
from ..protocols import StorageProtocol
from ..runtime.hosts import MuxClientHost, ObjectHost
from ..runtime.memnet import AsyncNetwork
from ..types import WRITER, obj, reader


class MultiRegisterStore:
    """Many SWMR registers multiplexed over one replica set (asyncio)."""

    def __init__(self, protocol: StorageProtocol, config: SystemConfig,
                 jitter: float = 0.0, seed: int = 0,
                 default_timeout: Optional[float] = 30.0,
                 batching: bool = True):
        protocol.validate_config(config)
        self.protocol = protocol
        self.config = config
        self.network = AsyncNetwork(jitter=jitter, seed=seed)
        self.default_timeout = default_timeout
        self._object_hosts: List[ObjectHost] = [
            ObjectHost(automaton, self.network)
            for automaton in protocol.make_objects(config)
        ]
        self._states = protocol.client_states(config)
        self._writer_host = MuxClientHost(WRITER, self.network,
                                          batching=batching)
        self._reader_hosts = [
            MuxClientHost(reader(j), self.network, batching=batching)
            for j in range(config.num_readers)
        ]
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "MultiRegisterStore":
        if not self._started:
            for host in self._object_hosts:
                host.start()
            self._started = True
        return self

    async def stop(self) -> None:
        for host in self._object_hosts:
            host.stop()
        self._writer_host.stop()
        for host in self._reader_hosts:
            host.stop()
        self._started = False

    async def __aenter__(self) -> "MultiRegisterStore":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    def _require_started(self) -> None:
        if not self._started:
            raise TransportError("store not started; use 'async with'")

    # -- per-register client states ------------------------------------------
    def registers(self) -> List[str]:
        """Register ids written or read so far through this store."""
        return self._states.registers()

    # -- single operations ----------------------------------------------------
    async def write(self, register_id: str, value: Any,
                    timeout: Optional[float] = None) -> Any:
        self._require_started()
        operation = self.protocol.make_write_to(
            self._states.writer(register_id), value, register_id)
        return await self._writer_host.run(
            operation, timeout or self.default_timeout)

    async def read(self, register_id: str, reader_index: int = 0,
                   timeout: Optional[float] = None) -> Any:
        self._require_started()
        operation = self.protocol.make_read_from(
            self._states.reader(register_id, reader_index), register_id)
        return await self._reader_hosts[reader_index].run(
            operation, timeout or self.default_timeout)

    # -- batched operations ----------------------------------------------------
    async def write_many(self, items: Mapping[str, Any],
                         timeout: Optional[float] = None) -> Dict[str, Any]:
        """WRITE a batch of registers concurrently over the one replica set.

        All first-round messages of the batch are coalesced per object:
        ``len(items)`` registers cost ``S`` envelopes per round instead of
        ``len(items) * S``.
        """
        self._require_started()
        operations = [
            self.protocol.make_write_to(
                self._states.writer(register_id), value, register_id)
            for register_id, value in items.items()
        ]
        results = await self._writer_host.run_many(
            operations, timeout or self.default_timeout)
        return dict(zip(items.keys(), results))

    async def read_many(self, register_ids: Iterable[str],
                        reader_index: int = 0,
                        timeout: Optional[float] = None) -> Dict[str, Any]:
        """READ a batch of registers concurrently; returns id -> value."""
        self._require_started()
        # Dedupe while preserving order: a repeated id is one read, not a
        # same-register concurrency violation.
        register_ids = list(dict.fromkeys(register_ids))
        operations = [
            self.protocol.make_read_from(
                self._states.reader(register_id, reader_index),
                register_id)
            for register_id in register_ids
        ]
        results = await self._reader_hosts[reader_index].run_many(
            operations, timeout or self.default_timeout)
        return dict(zip(register_ids, results))

    # -- faults ------------------------------------------------------------
    def crash_object(self, index: int) -> None:
        """Crash one base object for *every* register it serves."""
        self.network.crash(obj(index))
        self._object_hosts[index].stop()

    def make_byzantine(self, index: int,
                       automaton: ObjectAutomaton) -> None:
        """Replace one replica's automaton (affects all registers at once)."""
        self._object_hosts[index].stop()
        host = ObjectHost(automaton, self.network)
        self._object_hosts[index] = host
        if self._started:
            host.start()

    def object_automaton(self, index: int) -> ObjectAutomaton:
        return self._object_hosts[index].automaton

    # -- observability -----------------------------------------------------
    def describe(self) -> str:
        return (f"MultiRegisterStore({self.protocol.describe()}; "
                f"{self.config.describe()}; "
                f"{len(self.registers())} registers)")
