"""One replica set, many registers: the multiplexed asyncio store.

:class:`MultiRegisterStore` is the paper's deployment done right at
scale: a *fixed* set of ``S`` commodity base objects (one
:class:`~repro.runtime.hosts.ObjectHost` task each) serves arbitrarily
many registers -- SWMR by default, MWMR when the config declares several
writers (each writer gets its own multiplexed client host and the
protocols arbitrate with ``(epoch, writer_id)`` tags).  Contrast with one
:class:`~repro.runtime.storage.AsyncStorage` per key, which spawns ``S``
object tasks, ``S`` queues and a client host *per register* -- at 10k
keys that is 40k+ asyncio tasks doing the work these same ``S`` tasks do
here.

Per-register protocol state lives in the object automata's register
slots (server side) and in lazily created writer/reader states (client
side).  Client processes are multiplexed too: one
:class:`~repro.runtime.hosts.MuxClientHost` per process drives one
operation per register concurrently and coalesces same-step messages to
the same object into single :class:`~repro.messages.Batch` envelopes --
the service tier's write batching.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..automata.base import ObjectAutomaton
from ..config import SystemConfig
from ..errors import TransportError
from ..protocols import StorageProtocol
from ..runtime.hosts import MuxClientHost, ObjectHost
from ..runtime.memnet import AsyncNetwork
from ..spec.histories import History
from ..types import WRITER, obj, reader, writer


class MultiRegisterStore:
    """Many registers multiplexed over one replica set (asyncio).

    Registers are MWMR when the config declares several writers: any
    writer host may write any register (the protocols arbitrate with
    ``(epoch, writer_id)`` tags).  ``record_history=True`` captures every
    operation into a shared :class:`~repro.spec.histories.History` whose
    event order is the event loop's, feeding the consistency checkers.
    ``max_pending_per_host`` bounds each client host's concurrently
    pending registers (see :class:`~repro.errors.BackpressureError`).
    """

    def __init__(self, protocol: StorageProtocol, config: SystemConfig,
                 jitter: float = 0.0, seed: int = 0,
                 default_timeout: Optional[float] = 30.0,
                 batching: bool = True,
                 max_pending_per_host: Optional[int] = None,
                 record_history: bool = False,
                 history: Optional[History] = None):
        protocol.validate_config(config)
        self.protocol = protocol
        self.config = config
        self.network = AsyncNetwork(jitter=jitter, seed=seed)
        self.default_timeout = default_timeout
        self.history: Optional[History] = (
            history if history is not None
            else (History() if record_history else None))
        self._batching = batching
        self._max_pending = max_pending_per_host
        self._object_hosts: List[ObjectHost] = [
            ObjectHost(automaton, self.network)
            for automaton in protocol.make_objects(config)
        ]
        self._states = protocol.client_states(config)
        self._writer_hosts: Dict[int, MuxClientHost] = {
            0: self._make_client_host(WRITER)}
        self._reader_hosts = [
            self._make_client_host(reader(j))
            for j in range(config.num_readers)
        ]
        self._started = False

    def _make_client_host(self, pid) -> MuxClientHost:
        return MuxClientHost(pid, self.network, batching=self._batching,
                             max_pending=self._max_pending,
                             history=self.history)

    def _writer_host(self, writer_index: int = 0) -> MuxClientHost:
        """The host of writer ``writer_index`` (created lazily)."""
        if not 0 <= writer_index < self.config.num_writers:
            raise TransportError(
                f"writer index {writer_index} out of range for "
                f"{self.config.num_writers} writer(s)")
        host = self._writer_hosts.get(writer_index)
        if host is None:
            host = self._writer_hosts[writer_index] = \
                self._make_client_host(writer(writer_index))
        return host

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "MultiRegisterStore":
        if not self._started:
            for host in self._object_hosts:
                host.start()
            self._started = True
        return self

    async def stop(self) -> None:
        for host in self._object_hosts:
            host.stop()
        for host in self._writer_hosts.values():
            host.stop()
        for host in self._reader_hosts:
            host.stop()
        self._started = False

    async def __aenter__(self) -> "MultiRegisterStore":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    def _require_started(self) -> None:
        if not self._started:
            raise TransportError("store not started; use 'async with'")

    # -- per-register client states ------------------------------------------
    def registers(self) -> List[str]:
        """Register ids written or read so far through this store."""
        return self._states.registers()

    # -- single operations ----------------------------------------------------
    async def write(self, register_id: str, value: Any,
                    timeout: Optional[float] = None,
                    writer_index: int = 0) -> Any:
        self._require_started()
        operation = self.protocol.make_write_to(
            self._states.writer(register_id, writer_index), value,
            register_id)
        return await self._writer_host(writer_index).run(
            operation, timeout or self.default_timeout)

    async def read(self, register_id: str, reader_index: int = 0,
                   timeout: Optional[float] = None) -> Any:
        self._require_started()
        operation = self.protocol.make_read_from(
            self._states.reader(register_id, reader_index), register_id)
        return await self._reader_hosts[reader_index].run(
            operation, timeout or self.default_timeout)

    # -- batched operations ----------------------------------------------------
    async def write_many(self, items: Mapping[str, Any],
                         timeout: Optional[float] = None,
                         writer_index: int = 0) -> Dict[str, Any]:
        """WRITE a batch of registers concurrently over the one replica set.

        All first-round messages of the batch are coalesced per object:
        ``len(items)`` registers cost ``S`` envelopes per round instead of
        ``len(items) * S``.
        """
        self._require_started()
        operations = [
            self.protocol.make_write_to(
                self._states.writer(register_id, writer_index), value,
                register_id)
            for register_id, value in items.items()
        ]
        results = await self._writer_host(writer_index).run_many(
            operations, timeout or self.default_timeout)
        return dict(zip(items.keys(), results))

    async def read_many(self, register_ids: Iterable[str],
                        reader_index: int = 0,
                        timeout: Optional[float] = None) -> Dict[str, Any]:
        """READ a batch of registers concurrently; returns id -> value."""
        self._require_started()
        # Dedupe while preserving order: a repeated id is one read, not a
        # same-register concurrency violation.
        register_ids = list(dict.fromkeys(register_ids))
        operations = [
            self.protocol.make_read_from(
                self._states.reader(register_id, reader_index),
                register_id)
            for register_id in register_ids
        ]
        results = await self._reader_hosts[reader_index].run_many(
            operations, timeout or self.default_timeout)
        return dict(zip(register_ids, results))

    # -- faults ------------------------------------------------------------
    def crash_object(self, index: int) -> None:
        """Crash one base object for *every* register it serves."""
        self.network.crash(obj(index))
        self._object_hosts[index].stop()

    def make_byzantine(self, index: int,
                       automaton: ObjectAutomaton) -> None:
        """Replace one replica's automaton (affects all registers at once)."""
        self._object_hosts[index].stop()
        host = ObjectHost(automaton, self.network)
        self._object_hosts[index] = host
        if self._started:
            host.start()

    def object_automaton(self, index: int) -> ObjectAutomaton:
        return self._object_hosts[index].automaton

    # -- observability -----------------------------------------------------
    def describe(self) -> str:
        return (f"MultiRegisterStore({self.protocol.describe()}; "
                f"{self.config.describe()}; "
                f"{len(self.registers())} registers)")
