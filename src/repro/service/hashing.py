"""Consistent hashing: stable key -> shard placement.

A classic hash ring with virtual nodes.  Each shard owns ``vnodes``
pseudo-random positions on a 160-bit circle; a key belongs to the shard
of the first virtual node at or after the key's own position.  Virtual
nodes smooth the load imbalance of small rings, and consistency means
that adding or removing one shard only moves the keys adjacent to its
virtual nodes -- the property a future reconfiguration PR will rely on.

Hashes come from SHA-1 (stability matters, cryptographic strength does
not): Python's builtin ``hash`` is randomized per process and would send
the same key to different shards on every run.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple


def _position(label: str) -> int:
    return int.from_bytes(hashlib.sha1(label.encode("utf-8")).digest(),
                          "big")


class HashRing:
    """Maps string keys onto ``num_shards`` shards, consistently."""

    def __init__(self, num_shards: int, vnodes: int = 64):
        if num_shards < 1:
            raise ValueError("at least one shard is required")
        if vnodes < 1:
            raise ValueError("at least one virtual node per shard")
        self.num_shards = num_shards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for v in range(vnodes):
                points.append((_position(f"shard:{shard}:vnode:{v}"), shard))
        points.sort()
        self._positions = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (first vnode clockwise of its hash)."""
        index = bisect.bisect_right(self._positions, _position(key))
        if index == len(self._positions):
            index = 0  # wrap around the circle
        return self._shards[index]

    def __repr__(self) -> str:
        return (f"HashRing({self.num_shards} shards x "
                f"{self.vnodes} vnodes)")
