"""Consistent hashing: stable key -> shard placement.

A classic hash ring with virtual nodes.  Each shard owns ``vnodes``
pseudo-random positions on a 160-bit circle; a key belongs to the shard
of the first virtual node at or after the key's own position.  Virtual
nodes smooth the load imbalance of small rings, and consistency means
that adding or removing one shard only moves the keys adjacent to its
virtual nodes -- the property live reconfiguration
(:mod:`repro.service.reconfig`) relies on.

Rings are immutable values: :meth:`HashRing.add_shard` and
:meth:`HashRing.remove_shard` derive *new* rings, so a reconfiguration
coordinator can compute the target placement, migrate state, and flip an
atomic reference from the old ring to the new one.  Shards are
identified by arbitrary integer ids (``HashRing(n)`` uses ``0..n-1``).
A ring is a pure value and cannot remember drained ids;
:class:`~repro.service.reconfig.ReconfigCoordinator` tracks them at the
store level so retired ids are never implicitly reused.

:func:`owned_diff` enumerates *exactly* the arcs of the circle whose
owner differs between two rings -- the moved key-ranges of a
reconfiguration.  A key moves iff its position falls in one of the arcs.

Hashes come from SHA-1 (stability matters, cryptographic strength does
not): Python's builtin ``hash`` is randomized per process and would send
the same key to different shards on every run.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, NamedTuple, Optional, Tuple

#: Size of the hash circle: SHA-1 positions live in ``[0, RING_SPACE)``.
RING_SPACE = 1 << 160


def _position(label: str) -> int:
    return int.from_bytes(hashlib.sha1(label.encode("utf-8")).digest(),
                          "big")


def key_position(key: str) -> int:
    """The position of ``key`` on the hash circle (public for tooling)."""
    return _position(key)


class MovedRange(NamedTuple):
    """One half-open arc ``[start, stop)`` whose owner changed.

    Arcs never wrap: the wrap-around region is reported as two entries
    (``[p_last, RING_SPACE)`` and ``[0, p_first)``).
    """

    start: int
    stop: int
    old_shard: int
    new_shard: int

    def contains(self, position: int) -> bool:
        return self.start <= position < self.stop


class HashRing:
    """Maps string keys onto a set of shard ids, consistently."""

    def __init__(self, num_shards: Optional[int] = None, vnodes: int = 64,
                 shard_ids: Optional[Iterable[int]] = None):
        if shard_ids is None:
            if num_shards is None or num_shards < 1:
                raise ValueError("at least one shard is required")
            shard_ids = range(num_shards)
        ids = tuple(sorted(shard_ids))
        if not ids:
            raise ValueError("at least one shard is required")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {ids}")
        if vnodes < 1:
            raise ValueError("at least one virtual node per shard")
        self.shard_ids: Tuple[int, ...] = ids
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in ids:
            for v in range(vnodes):
                points.append((_position(f"shard:{shard}:vnode:{v}"), shard))
        points.sort()
        self._positions = [p for p, _ in points]
        self._shards = [s for _, s in points]

    @property
    def num_shards(self) -> int:
        return len(self.shard_ids)

    # -- placement -------------------------------------------------------
    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (first vnode clockwise of its hash)."""
        return self.shard_at(_position(key))

    def shard_at(self, position: int) -> int:
        """The shard owning circle ``position`` directly."""
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap around the circle
        return self._shards[index]

    # -- reconfiguration -------------------------------------------------
    def add_shard(self, shard_id: Optional[int] = None) -> "HashRing":
        """A new ring with one more shard (default: smallest unused id)."""
        if shard_id is None:
            shard_id = max(self.shard_ids) + 1
        if shard_id in self.shard_ids:
            raise ValueError(f"shard {shard_id} is already on the ring")
        return HashRing(vnodes=self.vnodes,
                        shard_ids=self.shard_ids + (shard_id,))

    def remove_shard(self, shard_id: int) -> "HashRing":
        """A new ring without ``shard_id`` (its arcs fall to neighbours)."""
        if shard_id not in self.shard_ids:
            raise ValueError(f"shard {shard_id} is not on the ring")
        if len(self.shard_ids) == 1:
            raise ValueError("cannot remove the last shard")
        return HashRing(vnodes=self.vnodes,
                        shard_ids=(s for s in self.shard_ids
                                   if s != shard_id))

    def owned_diff(self, new: "HashRing") -> "List[MovedRange]":
        """Moved arcs from this ring to ``new`` (see :func:`owned_diff`)."""
        return owned_diff(self, new)

    def __repr__(self) -> str:
        ids = ",".join(map(str, self.shard_ids))
        return (f"HashRing(shards=[{ids}] x "
                f"{self.vnodes} vnodes)")


def owned_diff(old: HashRing, new: HashRing) -> List[MovedRange]:
    """Exactly the arcs of the circle whose owner differs between rings.

    The union of both rings' vnode positions cuts the circle into arcs
    on which ownership is constant *in each ring* (every boundary of
    either ring is a cut).  Comparing owners per arc therefore
    enumerates the moved key-ranges exactly: a key moves from
    ``old.shard_for`` to ``new.shard_for`` iff its position lies in one
    of the returned ranges.
    """
    boundaries = sorted(set(old._positions) | set(new._positions))
    if not boundaries:
        return []
    arcs: List[Tuple[int, int]] = [
        (boundaries[i], boundaries[i + 1])
        for i in range(len(boundaries) - 1)
    ]
    # The wrap-around region, split so ranges never wrap.
    arcs.append((boundaries[-1], RING_SPACE))
    if boundaries[0] > 0:
        arcs.append((0, boundaries[0]))
    moved = [
        MovedRange(lo, hi, old.shard_at(lo), new.shard_at(lo))
        for lo, hi in arcs
        if old.shard_at(lo) != new.shard_at(lo)
    ]
    moved.sort()
    return moved
