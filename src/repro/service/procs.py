"""Multi-process replica serving: supervised child processes + WAL.

The in-proc deployment runs every replica, client host and shard group
on one asyncio loop -- the GIL caps the whole cluster at one core.
This module promotes replicas to **child OS processes**, each serving
its object automata through :class:`~repro.runtime.tcp.TcpObjectServer`
on the binary wire format, with the paper's fault model upgraded from
crash-stop to crash-*recovery*:

* :class:`ReplicaProcess` -- one spawned child hosting one replica (or a
  whole shard group, see ``granularity``), reporting its listen ports
  back over a pipe;
* :class:`ReplicaProcessSupervisor` -- spawn, liveness monitoring
  (``is_alive`` + optional TCP health pings), ``kill -9`` fault
  injection and automatic restart.  A restarted replica recovers its
  durable state from WAL + snapshot
  (:class:`~repro.runtime.wal.ReplicaDurability`) before it starts
  serving, and the supervisor's ``on_restart`` hook lets the service
  tier run :meth:`~repro.service.reconfig.ReconfigCoordinator.
  heal_replica` to top up whatever the replica missed while dead;
* :class:`ProcNetwork` -- an :class:`~repro.runtime.memnet.AsyncNetwork`
  drop-in whose object-bound sends travel real sockets: per
  (client, replica) channels that encode each payload once per
  broadcast, queue frames while a replica is down (crash semantics:
  the replica never saw them) and transparently reconnect to the
  replica's *new* port after a restart;
* :class:`ProcMultiRegisterStore` -- a
  :class:`~repro.service.store.MultiRegisterStore` whose base objects
  live in the supervised children.  Client hosts, per-register states,
  vector rounds, fences and the reconfiguration machinery are inherited
  unchanged -- the deployment switch (``SystemConfig.deployment``)
  only swaps the transport underneath them.

Children are started with the ``spawn`` context: a fresh interpreter
per replica (no inherited event loop or fds), the price being ~0.5 s of
import time per child -- paid once per process lifetime.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import multiprocessing.connection
import os
import signal
from dataclasses import dataclass
from typing import (Any, Awaitable, Callable, Dict, List, Optional,
                    Sequence, Tuple)

from ..automata.base import Sink, resolve_batch_handler
from ..config import SystemConfig
from ..errors import ConfigurationError, TransportError
from ..messages import TagQuery
from ..protocols import StorageProtocol
from ..runtime.memnet import AsyncEnvelope, AsyncNetwork
from ..runtime.tcp import TcpObjectServer, _frame_binary, read_frame
from ..runtime.wal import ReplicaDurability
from ..types import ProcessId, reader
from .store import MultiRegisterStore

_log = logging.getLogger(__name__)

#: Seconds between supervisor liveness sweeps.
MONITOR_INTERVAL = 0.05
#: Consecutive failed health pings before a live-but-wedged child is
#: killed and restarted (generous: a busy single-core box must not get
#: its replicas shot for scheduling latency).
PING_FAILURE_THRESHOLD = 5


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a child process needs to serve its replicas.

    Must stay picklable (``spawn`` ships it to the child): the protocol
    travels as a zero-argument *factory* (typically the protocol class
    itself), never as an instance.
    """

    protocol_factory: Callable[[], StorageProtocol]
    config: SystemConfig
    #: object indices this child hosts (one for ``granularity="replica"``,
    #: all of them for ``granularity="group"``).
    indices: Tuple[int, ...]
    data_dir: str
    host: str = "127.0.0.1"
    #: durable records between automatic snapshots.
    snapshot_every: int = 512


async def _serve_replicas(spec: ReplicaSpec,
                          conn: "multiprocessing.connection.Connection"
                          ) -> None:
    """Child-side serving loop: recover, listen, report ports, run.

    Runs until the parent sends anything on the pipe (graceful stop) or
    the pipe breaks (parent died) -- children never outlive their
    supervisor.
    """
    protocol = spec.protocol_factory()
    automata = protocol.make_objects(spec.config)
    servers: Dict[int, TcpObjectServer] = {}
    durability: Dict[int, ReplicaDurability] = {}
    for index in spec.indices:
        automaton = automata[index]
        store = ReplicaDurability(
            os.path.join(spec.data_dir, f"replica-{index}"),
            fsync=spec.config.wal_fsync)
        handler = resolve_batch_handler(automaton)
        for sender, message in store.recover():
            sink: Sink = []  # recovery replies go nowhere
            handler(sender, (message,), sink)
        # log_async: the WAL's policy fsync runs in an executor, so a
        # strict durability policy never stalls the child's one serving
        # loop (the await still orders ack after durability).
        server = TcpObjectServer(automaton, host=spec.host, port=0,
                                 frame_hook=store.log_async)
        await server.start()
        servers[index] = server
        durability[index] = store
    conn.send({index: server.port for index, server in servers.items()})
    try:
        while True:
            await asyncio.sleep(MONITOR_INTERVAL)
            if conn.poll():
                break  # any parent message means stop
            for store in durability.values():
                if store.records_since_snapshot >= spec.snapshot_every:
                    store.take_snapshot()
    except (EOFError, OSError):
        pass  # parent is gone; fall through to cleanup
    finally:
        for server in servers.values():
            await server.stop()
        for store in durability.values():
            store.take_snapshot()
            store.close()


def _replica_child_main(spec: ReplicaSpec,
                        conn: "multiprocessing.connection.Connection"
                        ) -> None:
    try:
        asyncio.run(_serve_replicas(spec, conn))
    except KeyboardInterrupt:
        pass


class ReplicaProcess:
    """One supervised child process hosting ``spec.indices``."""

    def __init__(self, spec: ReplicaSpec):
        self.spec = spec
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Optional[
            "multiprocessing.connection.Connection"] = None
        #: object index -> TCP port, valid once :meth:`start` returns.
        self.ports: Dict[int, int] = {}

    async def start(self, timeout: float = 30.0) -> Dict[int, int]:
        """Spawn the child and await its port report."""
        # The previous incarnation's ports are stale the moment a new
        # child spawns; clear them so port_of()/endpoints() report the
        # replica as down (not at a dead -- or recycled -- port) until
        # the new port report lands.
        self.ports = {}
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_replica_child_main, args=(self.spec, child_conn),
            daemon=True)
        loop = asyncio.get_running_loop()
        # A "spawn" start forks + execs a fresh interpreter (~0.5s); off
        # the loop so gather()ed sibling spawns overlap instead of
        # serializing behind each other's exec.
        await loop.run_in_executor(None, self.process.start)
        child_conn.close()
        self.conn = parent_conn
        deadline = loop.time() + timeout
        while not parent_conn.poll():
            if not self.process.is_alive():
                raise TransportError(
                    f"replica child for objects {self.spec.indices} died "
                    f"during startup (exit code "
                    f"{self.process.exitcode})")
            if loop.time() > deadline:
                self.process.kill()  # reprolint: ok[blocking-async] -- one SIGKILL syscall, no wait
                raise TransportError(
                    f"replica child for objects {self.spec.indices} did "
                    f"not report ports within {timeout}s")
            await asyncio.sleep(0.01)
        self.ports = parent_conn.recv()
        return self.ports

    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        """``kill -9``: no flush, no goodbye -- the crash being modeled."""
        if self.process is not None and self.process.pid is not None:
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

    async def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: the child snapshots and exits on its own."""
        process = self.process
        if process is None:
            return
        # Claim the pipe before the first suspension: a concurrent stop
        # then sees None and cannot double-send or double-close it.
        conn, self.conn = self.conn, None
        try:
            if conn is not None:
                conn.send("stop")
        except (BrokenPipeError, OSError):
            pass
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while process.is_alive() and loop.time() < deadline:
            await asyncio.sleep(0.01)
        if process.is_alive():
            process.kill()  # reprolint: ok[blocking-async] -- one SIGKILL syscall, no wait
        # join() blocks until the child is reaped; off the loop.
        await loop.run_in_executor(None, process.join, 1.0)
        if conn is not None:
            conn.close()


class ReplicaProcessSupervisor:
    """Spawns, watches and restarts the replica children of one store.

    ``granularity`` decides the process layout: ``"replica"`` gives
    every base object its own child (independent failure domains, the
    paper's model), ``"group"`` puts the whole replica set in one child
    (one spawn per shard group -- the scaling unit of the multiproc
    bench).  The monitor task restarts any dead child; a restarted
    child recovers from WAL + snapshot before reporting ports, and
    ``on_restart(index)`` then fires once per hosted object index so
    the service tier can run its ``heal_replica`` catch-up.

    ``ping_interval`` (seconds, ``None`` disables) adds active health
    checks: a live child that fails :data:`PING_FAILURE_THRESHOLD`
    consecutive TCP pings is presumed wedged, killed, and restarted
    through the same path as a crash.
    """

    def __init__(self, protocol_factory: Callable[[], StorageProtocol],
                 config: SystemConfig, data_dir: str,
                 granularity: str = "group",
                 host: str = "127.0.0.1",
                 snapshot_every: int = 512,
                 ping_interval: Optional[float] = None,
                 on_restart: Optional[
                     Callable[[int], Awaitable[None]]] = None):
        if granularity not in ("replica", "group"):
            raise ConfigurationError(
                f"unknown process granularity {granularity!r}; "
                f"expected 'replica' or 'group'")
        self.config = config
        self.data_dir = data_dir
        self.granularity = granularity
        self.host = host
        self.ping_interval = ping_interval
        self.on_restart = on_restart
        if granularity == "replica":
            index_groups: List[Tuple[int, ...]] = [
                (i,) for i in range(config.num_objects)]
        else:
            index_groups = [tuple(range(config.num_objects))]
        self._procs: List[ReplicaProcess] = [
            ReplicaProcess(ReplicaSpec(
                protocol_factory=protocol_factory, config=config,
                indices=indices, data_dir=data_dir, host=host,
                snapshot_every=snapshot_every))
            for indices in index_groups
        ]
        self._proc_of: Dict[int, ReplicaProcess] = {
            index: proc for proc in self._procs
            for index in proc.spec.indices
        }
        self._monitor_task: Optional[asyncio.Task] = None
        self._started = False
        #: object index -> restarts performed by the monitor.
        self.restarts: Dict[int, int] = {}
        self._ping_failures: Dict[int, int] = {}

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "ReplicaProcessSupervisor":
        if self._started:
            return self
        # Claim the flag before suspending: a second start() arriving
        # while the spawns are in flight must not spawn a duplicate
        # fleet of children.
        self._started = True
        try:
            await asyncio.gather(*(proc.start() for proc in self._procs))
        except BaseException:
            self._started = False
            raise
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor())
        return self

    async def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._monitor_task = None
        await asyncio.gather(*(proc.stop() for proc in self._procs))

    # -- topology -----------------------------------------------------------
    def port_of(self, index: int) -> Optional[int]:
        """The current TCP port of object ``index`` (``None`` if down)."""
        proc = self._proc_of.get(index)
        if proc is None or not proc.is_alive():
            return None
        return proc.ports.get(index)

    def endpoints(self) -> Dict[int, Tuple[str, int]]:
        return {index: (self.host, port)
                for index in self._proc_of
                for port in [self.port_of(index)] if port is not None}

    # -- fault injection ----------------------------------------------------
    def kill_replica(self, index: int) -> None:
        """SIGKILL the child hosting ``index``; the monitor restarts it."""
        proc = self._proc_of.get(index)
        if proc is None:
            raise ConfigurationError(f"no replica process hosts {index}")
        proc.kill()

    # -- health -------------------------------------------------------------
    async def ping(self, index: int, timeout: float = 2.0) -> bool:
        """One TCP round-trip through a replica's serving loop.

        A :class:`~repro.messages.TagQuery` on a reserved register id:
        cheap, read-only, and answered by every protocol's object
        automaton -- a reply proves the child's event loop is serving,
        not merely that the process exists.
        """
        port = self.port_of(index)
        if port is None:
            return False
        try:
            reader_s, writer_s = await asyncio.wait_for(
                asyncio.open_connection(self.host, port), timeout)
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            probe = TagQuery(nonce=0, register_id="__health__")
            writer_s.write(_frame_binary(reader(0), probe))
            await writer_s.drain()
            parsed = await asyncio.wait_for(read_frame(reader_s), timeout)
            return parsed is not None
        except (OSError, asyncio.TimeoutError, TransportError):
            return False
        finally:
            writer_s.close()

    async def _monitor(self) -> None:
        loop = asyncio.get_running_loop()
        next_ping = (loop.time() + self.ping_interval
                     if self.ping_interval is not None else None)
        while True:
            await asyncio.sleep(MONITOR_INTERVAL)
            for proc in self._procs:
                if not proc.is_alive():
                    try:
                        await self._restart(proc)
                    except Exception:
                        # A failed respawn (child died during startup,
                        # port-report deadline) must not kill the
                        # monitor: the child is still dead, so the next
                        # sweep retries.
                        _log.exception(
                            "restart of replica child %s failed; "
                            "retrying on the next sweep",
                            proc.spec.indices)
            if next_ping is not None and loop.time() >= next_ping:
                next_ping = loop.time() + self.ping_interval
                try:
                    await self._ping_sweep()
                except Exception:
                    _log.exception("health-ping sweep failed")

    async def _ping_sweep(self) -> None:
        for proc in self._procs:
            if not proc.is_alive():
                continue  # the liveness check owns dead children
            index = proc.spec.indices[0]  # one serving loop per child
            if await self.ping(index):
                self._ping_failures[index] = 0
                continue
            failures = self._ping_failures.get(index, 0) + 1
            self._ping_failures[index] = failures
            if failures >= PING_FAILURE_THRESHOLD:
                self._ping_failures[index] = 0
                # wedged: the liveness sweep restarts it
                proc.kill()  # reprolint: ok[blocking-async] -- one SIGKILL syscall, no wait

    async def _restart(self, proc: ReplicaProcess) -> None:
        proc.process.join(timeout=0)  # reprolint: ok[blocking-async] -- timeout=0 reaps the corpse without waiting
        if proc.conn is not None:
            proc.conn.close()
        await proc.start()
        for index in proc.spec.indices:
            self.restarts[index] = self.restarts.get(index, 0) + 1
        if self.on_restart is not None:
            for index in proc.spec.indices:
                try:
                    await self.on_restart(index)
                except Exception:
                    # The child itself is up; a failed catch-up hook
                    # leaves it merely slow-but-correct (WAL-recovered),
                    # which the protocols tolerate.
                    _log.exception(
                        "on_restart hook failed for object %d", index)


class _ObjectChannel:
    """One client's socket to one replica, with reconnect-on-restart.

    Sends are fire-and-forget from the caller's perspective (matching
    :meth:`AsyncNetwork.send`): frames queue here and a writer task
    drains them over the live connection.  While the replica is down
    the queue simply grows -- those frames reach the replica after
    restart, interleaved exactly as a slow network would deliver them
    -- and frames written into a dying socket are lost, which is
    precisely the crash semantics the protocols tolerate.  Replies pump
    straight into the owning client's inbox.
    """

    __slots__ = ("network", "client", "index", "queue", "wakeup", "task",
                 "flushes", "frames_flushed")

    def __init__(self, network: "ProcNetwork", client: ProcessId,
                 index: int):
        self.network = network
        self.client = client
        self.index = index
        self.queue: List[bytes] = []
        self.wakeup = asyncio.Event()
        self.flushes = 0
        self.frames_flushed = 0
        self.task = asyncio.get_running_loop().create_task(self._run())

    def enqueue(self, frame: bytes) -> None:
        self.queue.append(frame)
        self.wakeup.set()

    def close(self) -> None:
        self.task.cancel()

    @staticmethod
    def coalesce(frames: List[bytes]) -> bytes:
        """All queued frames as one write-sized buffer.

        Frames are length-prefixed and self-delimiting, so concatenation
        is the wire format; handing the transport one buffer per drain
        (instead of one ``write`` per frame) keeps a vector round's
        fan-out from degenerating into per-frame syscalls under
        ``TCP_NODELAY``-style transports.
        """
        return frames[0] if len(frames) == 1 else b"".join(frames)

    async def _run(self) -> None:
        while True:
            port = self.network.port_of(self.index)
            if port is None:
                await asyncio.sleep(0.05)  # replica down or restarting
                continue
            try:
                reader_s, writer_s = await asyncio.open_connection(
                    self.network.host, port)
            except OSError:
                await asyncio.sleep(0.05)
                continue
            pump = asyncio.get_running_loop().create_task(
                self._pump(reader_s))
            try:
                while True:
                    if not self.queue:
                        self.wakeup.clear()
                        await self.wakeup.wait()
                    frames, self.queue = self.queue, []
                    writer_s.write(self.coalesce(frames))
                    self.flushes += 1
                    self.frames_flushed += len(frames)
                    await writer_s.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # replica died mid-write: reconnect loop takes over
            finally:
                pump.cancel()
                writer_s.close()

    async def _pump(self, reader_s: asyncio.StreamReader) -> None:
        try:
            while True:
                parsed = await read_frame(reader_s)
                if parsed is None:
                    return
                sender, message = parsed
                self.network.deliver_local(sender, self.client, message)
        except (ConnectionResetError, TransportError, OSError):
            return


class ProcNetwork(AsyncNetwork):
    """The in-memory network's interface over real replica sockets.

    Client pids keep ordinary in-memory inboxes (client hosts are
    unchanged); sends *to object pids* are encoded once and fanned out
    over per-(client, object) :class:`_ObjectChannel` s.  Port lookups
    go through the supervisor on every (re)connect, so a replica coming
    back on a fresh port is picked up without any rewiring.
    """

    def __init__(self, supervisor: ReplicaProcessSupervisor,
                 jitter: float = 0.0, seed: int = 0):
        super().__init__(jitter=0.0, seed=seed)  # real sockets jitter
        self.supervisor = supervisor
        self.host = supervisor.host
        self._channels: Dict[Tuple[ProcessId, int], _ObjectChannel] = {}
        #: single-entry encode memo: a vector broadcast sends the *same*
        #: payload object to every replica -- encode it once, not S
        #: times.  The strong payload ref makes the identity check safe.
        self._memo: Optional[Tuple[ProcessId, Any, bytes]] = None

    def port_of(self, index: int) -> Optional[int]:
        return self.supervisor.port_of(index)

    def deliver_local(self, sender: ProcessId, receiver: ProcessId,
                      message: Any) -> None:
        if receiver in self._crashed:
            return
        inbox = self._inboxes.get(receiver)
        if inbox is not None:
            inbox.put_nowait(AsyncEnvelope(sender, receiver, message))

    def send(self, sender: ProcessId, receiver: ProcessId,
             payload: Any) -> None:
        if not receiver.is_object:
            super().send(sender, receiver, payload)
            return
        self.messages_sent += 1
        if receiver in self._crashed:
            return
        memo = self._memo
        if memo is not None and memo[0] == sender and memo[1] is payload:
            frame = memo[2]
        else:
            frame = _frame_binary(sender, payload)
            self._memo = (sender, payload, frame)
        key = (sender, receiver.index)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = _ObjectChannel(
                self, sender, receiver.index)
        channel.enqueue(frame)

    def close(self) -> None:
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()


class ProcMultiRegisterStore(MultiRegisterStore):
    """A multi-register store whose replicas are supervised processes.

    The client half (multiplexed hosts, per-register states, vector
    rounds, epoch seeding) is inherited; the object half is replaced by
    a :class:`ReplicaProcessSupervisor` + :class:`ProcNetwork` pair.
    Fault verbs map onto process verbs: :meth:`crash_object` is a real
    ``kill -9``, :meth:`replace_object` relies on the supervisor's
    restart (state recovered from WAL + snapshot), and
    :meth:`make_byzantine` is refused -- automata cannot be swapped
    inside a child; compromise modeling stays an in-proc concern.
    """

    def __init__(self, protocol_factory: Callable[[], StorageProtocol],
                 config: SystemConfig, data_dir: str,
                 granularity: str = "group",
                 jitter: float = 0.0, seed: int = 0,
                 default_timeout: Optional[float] = 30.0,
                 batching: bool = True,
                 max_pending_per_host: Optional[int] = None,
                 record_history: bool = False,
                 history=None,
                 snapshot_every: int = 512,
                 ping_interval: Optional[float] = None,
                 on_replica_restart: Optional[
                     Callable[[int], Awaitable[None]]] = None):
        self._on_replica_restart = on_replica_restart
        self.supervisor = ReplicaProcessSupervisor(
            protocol_factory, config, data_dir,
            granularity=granularity, snapshot_every=snapshot_every,
            ping_interval=ping_interval,
            on_restart=self._handle_restart)
        super().__init__(protocol_factory(), config, jitter=jitter,
                         seed=seed, default_timeout=default_timeout,
                         batching=batching,
                         max_pending_per_host=max_pending_per_host,
                         record_history=record_history, history=history)

    # -- deployment hooks ---------------------------------------------------
    def _make_network(self, jitter: float, seed: int) -> AsyncNetwork:
        return ProcNetwork(self.supervisor, jitter=jitter, seed=seed)

    def _make_object_hosts(self) -> List:
        return []  # the objects live in the supervised children

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "ProcMultiRegisterStore":
        if self._started:
            return self
        # Claim-first, as in the supervisor: a concurrent start() during
        # the spawn await must not drive a second supervisor.start().
        self._started = True
        try:
            await self.supervisor.start()
        except BaseException:
            self._started = False
            raise
        return self

    async def stop(self) -> None:
        if not self._started:
            return
        await super().stop()  # flips the flag, stops the client hosts
        await self.supervisor.stop()
        self.network.close()

    # -- faults & repair ----------------------------------------------------
    def crash_object(self, index: int) -> None:
        """A real crash: SIGKILL the child (the supervisor restarts it,
        recovering from WAL + snapshot -- crash-recovery, not
        crash-stop)."""
        self.supervisor.kill_replica(index)

    def make_byzantine(self, index: int, automaton) -> None:
        raise ConfigurationError(
            "multiproc replicas cannot be made Byzantine in place: "
            "automata live inside child processes; model compromise "
            "with the inproc deployment")

    def replace_object(self, index: int, automaton=None):
        """Under process supervision, replacement *is* restart.

        The supervisor's monitor respawns a dead child automatically;
        this method only validates the request and hands back a fresh
        automaton instance for interface parity with the in-proc
        store.  Client traffic queued in the object's channels flushes
        once the replica reports its new port.
        """
        if automaton is not None:
            raise ConfigurationError(
                "multiproc replicas recover their own state from WAL + "
                "snapshot; a replacement automaton cannot be injected")
        return self.protocol.make_objects(self.config)[index]

    # -- restart plumbing ---------------------------------------------------
    async def _handle_restart(self, index: int) -> None:
        if self._on_replica_restart is not None:
            await self._on_replica_restart(index)

    def describe(self) -> str:
        return (f"ProcMultiRegisterStore({self.protocol.describe()}; "
                f"{self.config.describe()}; "
                f"{len(self.supervisor._procs)} replica process(es), "
                f"granularity={self.supervisor.granularity!r})")


__all__ = [
    "ProcMultiRegisterStore",
    "ProcNetwork",
    "ReplicaProcess",
    "ReplicaProcessSupervisor",
    "ReplicaSpec",
]
