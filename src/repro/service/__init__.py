"""Service tier: production-shaped storage on top of the protocol library.

The paper's protocols emulate *one* SWMR register on ``S`` base objects.
This package turns that into a serving layer:

* :class:`MultiRegisterStore` -- one replica set multiplexing arbitrarily
  many registers (register-addressed messages end-to-end, per-register
  slots in the object automata, batched client rounds);
* :class:`ShardedKVStore` -- a key-value facade consistent-hashing keys
  across several shard groups, each its own replica set;
* :class:`HashRing` -- the stable key -> shard placement, with
  :func:`owned_diff` enumerating moved ranges between two rings;
* :class:`ReconfigCoordinator` -- live reconfiguration: add/drain shard
  groups with epoch-fenced key handoff, replace crashed replicas;
* :class:`ProcMultiRegisterStore` / :class:`ReplicaProcessSupervisor` --
  the multiproc deployment: replicas as supervised child OS processes
  with WAL + snapshot durability and automatic crash-recovery
  (``SystemConfig.deployment = "multiproc"``).

See ``examples/replicated_kv_store.py`` for the end-to-end demo and
``benchmarks/bench_service.py`` for the multiplexing throughput numbers
(including the reshard-under-load and multiproc scaling modes).
"""

from .hashing import HashRing, MovedRange, owned_diff
from .procs import (ProcMultiRegisterStore, ProcNetwork, ReplicaProcess,
                    ReplicaProcessSupervisor, ReplicaSpec)
from .reconfig import (FenceOperation, ReconfigCoordinator,
                       ReconfigReport)
from .sharded import ShardedKVStore
from .store import MultiRegisterStore

__all__ = [
    "FenceOperation",
    "HashRing",
    "MovedRange",
    "MultiRegisterStore",
    "ProcMultiRegisterStore",
    "ProcNetwork",
    "ReconfigCoordinator",
    "ReconfigReport",
    "ReplicaProcess",
    "ReplicaProcessSupervisor",
    "ReplicaSpec",
    "ShardedKVStore",
    "owned_diff",
]
